//! Cross-crate property tests: invariants that must hold for *arbitrary*
//! inputs, not just the fixtures the unit tests use.

use ec_graph_repro::comm::codec;
use ec_graph_repro::compress::Quantized;
use ec_graph_repro::data::{generators, normalize, Graph};
use ec_graph_repro::partition::hash::HashPartitioner;
use ec_graph_repro::partition::ldg::LdgPartitioner;
use ec_graph_repro::partition::metis::MetisLikePartitioner;
use ec_graph_repro::partition::{metrics, Partitioner};
use ec_graph_repro::tensor::{ops, CsrMatrix, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any edge list yields a graph satisfying every structural invariant.
    #[test]
    fn graph_from_arbitrary_edges_is_well_formed(
        n in 1usize..60,
        edges in proptest::collection::vec((0u32..60, 0u32..60), 0..200),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = Graph::from_edges(n, &edges);
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.num_edges() <= edges.len());
    }

    /// The GCN-normalized adjacency of any graph has spectral-safe rows:
    /// every entry in (0, 1] and row sums ≤ ~1 + degree bound effects.
    #[test]
    fn normalized_adjacency_entries_bounded(
        n in 1usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = Graph::from_edges(n, &edges);
        let a = normalize::gcn_normalized_adjacency(&g);
        for r in 0..n {
            for (_, v) in a.row_entries(r) {
                prop_assert!(v > 0.0 && v <= 1.0, "entry {v} out of (0,1]");
            }
        }
    }

    /// Every partitioner assigns every vertex exactly once, to a valid part.
    #[test]
    fn partitioners_cover_every_vertex(
        n in 2usize..120,
        m_frac in 0.0f64..3.0,
        parts in 1usize..8,
        seed in any::<u64>(),
    ) {
        let m = ((n as f64 * m_frac) as usize).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi(n, m, seed);
        for p in [
            HashPartitioner::default().partition(&g, parts),
            LdgPartitioner::default().partition(&g, parts),
            MetisLikePartitioner::default().partition(&g, parts),
        ] {
            prop_assert_eq!(p.num_vertices(), n);
            prop_assert_eq!(p.part_sizes().iter().sum::<usize>(), n);
            // Edge-cut is within [0, |E|].
            let cut = metrics::edge_cut(&g, &p);
            prop_assert!(cut <= g.num_edges());
        }
    }

    /// Quantization never inflates: wire size strictly below raw f32 for
    /// B ≤ 16 on any non-trivial matrix, and decompression round-trips
    /// within the analytic bound.
    #[test]
    fn quantization_wire_and_error_bounds(
        rows in 1usize..20,
        cols in 1usize..20,
        bits in 1u8..=16,
        seed in any::<u64>(),
    ) {
        let m = Matrix::from_fn(rows, cols, |r, c| {
            let x = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((r * 31 + c) as u64);
            ((x % 2000) as f32) / 100.0 - 10.0
        });
        let q = Quantized::compress(&m, bits);
        if m.len() >= 16 {
            prop_assert!(q.wire_size() < m.len() * 4, "no compression at B={bits}");
        }
        let d = q.decompress();
        let bound = q.max_error() + 1e-4;
        for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
            prop_assert!((a - b).abs() <= bound);
        }
    }

    /// The codec never panics on arbitrary bytes — it errors cleanly.
    #[test]
    fn codec_survives_fuzzed_input(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut slice = bytes.as_slice();
        let _ = codec::get_matrix(&mut slice);
        let mut slice = bytes.as_slice();
        let _ = codec::get_u32s(&mut slice);
        let mut slice = bytes.as_slice();
        let _ = codec::get_u8s(&mut slice);
    }

    /// The quantized wire format never panics on arbitrary bytes either.
    #[test]
    fn quantized_from_bytes_survives_fuzzed_input(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = Quantized::from_bytes(&bytes);
    }

    /// SpMM against an arbitrary sparse matrix equals the dense reference.
    #[test]
    fn spmm_matches_dense_reference(
        rows in 1usize..12,
        cols in 1usize..12,
        inner in 1usize..12,
        triples in proptest::collection::vec((0usize..12, 0usize..12, -5.0f32..5.0), 0..40),
        seed in any::<u64>(),
    ) {
        let triples: Vec<(usize, usize, f32)> = triples
            .into_iter()
            .map(|(r, c, v)| (r % rows, c % inner, v))
            .collect();
        let s = CsrMatrix::from_triples(rows, inner, &triples);
        let b = Matrix::from_fn(inner, cols, |r, c| {
            ((seed.wrapping_add((r * 7 + c) as u64) % 100) as f32) / 50.0 - 1.0
        });
        let sparse = s.spmm(&b);
        let dense = ops::matmul(&s.to_dense(), &b);
        prop_assert!(sparse.approx_eq(&dense, 1e-3));
    }

    /// Distributed SpMM over any partition reproduces the global product —
    /// the identity the whole engine rests on.
    #[test]
    fn partitioned_aggregation_matches_global(
        n in 4usize..40,
        m_frac in 0.5f64..2.0,
        parts in 2usize..5,
        seed in any::<u64>(),
    ) {
        use ec_graph_repro::ecgraph::context::build_worker_contexts;
        use std::sync::Arc;
        let m = ((n as f64 * m_frac) as usize).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi(n, m, seed);
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&g));
        let partition = HashPartitioner::new(seed).partition(&g, parts);
        let ctxs = build_worker_contexts(&[Arc::clone(&adj)], &partition);
        let h = Matrix::from_fn(n, 3, |r, c| ((seed as usize + r * 3 + c) % 17) as f32 * 0.1);
        let global = adj.spmm(&h);
        for ctx in &ctxs {
            let topo = &ctx.layers[0];
            let h_cat = h
                .gather_rows(&ctx.local_vertices)
                .vstack(&h.gather_rows(&topo.remote_deps));
            let local = topo.adj_local.spmm(&h_cat);
            let expected = global.gather_rows(&ctx.local_vertices);
            prop_assert!(local.approx_eq(&expected, 1e-4), "worker {}", ctx.worker_id);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ReqEC-FP's Selector can never reconstruct worse than plain
    /// compression at the same bit width — for arbitrary embedding
    /// sequences, at every step of the trend group.
    #[test]
    fn reqec_never_worse_than_plain_compression(
        rows in 1usize..12,
        cols in 1usize..8,
        bits in 1u8..=8,
        t_tr in 2usize..8,
        seeds in proptest::collection::vec(any::<u32>(), 2..10),
    ) {
        use ec_graph_repro::ecgraph::fp::{reqec_step, respond_compressed, TrendState};
        use ec_graph_repro::tensor::stats;
        let mut st = TrendState::default();
        for (t, &seed) in seeds.iter().enumerate() {
            let h = Matrix::from_fn(rows, cols, |r, c| {
                ((seed as usize + r * 13 + c * 7) % 100) as f32 / 50.0 - 1.0
            });
            let out = reqec_step(&mut st, &h, bits, t_tr, t);
            if !out.exact_sent {
                let (plain, _) = respond_compressed(&h, bits);
                let ec_err: f32 =
                    stats::rowwise_l1_distance(&out.reconstructed, &h).iter().sum();
                let plain_err: f32 =
                    stats::rowwise_l1_distance(&plain, &h).iter().sum();
                prop_assert!(ec_err <= plain_err + 1e-4,
                    "t={t}: EC {ec_err} > plain {plain_err}");
            } else {
                prop_assert!(out.reconstructed.approx_eq(&h, 1e-6));
            }
        }
    }

    /// ResEC-BP's residual stays bounded for arbitrary gradient sequences
    /// (the substance of Theorem 1), and every shipped message plus the
    /// retained residual exactly reconstructs the compensated gradient.
    #[test]
    fn resec_residual_bounded_and_consistent(
        rows in 1usize..10,
        cols in 1usize..6,
        bits in 2u8..=8,
        seeds in proptest::collection::vec(any::<u32>(), 1..12),
    ) {
        use ec_graph_repro::ecgraph::bp::{resec_step, ResidualState};
        use ec_graph_repro::tensor::stats;
        let mut st = ResidualState::default();
        let mut max_g_norm_sq = 1e-6f32;
        for &seed in &seeds {
            let g = Matrix::from_fn(rows, cols, |r, c| {
                ((seed as usize + r * 11 + c * 3) % 64) as f32 / 32.0 - 1.0
            });
            max_g_norm_sq = max_g_norm_sq.max(stats::l2_norm_sq(&g));
            let (_, _) = resec_step(&mut st, &g, bits);
            // ‖δ‖² stays within a constant multiple of the largest gradient
            // norm seen so far — the Theorem-1 `G²` is a history bound, not
            // a per-step one (a zero gradient does not erase the residual).
            prop_assert!(
                st.residual_norm_sq() <= 4.0 * max_g_norm_sq,
                "residual {} vs max gradient {}",
                st.residual_norm_sq(),
                max_g_norm_sq
            );
        }
    }

    /// Vertex-cut partitioning covers every edge and never replicates a
    /// vertex onto more parts than exist.
    #[test]
    fn vertex_cut_invariants(
        n in 2usize..80,
        m_frac in 0.2f64..2.5,
        parts in 1usize..6,
        seed in any::<u64>(),
    ) {
        use ec_graph_repro::partition::vertex_cut::greedy_vertex_cut;
        let m = ((n as f64 * m_frac) as usize).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi(n, m, seed);
        let ep = greedy_vertex_cut(&g, parts);
        prop_assert_eq!(ep.part_sizes().iter().sum::<usize>(), g.num_edges());
        for v in 0..n {
            prop_assert!(ep.replicas_of(v).len() <= parts);
        }
        prop_assert!(ep.replication_factor() <= parts as f64);
    }
}
