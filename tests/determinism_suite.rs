//! Run-to-run determinism: the simulated cluster is a measurement
//! instrument, so two runs of the same config must be *byte-identical* —
//! same losses, same traffic, same report. This is the regression net under
//! `ec-lint`'s `no-unordered-iteration` / `no-wall-clock` rules: a stray
//! `HashMap` walk or wall-clock read in a deterministic path shows up here
//! as a diff between two otherwise identical runs.
//!
//! Compute seconds are *measured* in normal operation and therefore differ
//! between runs; [`ec_comm::set_deterministic_timing`] zeroes them so the
//! canonical JSON report can be compared byte for byte.

use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::{BpMode, ComputeConfig, FpMode, TrainingConfig};
use ec_graph_repro::ecgraph::report::RunResult;
use ec_graph_repro::ecgraph::trainer::train;
use ec_graph_repro::faults::FaultPlan;
use ec_graph_repro::partition::ldg::LdgPartitioner;
use ec_graph_repro::trace::{TelemetryConfig, TelemetryLevel};
use std::sync::Arc;

fn run_once(seed: u64) -> RunResult {
    run_threaded(seed, ComputeConfig::sequential(), FaultPlan::none())
}

fn run_threaded(seed: u64, compute: ComputeConfig, faults: FaultPlan) -> RunResult {
    run_full(seed, compute, faults, TelemetryLevel::Off)
}

fn run_full(
    seed: u64,
    compute: ComputeConfig,
    faults: FaultPlan,
    telemetry: TelemetryLevel,
) -> RunResult {
    ec_comm::set_deterministic_timing(true);
    let data = Arc::new(DatasetSpec::cora().instantiate_with(140, 12, 5));
    let config = TrainingConfig {
        dims: vec![12, 8, data.num_classes],
        num_workers: 4,
        // The error-compensated modes exercise every piece of mutable
        // compensation state (trend groups, residuals, adaptive bits).
        fp_mode: FpMode::ReqEc { bits: 2, t_tr: 4, adaptive: true },
        bp_mode: BpMode::ResEc { bits: 4 },
        max_epochs: 12,
        seed,
        faults,
        compute,
        telemetry: TelemetryConfig::at(telemetry),
        ..TrainingConfig::defaults(12, data.num_classes)
    };
    train(data, &LdgPartitioner::default(), config, "ec-graph")
}

/// Two identical configs must produce byte-identical canonical reports.
#[test]
fn identical_runs_produce_byte_identical_reports() {
    let a = run_once(3).to_json().to_string();
    let b = run_once(3).to_json().to_string();
    assert!(!a.is_empty());
    assert_eq!(a, b, "two identical runs diverged — a nondeterministic path was exercised");
}

/// The comparison above must not pass vacuously: a different seed has to
/// change the report.
#[test]
fn different_seeds_produce_different_reports() {
    let a = run_once(3).to_json().to_string();
    let c = run_once(4).to_json().to_string();
    assert_ne!(a, c, "seed must influence the run");
}

/// Deterministic timing zeroes the measured compute seconds but leaves the
/// modeled communication seconds intact.
#[test]
fn deterministic_timing_zeroes_compute_but_not_comm() {
    let r = run_once(5);
    assert!(r.epochs.iter().all(|e| e.compute_s == 0.0), "compute must be zeroed");
    assert!(r.epochs.iter().all(|e| e.comm_s > 0.0), "modeled comm time must survive");
}

/// The intra-superstep thread fan-out is a pure performance knob: every
/// `worker_threads × kernel_threads` combination must produce the same
/// canonical report, byte for byte, as the sequential engine.
#[test]
fn thread_counts_never_change_the_report() {
    let base = run_once(3).to_json().to_string();
    for worker_threads in [1usize, 4] {
        for kernel_threads in [1usize, 4] {
            let compute = ComputeConfig { worker_threads, kernel_threads };
            let mt = run_threaded(3, compute, FaultPlan::none()).to_json().to_string();
            assert_eq!(
                mt, base,
                "report diverged at worker_threads={worker_threads} kernel_threads={kernel_threads}"
            );
        }
    }
}

/// Fault injection (message drops, a straggler, and a mid-run crash with
/// checkpoint rollback) routes through the same replayed exchange path, so
/// it too must be thread-count invariant across the full
/// `worker_threads × kernel_threads` matrix. The crash leg doubles as the
/// persistent-pool survival check: recovery rolls the engine back through
/// snapshot-restore mid-run, and the pool must keep serving the remaining
/// epochs' fan-outs identically afterwards.
#[test]
fn fault_injected_runs_are_thread_count_invariant() {
    let faults = FaultPlan::uniform_drop(13, 0.05).with_straggler(0, 2.0).with_crash(1, 7);
    let seq = run_threaded(3, ComputeConfig::sequential(), faults.clone());
    assert_eq!(seq.crashes_recovered, 1, "crash plan must actually fire");
    let seq = seq.to_json().to_string();
    for worker_threads in [1usize, 4] {
        for kernel_threads in [1usize, 4] {
            let compute = ComputeConfig { worker_threads, kernel_threads };
            let mt = run_threaded(3, compute, faults.clone()).to_json().to_string();
            assert_eq!(
                mt, seq,
                "fault-injected report diverged at worker_threads={worker_threads} \
                 kernel_threads={kernel_threads}"
            );
        }
    }
    // Not vacuous: the faults must actually change the run.
    let clean = run_once(3).to_json().to_string();
    assert_ne!(seq, clean, "fault plan had no observable effect");
}

/// Telemetry is a read-only observer: turning recording up to any level
/// must leave the canonical report byte-identical to the `Off` run. A
/// telemetry hook that perturbed an RNG draw, an iteration order, or a
/// simulated-time ledger would show up here as a diff.
#[test]
fn telemetry_levels_never_change_the_report() {
    let off = run_full(3, ComputeConfig::sequential(), FaultPlan::none(), TelemetryLevel::Off);
    assert!(off.telemetry.is_none(), "Off must not attach a report");
    let base = off.to_json().to_string();
    for level in [TelemetryLevel::Epoch, TelemetryLevel::Superstep, TelemetryLevel::Trace] {
        let r = run_full(3, ComputeConfig::sequential(), FaultPlan::none(), level);
        let report = r
            .telemetry
            .as_ref()
            .unwrap_or_else(|| panic!("{} run must attach a telemetry report", level.as_str()));
        assert!(
            report.rows_named("phase.compute").next().is_some(),
            "{} report must carry epoch metrics",
            level.as_str()
        );
        assert_eq!(
            r.to_json().to_string(),
            base,
            "canonical report diverged between Off and {}",
            level.as_str()
        );
    }
}

/// The invariance above must also hold when the fault injector is live —
/// drops, a straggler, and a mid-run crash with checkpoint rollback — since
/// the sink both counts faults and rewinds its rings on recovery.
#[test]
fn telemetry_is_inert_under_fault_injection() {
    let faults = FaultPlan::uniform_drop(13, 0.05).with_straggler(0, 2.0).with_crash(1, 7);
    let off = run_full(3, ComputeConfig::sequential(), faults.clone(), TelemetryLevel::Off);
    assert_eq!(off.crashes_recovered, 1, "crash plan must actually fire");
    let traced = run_full(3, ComputeConfig::sequential(), faults, TelemetryLevel::Trace);
    assert_eq!(
        traced.to_json().to_string(),
        off.to_json().to_string(),
        "fault-injected report diverged between Off and Trace telemetry"
    );
    let report = traced.telemetry.expect("Trace run must attach a telemetry report");
    assert!(
        report.rows_named("faults.dropped").next().is_some(),
        "fault counters must reach the registry"
    );
}

/// Builds a small trained checkpoint and runs the closed-loop serving
/// workload at `level` under `faults`. Everything is re-derived per call,
/// so each invocation is an independent, identically-seeded run.
fn serve_run(level: TelemetryLevel, faults: FaultPlan) -> ec_graph_repro::serve::ServeReport {
    use ec_graph_repro::partition::hash::HashPartitioner;
    use ec_graph_repro::partition::Partitioner;
    use ec_graph_repro::serve::{run_closed_loop, InferenceService, ServeConfig, WorkloadConfig};

    ec_comm::set_deterministic_timing(true);
    let data = Arc::new(DatasetSpec::cora().instantiate_with(140, 12, 5));
    let adj = Arc::new(ec_graph_repro::data::normalize::gcn_normalized_adjacency(&data.graph));
    let adjs = vec![adj; 2];
    let config = TrainingConfig {
        dims: vec![12, 8, data.num_classes],
        num_workers: 4,
        max_epochs: 2,
        seed: 3,
        ..TrainingConfig::defaults(12, data.num_classes)
    };
    let partition = Arc::new(HashPartitioner::default().partition(&data.graph, 4));
    let mut engine = ec_graph_repro::ecgraph::engine::DistributedEngine::new(
        Arc::clone(&data),
        adjs.clone(),
        (*partition).clone(),
        config,
    );
    engine.run_epoch();
    engine.run_epoch();
    let weights = engine.inference_model();

    let mut sc = ServeConfig::defaults(4);
    sc.telemetry = TelemetryConfig::at(level);
    sc.faults = faults;
    let mut svc = InferenceService::new(weights, data, adjs, partition, sc);
    let workload = WorkloadConfig { total_requests: 300, seed: 17, ..WorkloadConfig::defaults() };
    run_closed_loop(&mut svc, &workload)
}

/// The serving stack obeys the same discipline: a closed-loop run's
/// canonical `ServeReport` JSON must be byte-identical with telemetry off
/// and at every recording level, while the non-Off runs actually attach
/// the serving metrics — the request-level histograms included.
#[test]
fn serve_telemetry_levels_never_change_the_report() {
    let off = serve_run(TelemetryLevel::Off, FaultPlan::none());
    assert!(off.telemetry.is_none(), "Off must not attach a report");
    let base = off.to_json().to_string();
    for level in [TelemetryLevel::Epoch, TelemetryLevel::Superstep, TelemetryLevel::Trace] {
        let r = serve_run(level, FaultPlan::none());
        let report = r
            .telemetry
            .as_ref()
            .unwrap_or_else(|| panic!("{} run must attach a telemetry report", level.as_str()));
        for name in [
            "serve.cache_hit",
            "serve.batch_occupancy",
            "serve.latency_p99",
            "serve.qps",
            "serve.cache_hit_rate",
            "serve.queue_wait_s",
            "serve.fetch_s",
            "serve.compute_s",
            "serve.latency_log2",
        ] {
            assert!(
                report.rows_named(name).next().is_some(),
                "{} report must carry {name}",
                level.as_str()
            );
        }
        assert_eq!(
            r.to_json().to_string(),
            base,
            "serve report diverged between Off and {}",
            level.as_str()
        );
    }
}

/// The serving-side invariance must also hold with the fault injector
/// live (message drops plus a straggler), and the request spans must
/// actually land on the traced run.
#[test]
fn serve_telemetry_is_inert_under_fault_injection() {
    let faults = FaultPlan::uniform_drop(13, 0.05).with_straggler(0, 2.0);
    let off = serve_run(TelemetryLevel::Off, faults.clone());
    assert!(off.telemetry.is_none(), "Off must not attach a report");
    let base = off.to_json().to_string();
    let traced = serve_run(TelemetryLevel::Trace, faults.clone());
    assert_eq!(
        traced.to_json().to_string(),
        base,
        "fault-injected serve report diverged between Off and Trace telemetry"
    );
    let report = traced.telemetry.expect("Trace run must attach a telemetry report");
    for name in ["serve:queue", "serve:fetch", "serve:compute"] {
        assert!(
            report.spans.iter().any(|s| s.name == name),
            "request-level span {name} must be recorded"
        );
    }
    // Not vacuous: the straggler must actually slow the simulated run.
    let clean = serve_run(TelemetryLevel::Off, FaultPlan::none()).to_json().to_string();
    assert_ne!(base, clean, "fault plan had no observable effect on serving");
}

/// The structural diff engine must agree with the byte-equality this
/// suite proves: two identical-seed runs compare as zero drift — for the
/// canonical run report and for the metrics export — while a different
/// seed shows up as drift.
#[test]
fn identical_runs_diff_clean_through_trace_diff() {
    use ec_graph_repro::trace::{diff, export};

    let cfg = diff::DiffConfig::default();
    let a = run_full(3, ComputeConfig::sequential(), FaultPlan::none(), TelemetryLevel::Trace);
    let b = run_full(3, ComputeConfig::sequential(), FaultPlan::none(), TelemetryLevel::Trace);
    let r = diff::diff_texts(&a.to_json().to_string(), &b.to_json().to_string(), &cfg)
        .expect("run reports parse");
    assert!(!r.has_drift(), "identical-seed run reports must diff clean");
    assert_eq!(r.overall(), diff::Verdict::Unchanged);

    let ma = export::metrics_json(a.telemetry.as_ref().expect("trace report"));
    let mb = export::metrics_json(b.telemetry.as_ref().expect("trace report"));
    let m = diff::diff_texts(&ma, &mb, &cfg).expect("metrics exports parse");
    assert!(!m.has_drift(), "metrics exports drifted between identical runs");

    // Not vacuous: a different seed must register as drift.
    let c = run_full(4, ComputeConfig::sequential(), FaultPlan::none(), TelemetryLevel::Off);
    let d = diff::diff_texts(&a.to_json().to_string(), &c.to_json().to_string(), &cfg)
        .expect("run reports parse");
    assert!(d.has_drift(), "seed change must show up in the structural diff");
}
