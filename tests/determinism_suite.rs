//! Run-to-run determinism: the simulated cluster is a measurement
//! instrument, so two runs of the same config must be *byte-identical* —
//! same losses, same traffic, same report. This is the regression net under
//! `ec-lint`'s `no-unordered-iteration` / `no-wall-clock` rules: a stray
//! `HashMap` walk or wall-clock read in a deterministic path shows up here
//! as a diff between two otherwise identical runs.
//!
//! Compute seconds are *measured* in normal operation and therefore differ
//! between runs; [`ec_comm::set_deterministic_timing`] zeroes them so the
//! canonical JSON report can be compared byte for byte.

use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph_repro::ecgraph::report::RunResult;
use ec_graph_repro::ecgraph::trainer::train;
use ec_graph_repro::partition::ldg::LdgPartitioner;
use std::sync::Arc;

fn run_once(seed: u64) -> RunResult {
    ec_comm::set_deterministic_timing(true);
    let data = Arc::new(DatasetSpec::cora().instantiate_with(140, 12, 5));
    let config = TrainingConfig {
        dims: vec![12, 8, data.num_classes],
        num_workers: 4,
        // The error-compensated modes exercise every piece of mutable
        // compensation state (trend groups, residuals, adaptive bits).
        fp_mode: FpMode::ReqEc { bits: 2, t_tr: 4, adaptive: true },
        bp_mode: BpMode::ResEc { bits: 4 },
        max_epochs: 12,
        seed,
        ..TrainingConfig::defaults(12, data.num_classes)
    };
    train(data, &LdgPartitioner::default(), config, "ec-graph")
}

/// Two identical configs must produce byte-identical canonical reports.
#[test]
fn identical_runs_produce_byte_identical_reports() {
    let a = run_once(3).to_json().to_string();
    let b = run_once(3).to_json().to_string();
    assert!(!a.is_empty());
    assert_eq!(a, b, "two identical runs diverged — a nondeterministic path was exercised");
}

/// The comparison above must not pass vacuously: a different seed has to
/// change the report.
#[test]
fn different_seeds_produce_different_reports() {
    let a = run_once(3).to_json().to_string();
    let c = run_once(4).to_json().to_string();
    assert_ne!(a, c, "seed must influence the run");
}

/// Deterministic timing zeroes the measured compute seconds but leaves the
/// modeled communication seconds intact.
#[test]
fn deterministic_timing_zeroes_compute_but_not_comm() {
    let r = run_once(5);
    assert!(r.epochs.iter().all(|e| e.compute_s == 0.0), "compute must be zeroed");
    assert!(r.epochs.iter().all(|e| e.comm_s > 0.0), "modeled comm time must survive");
}
