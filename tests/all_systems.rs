//! Every system from the paper's evaluation runs end-to-end on a small
//! replica and exhibits its defining structural property — not just "does
//! not crash", but "is the system it claims to be".

use ec_bench::systems::{run, RunParams, System};
use ec_graph_repro::data::DatasetSpec;
use std::sync::Arc;

fn small_replica() -> Arc<ec_graph_repro::data::AttributedGraph> {
    Arc::new(DatasetSpec::cora().instantiate_with(400, 24, 13))
}

fn params(epochs: usize) -> RunParams {
    RunParams { workers: 3, ..RunParams::new(2, 16, epochs) }
}

#[test]
fn all_systems_learn_the_small_replica() {
    let data = small_replica();
    for system in System::all() {
        let r = run(system, &data, &params(40)).unwrap_or_else(|e| panic!("{system:?}: {e}"));
        let first = r.epochs.first().unwrap().loss;
        let last = r.epochs.last().unwrap().loss;
        assert!(last < first, "{system:?}: loss {first} → {last} did not decrease");
        assert!(r.best_val_acc > 0.3, "{system:?}: val accuracy {} too low", r.best_val_acc);
    }
}

#[test]
fn single_machine_systems_have_no_network_traffic() {
    let data = small_replica();
    for system in [System::DglLike, System::PygLike] {
        let r = run(system, &data, &params(3)).unwrap();
        assert_eq!(r.total_bytes(), 0, "{system:?} should be network-free");
        assert_eq!(r.num_workers, 1);
    }
}

#[test]
fn graph_centered_systems_move_vertex_messages() {
    let data = small_replica();
    for system in [System::NonCp, System::EcGraph, System::DistGnn] {
        let r = run(system, &data, &params(3)).unwrap();
        let fp: u64 = r.epochs.iter().map(|e| e.fp_bytes).sum();
        assert!(fp > 0, "{system:?} should exchange embeddings");
    }
}

#[test]
fn ml_centered_system_moves_no_vertex_messages_per_epoch() {
    let data = small_replica();
    let r = run(System::AliGraphFg, &data, &params(3)).unwrap();
    assert_eq!(
        r.epochs.iter().map(|e| e.fp_bytes).sum::<u64>(),
        0,
        "ML-centered training must not exchange embeddings"
    );
    let param: u64 = r.epochs.iter().map(|e| e.param_bytes).sum();
    assert!(param > 0, "but it still pulls/pushes parameters");
}

#[test]
fn ec_graph_moves_fewer_bytes_than_noncp() {
    let data = small_replica();
    let exact = run(System::NonCp, &data, &params(10)).unwrap();
    let ec = run(System::EcGraph, &data, &params(10)).unwrap();
    assert!(
        ec.total_bytes() < exact.total_bytes(),
        "EC-Graph {} bytes not below Non-cp {}",
        ec.total_bytes(),
        exact.total_bytes()
    );
}

#[test]
fn distgnn_moves_fewer_forward_bytes_than_noncp() {
    let data = small_replica();
    let exact = run(System::NonCp, &data, &params(10)).unwrap();
    let d = run(System::DistGnn, &data, &params(10)).unwrap();
    // Skip epoch 0 (full cache population) when comparing.
    let fp = |r: &ec_graph_repro::ecgraph::report::RunResult| {
        r.epochs.iter().skip(1).map(|e| e.fp_bytes).sum::<u64>()
    };
    assert!(fp(&d) < fp(&exact) / 2, "delayed aggregation saved too little");
}

#[test]
fn sampled_systems_respect_the_epoch_structure() {
    let data = small_replica();
    for system in [System::DistDgl, System::Agl, System::EcGraphS] {
        let r = run(system, &data, &params(4)).unwrap();
        assert_eq!(r.epochs.len(), 4, "{system:?} epoch count");
        assert!(r.epochs.iter().all(|e| e.compute_s > 0.0));
    }
}
