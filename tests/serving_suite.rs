//! The serving path's correctness contract:
//!
//! 1. a checkpoint written by a trained engine reloads — through a *fresh*
//!    engine and through the engine-free `ModelWeights` path — into
//!    byte-identical forward output;
//! 2. in exact-fetch mode every served answer is bit-identical to the
//!    corresponding row of the full-graph forward pass;
//! 3. the embedding cache is invisible: cache-on and cache-off runs return
//!    byte-identical answers, for exact *and* quantized fetches, before
//!    and after a checkpoint refresh (DESIGN.md §10's coherence rule);
//! 4. the closed-loop load generator is a pure function of its seed.

use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::{ModelKind, TrainingConfig};
use ec_graph_repro::ecgraph::engine::DistributedEngine;
use ec_graph_repro::ecgraph::infer::ModelWeights;
use ec_graph_repro::partition::hash::HashPartitioner;
use ec_graph_repro::partition::{Partition, Partitioner};
use ec_graph_repro::serve::service::ServeError;
use ec_graph_repro::serve::{run_closed_loop, InferenceService, ServeConfig, WorkloadConfig};
use ec_graph_repro::tensor::{CsrMatrix, Matrix};
use std::sync::Arc;

type Fixture = (
    Arc<ec_graph_repro::data::AttributedGraph>,
    Vec<Arc<CsrMatrix>>,
    Arc<Partition>,
    TrainingConfig,
);

const WORKERS: usize = 4;

fn fixture(model: ModelKind) -> Fixture {
    let data = Arc::new(DatasetSpec::cora().instantiate_with(130, 10, 5));
    let adj = Arc::new(ec_graph_repro::data::normalize::gcn_normalized_adjacency(&data.graph));
    let adjs = vec![adj; 2];
    let config = TrainingConfig {
        dims: vec![10, 8, data.num_classes],
        model,
        num_workers: WORKERS,
        max_epochs: 3,
        seed: 7,
        ..TrainingConfig::defaults(10, data.num_classes)
    };
    let partition = Arc::new(HashPartitioner::default().partition(&data.graph, WORKERS));
    (data, adjs, partition, config)
}

fn trained_engine(fx: &Fixture, epochs: usize) -> DistributedEngine {
    let (data, adjs, partition, config) = fx;
    let mut engine = DistributedEngine::new(
        Arc::clone(data),
        adjs.clone(),
        (**partition).clone(),
        config.clone(),
    );
    for _ in 0..epochs {
        engine.run_epoch();
    }
    engine
}

fn bits_of(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// Serves every vertex through its owning worker in fixed-size batches and
/// stacks the answers back into vertex order.
fn serve_all(svc: &mut InferenceService, n: usize, out_dim: usize) -> Matrix {
    let mut out = Matrix::zeros(n, out_dim);
    for w in 0..svc.num_workers() {
        let owned: Vec<u32> = (0..n as u32).filter(|&v| svc.route(v as usize) == w).collect();
        for chunk in owned.chunks(8) {
            let (logits, _) = svc.answer_batch(w, chunk).expect("valid batch");
            for (i, &v) in chunk.iter().enumerate() {
                out.set_row(v as usize, logits.row(i));
            }
        }
    }
    out
}

/// Satellite: `save_checkpoint` → fresh engine → `load_checkpoint` must
/// reproduce `forward_global` to the bit, with the engine-free
/// `ModelWeights::load` path agreeing as a third witness.
#[test]
fn on_disk_checkpoint_round_trips_bit_identically() {
    for model in [ModelKind::Gcn, ModelKind::Sage] {
        let fx = fixture(model);
        let trained = trained_engine(&fx, 3);
        let reference = trained.forward_global();
        let path = std::env::temp_dir().join(format!(
            "serving_suite_rt_{:?}_{}.ckpt",
            model,
            std::process::id()
        ));
        trained.save_checkpoint(&path).expect("save");
        drop(trained);

        let mut fresh = trained_engine(&fx, 0);
        assert_ne!(
            bits_of(&fresh.forward_global()),
            bits_of(&reference),
            "fresh engine must start from different weights or the test is vacuous"
        );
        fresh.load_checkpoint(&path).expect("load");
        assert_eq!(bits_of(&fresh.forward_global()), bits_of(&reference));

        let standalone = ModelWeights::load(&path, model).expect("standalone load");
        let (_, adjs, _, _) = &fx;
        let out = standalone.forward(adjs, &fx.0.features, 1);
        assert_eq!(bits_of(&out), bits_of(&reference));
        let _ = std::fs::remove_file(&path);
    }
}

/// Acceptance: exact-fetch serving reproduces the full forward pass bit
/// for bit, for both model kinds.
#[test]
fn served_answers_match_the_full_forward_pass() {
    for model in [ModelKind::Gcn, ModelKind::Sage] {
        let fx = fixture(model);
        let engine = trained_engine(&fx, 3);
        let reference = engine.forward_global();
        let weights = engine.inference_model();
        let (data, adjs, partition, _) = &fx;
        let mut svc = InferenceService::new(
            weights,
            Arc::clone(data),
            adjs.clone(),
            Arc::clone(partition),
            ServeConfig::defaults(WORKERS),
        );
        let served = serve_all(&mut svc, data.num_vertices(), data.num_classes);
        assert_eq!(bits_of(&served), bits_of(&reference), "{model:?} serving diverged");
    }
}

/// Acceptance: the cache is invisible — cache-on and cache-off (direct)
/// answers are byte-identical under exact and quantized fetches, and stay
/// so after a simulated checkpoint refresh.
#[test]
fn cached_answers_are_byte_identical_to_direct_answers() {
    for fetch_bits in [None, Some(8u8)] {
        let fx = fixture(ModelKind::Gcn);
        let engine_v0 = trained_engine(&fx, 2);
        let weights_v0 = engine_v0.inference_model();
        let (data, adjs, partition, _) = &fx;
        let n = data.num_vertices();

        let build = |cache_rows: usize, pinned_rows: usize| {
            let mut sc = ServeConfig::defaults(WORKERS);
            sc.cache_rows = cache_rows;
            sc.pinned_rows = pinned_rows;
            sc.fetch_bits = fetch_bits;
            InferenceService::new(
                weights_v0.clone(),
                Arc::clone(data),
                adjs.clone(),
                Arc::clone(partition),
                sc,
            )
        };
        let mut cached = build(256, 32);
        let mut direct = build(0, 0);

        // Serve everything twice so the second pass hits warm cache rows.
        let _ = serve_all(&mut cached, n, data.num_classes);
        let warm = serve_all(&mut cached, n, data.num_classes);
        let cold = serve_all(&mut direct, n, data.num_classes);
        assert_eq!(
            bits_of(&warm),
            bits_of(&cold),
            "cache changed an answer (fetch_bits {fetch_bits:?})"
        );
        let hits: u64 = cached.cache_stats().iter().map(|s| s.0).sum();
        assert!(hits > 0, "the cached run must actually hit the cache");

        // Simulated checkpoint refresh: train further, push new weights.
        let engine_v1 = trained_engine(&fx, 3);
        let weights_v1 = engine_v1.inference_model();
        cached.refresh(weights_v1.clone());
        direct.refresh(weights_v1);
        assert_eq!(cached.version(), 1);
        let warm_v1 = serve_all(&mut cached, n, data.num_classes);
        let cold_v1 = serve_all(&mut direct, n, data.num_classes);
        assert_eq!(
            bits_of(&warm_v1),
            bits_of(&cold_v1),
            "cache served stale rows after refresh (fetch_bits {fetch_bits:?})"
        );
        assert_ne!(bits_of(&warm_v1), bits_of(&warm), "refresh must change the answers");
    }
}

/// Routing misuse is reported as a value, never a panic (the request loop
/// is in `no-panic-hot-path` scope).
#[test]
fn misrouted_and_out_of_range_batches_are_rejected() {
    let fx = fixture(ModelKind::Gcn);
    let engine = trained_engine(&fx, 1);
    let (data, adjs, partition, _) = &fx;
    let mut svc = InferenceService::new(
        engine.inference_model(),
        Arc::clone(data),
        adjs.clone(),
        Arc::clone(partition),
        ServeConfig::defaults(WORKERS),
    );
    let v0 = 0u32;
    let wrong = (svc.route(0) + 1) % WORKERS;
    assert!(matches!(
        svc.answer_batch(wrong, &[v0]),
        Err(ServeError::WrongOwner { vertex: 0, .. })
    ));
    let out_of_range = data.num_vertices() as u32;
    assert!(matches!(
        svc.answer_batch(svc.route(0), &[out_of_range]),
        Err(ServeError::VertexOutOfRange(v)) if v == out_of_range
    ));
}

/// The closed loop is a pure function of (config, seed): identical runs
/// emit byte-identical reports; a different seed must change them.
#[test]
fn closed_loop_reports_are_seed_deterministic() {
    ec_graph_repro::comm::set_deterministic_timing(true);
    let fx = fixture(ModelKind::Gcn);
    let engine = trained_engine(&fx, 2);
    let weights = engine.inference_model();
    let (data, adjs, partition, _) = &fx;
    let run = |seed: u64| {
        let mut svc = InferenceService::new(
            weights.clone(),
            Arc::clone(data),
            adjs.clone(),
            Arc::clone(partition),
            ServeConfig::defaults(WORKERS),
        );
        let workload = WorkloadConfig { total_requests: 400, seed, ..WorkloadConfig::defaults() };
        run_closed_loop(&mut svc, &workload).to_json().to_string()
    };
    let a = run(17);
    assert_eq!(a, run(17), "identical serving runs diverged");
    assert_ne!(a, run(18), "the workload seed must influence the run");
}
