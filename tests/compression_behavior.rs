//! Qualitative reproduction of the paper's Figs. 6–7 at test scale:
//! aggressive compression without compensation degrades convergence, and
//! ReqEC-FP / ResEC-BP recover (most of) it while keeping the traffic
//! savings.

use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph_repro::ecgraph::report::RunResult;
use ec_graph_repro::ecgraph::trainer::train;
use ec_graph_repro::partition::hash::HashPartitioner;
use std::sync::Arc;

fn run(
    data: &Arc<ec_graph_repro::data::AttributedGraph>,
    fp: FpMode,
    bp: BpMode,
    label: &str,
    epochs: usize,
) -> RunResult {
    let config = TrainingConfig {
        dims: vec![data.feature_dim(), 16, data.num_classes],
        num_workers: 6,
        max_epochs: epochs,
        fp_mode: fp,
        bp_mode: bp,
        seed: 3,
        ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
    };
    train(Arc::clone(data), &HashPartitioner::default(), config, label)
}

/// A Cora-like replica (label noise caps accuracy at ≈ 0.87, the paper's
/// band) at reduced scale — used by the loss-sensitive BP tests.
///
/// Seed 5 under the vendored PRNG (see `shims/rand`) yields a replica with
/// the intended sensitivity to low-bit quantization; seed choice is
/// stream-specific, not semantic.
fn dataset() -> Arc<ec_graph_repro::data::AttributedGraph> {
    Arc::new(DatasetSpec::cora().instantiate_with(2_708, 256, 5))
}

/// The dense Reddit replica — the regime the paper flags as most
/// susceptible to compression ("graphs with a larger average degree are
/// more susceptible to the number of bits").
fn dense_dataset() -> Arc<ec_graph_repro::data::AttributedGraph> {
    Arc::new(DatasetSpec::reddit().instantiate_with(2_048, 602, 5))
}

#[test]
fn fp_compression_hurts_and_reqec_recovers() {
    let data = dense_dataset();
    let epochs = 60;
    let noncp = run(&data, FpMode::Exact, BpMode::Exact, "non-cp", epochs);
    let cp1 = run(&data, FpMode::Compressed { bits: 1 }, BpMode::Exact, "cp-fp-1", epochs);
    let ec1 = run(
        &data,
        FpMode::ReqEc { bits: 1, t_tr: 10, adaptive: false },
        BpMode::Exact,
        "reqec-fp-1",
        epochs,
    );
    // 1-bit quantization without compensation must measurably hurt test
    // accuracy on the dense replica (the larger split keeps this stable).
    assert!(
        noncp.best_test_acc - cp1.best_test_acc > 0.004,
        "Cp-fp-1 ({}) should trail Non-cp ({})",
        cp1.best_test_acc,
        noncp.best_test_acc
    );
    // ReqEC-FP must recover (essentially all of) the gap.
    assert!(
        ec1.best_test_acc > cp1.best_test_acc + 0.003,
        "ReqEC-FP-1 ({}) should beat Cp-fp-1 ({})",
        ec1.best_test_acc,
        cp1.best_test_acc
    );
    assert!(
        ec1.best_test_acc >= noncp.best_test_acc - 0.005,
        "ReqEC-FP-1 ({}) should reach Non-cp ({})",
        ec1.best_test_acc,
        noncp.best_test_acc
    );
    // …while still moving far fewer forward bytes than Non-cp.
    let fp_bytes = |r: &RunResult| r.epochs.iter().map(|e| e.fp_bytes).sum::<u64>();
    assert!(
        fp_bytes(&ec1) < fp_bytes(&noncp) / 2,
        "ReqEC-FP traffic {} not well below Non-cp {}",
        fp_bytes(&ec1),
        fp_bytes(&noncp)
    );
}

#[test]
fn bp_compression_hurts_and_resec_recovers() {
    let data = dataset();
    let epochs = 80;
    let noncp = run(&data, FpMode::Exact, BpMode::Exact, "non-cp", epochs);
    let cp1 = run(&data, FpMode::Exact, BpMode::Compressed { bits: 1 }, "cp-bp-1", epochs);
    let ec1 = run(&data, FpMode::Exact, BpMode::ResEc { bits: 1 }, "resec-bp-1", epochs);
    let final_loss = |r: &RunResult| r.epochs.last().unwrap().loss;
    // Biased 1-bit gradients stall the optimization relative to exact.
    assert!(
        final_loss(&cp1) > final_loss(&noncp),
        "Cp-bp-1 loss {} should exceed Non-cp {}",
        final_loss(&cp1),
        final_loss(&noncp)
    );
    // Error feedback must land closer to the exact trajectory than plain
    // compression — on loss and on accuracy.
    assert!(
        final_loss(&ec1) < final_loss(&cp1),
        "ResEC-BP-1 loss {} should beat Cp-bp-1 {}",
        final_loss(&ec1),
        final_loss(&cp1)
    );
    assert!(
        ec1.best_val_acc >= cp1.best_val_acc - 0.01,
        "ResEC-BP-1 acc ({}) collapsed vs Cp-bp-1 ({})",
        ec1.best_val_acc,
        cp1.best_val_acc
    );
}

#[test]
fn more_bits_means_less_error_more_traffic() {
    let data = dataset();
    let epochs = 15;
    let cp2 = run(&data, FpMode::Compressed { bits: 2 }, BpMode::Exact, "cp-fp-2", epochs);
    let cp8 = run(&data, FpMode::Compressed { bits: 8 }, BpMode::Exact, "cp-fp-8", epochs);
    let fp_bytes = |r: &RunResult| r.epochs.iter().map(|e| e.fp_bytes).sum::<u64>();
    assert!(fp_bytes(&cp8) > 3 * fp_bytes(&cp2));
    assert!(cp8.epochs.last().unwrap().loss <= cp2.epochs.last().unwrap().loss + 0.05);
}

#[test]
fn adaptive_bit_tuner_changes_bits() {
    let data = dataset();
    let config = TrainingConfig {
        dims: vec![data.feature_dim(), 16, data.num_classes],
        num_workers: 6,
        max_epochs: 25,
        fp_mode: FpMode::ReqEc { bits: 4, t_tr: 5, adaptive: true },
        seed: 3,
        ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
    };
    let adj = Arc::new(ec_graph_repro::data::normalize::gcn_normalized_adjacency(&data.graph));
    let partition = ec_graph_repro::partition::Partitioner::partition(
        &HashPartitioner::default(),
        &data.graph,
        6,
    );
    let adjs = vec![adj; config.num_layers()];
    let mut engine = ec_graph_repro::ecgraph::engine::DistributedEngine::new(
        Arc::clone(&data),
        adjs,
        partition,
        config,
    );
    for _ in 0..25 {
        engine.run_epoch();
    }
    let bits: Vec<u8> = engine.fp_bits().iter().flat_map(|row| row.iter().copied()).collect();
    // The tuner must have moved at least one pair off the initial width,
    // and every width must stay in the paper's {1,2,4,8,16} set.
    assert!(bits.iter().any(|&b| b != 4), "tuner never adjusted: {bits:?}");
    assert!(bits.iter().all(|&b| [1, 2, 4, 8, 16].contains(&b)), "bits {bits:?}");
}

#[test]
fn delayed_aggregation_saves_traffic_but_slows_convergence() {
    // DistGNN-style staleness: ~1/r of the forward traffic, worse loss at
    // a fixed epoch budget.
    let data = dataset();
    let epochs = 40;
    let exact = run(&data, FpMode::Exact, BpMode::Exact, "non-cp", epochs);
    let delayed = run(&data, FpMode::Delayed { r: 5 }, BpMode::Exact, "distgnn-like", epochs);
    let fp_bytes = |r: &RunResult| r.epochs.iter().skip(1).map(|e| e.fp_bytes).sum::<u64>();
    assert!(
        fp_bytes(&delayed) < fp_bytes(&exact) / 2,
        "delayed traffic {} not well below exact {}",
        fp_bytes(&delayed),
        fp_bytes(&exact)
    );
    assert!(
        delayed.epochs.last().unwrap().loss >= exact.epochs.last().unwrap().loss,
        "stale aggregation should not out-converge exact"
    );
}
