//! Exporter golden snapshots: a tiny two-worker Trace-level run under
//! deterministic timing must serialize to byte-identical Chrome-trace,
//! JSONL and metrics-JSON files on every machine and thread count. The
//! fixtures live in `tests/golden/`; after an intentional format or
//! content change, regenerate them with
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test telemetry_suite
//! ```
//!
//! and review the diff like any other code change.

use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph_repro::ecgraph::trainer::train;
use ec_graph_repro::partition::hash::HashPartitioner;
use ec_graph_repro::trace::{
    export, jsonck, timeline, TelemetryConfig, TelemetryLevel, TelemetryReport,
};
use std::path::PathBuf;
use std::sync::Arc;

/// The fixture run: small enough that the goldens stay reviewable, rich
/// enough to exercise every exporter code path (spans on all tracks,
/// counters, gauges and histograms).
fn trace_run() -> TelemetryReport {
    ec_comm::set_deterministic_timing(true);
    let data = Arc::new(DatasetSpec::cora().instantiate_with(60, 8, 7));
    let config = TrainingConfig {
        dims: vec![8, 6, data.num_classes],
        num_workers: 2,
        fp_mode: FpMode::ReqEc { bits: 2, t_tr: 2, adaptive: true },
        bp_mode: BpMode::ResEc { bits: 4 },
        max_epochs: 3,
        seed: 7,
        telemetry: TelemetryConfig::at(TelemetryLevel::Trace),
        ..TrainingConfig::defaults(8, data.num_classes)
    };
    let r = train(data, &HashPartitioner::default(), config, "golden");
    r.telemetry.expect("Trace run must attach a telemetry report")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `actual` against the stored fixture, or rewrites the fixture
/// when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden fixture {} ({e}); regenerate with \
             UPDATE_GOLDEN=1 cargo test --test telemetry_suite",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden fixture; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test --test telemetry_suite and review the diff"
    );
}

#[test]
fn chrome_trace_matches_golden() {
    let report = trace_run();
    let text = export::chrome_trace_json(&report);
    jsonck::validate_json(&text).expect("chrome trace must be valid JSON");
    // Metadata names every track; complete events carry the EC phases.
    for needle in ["thread_name", "worker 0", "worker 1", "network", "fp:exchange", "\"epoch\""] {
        assert!(text.contains(needle), "chrome trace missing {needle:?}");
    }
    check_golden("trace.json", &text);
}

#[test]
fn jsonl_event_log_matches_golden() {
    let report = trace_run();
    let text = export::jsonl(&report);
    let lines = jsonck::validate_jsonl(&text).expect("event log must be valid JSONL");
    assert_eq!(
        lines,
        report.spans.len() + report.rows.len(),
        "one JSONL line per span and per metric row"
    );
    check_golden("events.jsonl", &text);
}

#[test]
fn metrics_json_matches_golden() {
    let report = trace_run();
    let text = export::metrics_json(&report);
    jsonck::validate_json(&text).expect("metrics export must be valid JSON");
    for needle in ["selector.pdt", "bittuner.bits", "resec.residual_l2sq", "resec.theorem1_bound"] {
        assert!(text.contains(needle), "metrics export missing {needle:?}");
    }
    check_golden("metrics.json", &text);
}

#[test]
fn timeline_json_matches_golden() {
    let report = trace_run();
    let text = timeline::timeline_json(&report);
    jsonck::validate_json(&text).expect("timeline export must be valid JSON");
    // Deterministic timing zeroes host measurements, but the simulated
    // comm-wire seconds survive — the attribution is not all-zero.
    assert!(text.starts_with(r#"{"level":"trace","overlap_headroom_s":"#));
    for needle in ["comm_wire_s", "\"tracks\"", "\"phases\"", "fp:exchange"] {
        assert!(text.contains(needle), "timeline export missing {needle:?}");
    }
    check_golden("timeline.json", &text);
}

#[test]
fn folded_stacks_match_golden() {
    let report = trace_run();
    let text = timeline::folded_stacks(&report);
    // Flamegraph collapsed format: every line is `stack <integer>`.
    for line in text.lines() {
        let (stack, micros) = line.rsplit_once(' ').expect("line has a sample count");
        assert_eq!(stack.split(';').count(), 3, "stack is track;cat;name: {line}");
        micros.parse::<u64>().expect("integer microseconds");
    }
    assert!(text.lines().any(|l| l.contains(";fp;fp:exchange")));
    check_golden("stacks.folded", &text);
}

/// The fixture run must actually carry the EC-specific series the goldens
/// are meant to pin down (guards against a silently empty registry).
#[test]
fn fixture_run_records_ec_internals() {
    let report = trace_run();
    let decided: u64 = ["selector.cps", "selector.pdt", "selector.avg"]
        .iter()
        .flat_map(|n| report.rows_named(n))
        .filter_map(|r| match r.value {
            ec_graph_repro::trace::MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .sum();
    assert!(decided > 0, "Selector decisions must be counted");
    assert!(
        report.rows_named("bittuner.bits").next().is_some(),
        "adaptive run must log the Bit-Tuner trajectory"
    );
    assert!(
        report.gauge("resec.residual_l2sq", &[1, 2]).is_some(),
        "ResEC residual norms must be logged per layer"
    );
    assert!(
        report.gauge("resec.theorem1_bound", &[1, 2]).is_some(),
        "Theorem 1 bound must accompany the residuals"
    );
    assert!(
        report.rows_named("traffic.link_bytes").next().is_some(),
        "per-link traffic must reach the registry"
    );
    assert!(report.spans.iter().any(|s| s.name == "fp:exchange"), "spans must cover FP exchange");
    assert_eq!(report.dropped_spans, 0, "fixture run must fit in the default rings");
}
