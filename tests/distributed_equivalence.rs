//! The load-bearing correctness test of the reproduction: with compression
//! disabled, the distributed engine (manual gradients, Eqs. 4–6, any
//! number of workers, any partitioner) must follow *exactly* the same
//! training trajectory as the single-machine autodiff trainer.

use ec_graph_repro::data::normalize;
use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::TrainingConfig;
use ec_graph_repro::ecgraph::engine::DistributedEngine;
use ec_graph_repro::nn::GcnNetwork;
use ec_graph_repro::partition::hash::HashPartitioner;
use ec_graph_repro::partition::metis::MetisLikePartitioner;
use ec_graph_repro::partition::Partitioner;
use std::sync::Arc;

fn build_engine(
    data: &Arc<ec_graph_repro::data::AttributedGraph>,
    dims: Vec<usize>,
    workers: usize,
    partitioner: &dyn Partitioner,
    seed: u64,
) -> DistributedEngine {
    let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
    let partition = partitioner.partition(&data.graph, workers);
    let config = TrainingConfig {
        dims,
        num_workers: workers,
        seed,
        ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
    };
    let adjs = vec![adj; config.num_layers()];
    DistributedEngine::new(Arc::clone(data), adjs, partition, config)
}

fn local_reference(
    data: &Arc<ec_graph_repro::data::AttributedGraph>,
    dims: &[usize],
    seed: u64,
    epochs: usize,
) -> GcnNetwork {
    let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
    let mut net = GcnNetwork::new(dims, 0.01, seed);
    for _ in 0..epochs {
        net.train_epoch(&adj, &data.features, &data.labels, &data.split.train);
    }
    net
}

#[test]
fn two_layer_engine_matches_autodiff_trajectory() {
    let data = Arc::new(DatasetSpec::cora().instantiate_with(100, 12, 7));
    let dims = vec![12, 8, data.num_classes];
    let mut engine = build_engine(&data, dims.clone(), 4, &HashPartitioner::default(), 42);
    for _ in 0..5 {
        engine.run_epoch();
    }
    let reference = local_reference(&data, &dims, 42, 5);
    let dist = engine.weights();
    for (l, (w, b)) in dist.iter().enumerate() {
        assert!(
            w.approx_eq(&reference.weights()[l], 2e-3),
            "layer {l} weights diverged after 5 epochs"
        );
        for (x, y) in b.iter().zip(reference.biases()[l].row(0)) {
            assert!((x - y).abs() < 2e-3, "layer {l} bias diverged");
        }
    }
}

#[test]
fn three_layer_engine_matches_autodiff_trajectory() {
    let data = Arc::new(DatasetSpec::pubmed().instantiate_with(90, 10, 9));
    let dims = vec![10, 8, 8, data.num_classes];
    let mut engine = build_engine(&data, dims.clone(), 3, &HashPartitioner::default(), 7);
    for _ in 0..4 {
        engine.run_epoch();
    }
    let reference = local_reference(&data, &dims, 7, 4);
    for (l, (w, _)) in engine.weights().iter().enumerate() {
        assert!(w.approx_eq(&reference.weights()[l], 3e-3), "3-layer engine diverged at layer {l}");
    }
}

#[test]
fn trajectory_is_independent_of_worker_count() {
    let data = Arc::new(DatasetSpec::cora().instantiate_with(80, 8, 3));
    let dims = vec![8, 8, data.num_classes];
    let mut weights = Vec::new();
    for workers in [1usize, 2, 5] {
        let mut engine =
            build_engine(&data, dims.clone(), workers, &HashPartitioner::default(), 11);
        for _ in 0..3 {
            engine.run_epoch();
        }
        weights.push(engine.weights());
    }
    for other in &weights[1..] {
        for (l, ((wa, _), (wb, _))) in weights[0].iter().zip(other).enumerate() {
            assert!(wa.approx_eq(wb, 2e-3), "worker-count dependence at layer {l}");
        }
    }
}

#[test]
fn trajectory_is_independent_of_partitioner() {
    let data = Arc::new(DatasetSpec::cora().instantiate_with(80, 8, 5));
    let dims = vec![8, 8, data.num_classes];
    let mut a = build_engine(&data, dims.clone(), 4, &HashPartitioner::default(), 13);
    let mut b = build_engine(&data, dims.clone(), 4, &MetisLikePartitioner::default(), 13);
    for _ in 0..3 {
        a.run_epoch();
        b.run_epoch();
    }
    for ((wa, _), (wb, _)) in a.weights().iter().zip(&b.weights()) {
        assert!(wa.approx_eq(wb, 2e-3), "partitioner changed the trajectory");
    }
}

#[test]
fn engine_loss_matches_local_loss_epoch_one() {
    let data = Arc::new(DatasetSpec::cora().instantiate_with(70, 8, 21));
    let dims = vec![8, 8, data.num_classes];
    let mut engine = build_engine(&data, dims.clone(), 3, &HashPartitioner::default(), 5);
    let stats = engine.run_epoch();

    let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
    let net = GcnNetwork::new(&dims, 0.01, 5);
    let (loss, _, _) = net.compute_gradients(&adj, &data.features, &data.labels, &data.split.train);
    assert!((stats.loss - loss).abs() < 1e-4, "distributed loss {} vs local {loss}", stats.loss);
}

/// Sage-mode cross-check: the engine's manual Sage gradients must follow
/// the same trajectory as a tape-built reference of the same model
/// (`H^l = σ(Â(H W_n) + H W_s + b)`).
#[test]
fn sage_engine_matches_autodiff_trajectory() {
    use ec_graph_repro::ecgraph::config::ModelKind;
    use ec_graph_repro::nn::loss::masked_softmax_cross_entropy;
    use ec_graph_repro::nn::optim::Adam;
    use ec_graph_repro::nn::Tape;
    use ec_graph_repro::tensor::{init, Matrix};

    let data = Arc::new(DatasetSpec::cora().instantiate_with(90, 10, 31));
    let dims = vec![10usize, 8, data.num_classes];
    let num_layers = dims.len() - 1;
    let seed = 77u64;
    let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));

    // Distributed Sage engine.
    let config = TrainingConfig {
        dims: dims.clone(),
        model: ModelKind::Sage,
        num_workers: 3,
        seed,
        ..TrainingConfig::defaults(10, data.num_classes)
    };
    let partition = HashPartitioner::default().partition(&data.graph, 3);
    let mut engine = DistributedEngine::new(
        Arc::clone(&data),
        vec![Arc::clone(&adj); num_layers],
        partition,
        config,
    );

    // Tape reference with the *same* parameter initialization: the engine's
    // servers hold [W_n per layer | W_s per layer], xavier(seed + slot).
    let mut w_n: Vec<Matrix> = (0..num_layers)
        .map(|l| init::xavier_uniform(dims[l], dims[l + 1], seed.wrapping_add(l as u64)))
        .collect();
    let mut w_s: Vec<Matrix> = (0..num_layers)
        .map(|l| {
            init::xavier_uniform(dims[l], dims[l + 1], seed.wrapping_add((num_layers + l) as u64))
        })
        .collect();
    let mut biases: Vec<Matrix> = dims[1..].iter().map(|&d| Matrix::zeros(1, d)).collect();
    let mut shapes: Vec<(usize, usize)> = w_n.iter().map(|m| m.shape()).collect();
    shapes.extend(w_s.iter().map(|m| m.shape()));
    shapes.extend(biases.iter().map(|m| m.shape()));
    let mut adam = Adam::new(&shapes, 0.01);

    for _ in 0..4 {
        engine.run_epoch();

        let mut tape = Tape::new();
        let x = tape.constant(data.features.clone());
        let wn_ids: Vec<_> = w_n.iter().map(|w| tape.parameter(w.clone())).collect();
        let ws_ids: Vec<_> = w_s.iter().map(|w| tape.parameter(w.clone())).collect();
        let b_ids: Vec<_> = biases.iter().map(|b| tape.parameter(b.clone())).collect();
        let mut h = x;
        for l in 0..num_layers {
            let hw = tape.matmul(h, wn_ids[l]);
            let agg = tape.spmm(Arc::clone(&adj), hw);
            let hs = tape.matmul(h, ws_ids[l]);
            let sum = tape.add(agg, hs);
            let z = tape.add_bias(sum, b_ids[l]);
            h = if l + 1 < num_layers { tape.relu(z) } else { z };
        }
        let (_, grad) =
            masked_softmax_cross_entropy(tape.value(h), &data.labels, &data.split.train);
        tape.backward(h, grad);
        let mut params: Vec<Matrix> = w_n.iter().chain(&w_s).chain(&biases).cloned().collect();
        let grads: Vec<Matrix> = wn_ids
            .iter()
            .chain(&ws_ids)
            .chain(&b_ids)
            .map(|&id| tape.grad(id).unwrap().clone())
            .collect();
        adam.step(&mut params, &grads);
        w_n = params[..num_layers].to_vec();
        w_s = params[num_layers..2 * num_layers].to_vec();
        biases = params[2 * num_layers..].to_vec();
    }

    let dist = engine.weights();
    for l in 0..num_layers {
        assert!(dist[l].0.approx_eq(&w_n[l], 3e-3), "layer {l} W_n diverged");
        assert!(dist[num_layers + l].0.approx_eq(&w_s[l], 3e-3), "layer {l} W_s diverged");
        for (a, b) in dist[l].1.iter().zip(biases[l].row(0)) {
            assert!((a - b).abs() < 3e-3, "layer {l} bias diverged");
        }
    }
}
