//! Resilience subsystem integration tests: fault injection must be
//! deterministic and strictly opt-in (a none-plan is bit-identical to no
//! plan), checkpoints must resume training exactly, crash recovery must
//! reproduce the uninterrupted loss curve, and the EC-degrade policy must
//! buy simulated time without giving up accuracy.

use ec_graph_repro::comm::stats::Channel;
use ec_graph_repro::comm::{NetworkModel, SimNetwork};
use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::{BpMode, FpMode, ResiliencePolicy, TrainingConfig};
use ec_graph_repro::ecgraph::trainer::train;
use ec_graph_repro::ecgraph::DistributedEngine;
use ec_graph_repro::faults::FaultPlan;
use ec_graph_repro::partition::hash::HashPartitioner;
use ec_graph_repro::partition::Partitioner;
use proptest::prelude::*;
use std::sync::Arc;

fn reqec_config(data: &ec_graph_repro::data::AttributedGraph, epochs: usize) -> TrainingConfig {
    TrainingConfig {
        dims: vec![data.feature_dim(), 16, data.num_classes],
        num_workers: 4,
        fp_mode: FpMode::ReqEc { bits: 4, t_tr: 10, adaptive: false },
        bp_mode: BpMode::ResEc { bits: 4 },
        max_epochs: epochs,
        seed: 2,
        ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
    }
}

fn tiny_data() -> Arc<ec_graph_repro::data::AttributedGraph> {
    Arc::new(DatasetSpec::cora().instantiate_with(140, 12, 3))
}

fn engine_for(config: TrainingConfig) -> DistributedEngine {
    let data = tiny_data();
    let adj = Arc::new(ec_graph_repro::data::normalize::gcn_normalized_adjacency(&data.graph));
    let adjs = vec![adj; config.num_layers()];
    let partition = HashPartitioner::default().partition(&data.graph, config.num_workers);
    DistributedEngine::new(data, adjs, partition, config)
}

// ---------------------------------------------------------------------
// Fault-free equivalence: a zero-probability plan is the identity.
// ---------------------------------------------------------------------

/// A `FaultPlan::none()` engine must produce bit-identical traffic ledgers
/// and epoch times to an engine with no plan at all — the fault machinery
/// must cost nothing when unused.
#[test]
fn none_plan_training_is_bit_identical() {
    let data = tiny_data();
    let run = |faults: FaultPlan| {
        let mut config = reqec_config(&data, 4);
        config.faults = faults;
        let r = train(Arc::clone(&data), &HashPartitioner::default(), config, "x");
        r.epochs
            .iter()
            .map(|e| (e.loss.to_bits(), e.comm_s.to_bits(), e.total_bytes, e.retry_bytes))
            .collect::<Vec<_>>()
    };
    let plain = run(FaultPlan::none());
    let with_plan = run(FaultPlan::none());
    assert_eq!(plain, with_plan);
    // Zero-probability link faults short-circuit to the same fast path.
    let zero_probs = run(FaultPlan::uniform_drop(99, 0.0));
    assert_eq!(plain, zero_probs);
}

// ---------------------------------------------------------------------
// Checkpoint / restore.
// ---------------------------------------------------------------------

/// Snapshot mid-training, restore into a *fresh* engine, and the remaining
/// losses must be identical — the snapshot carries the Adam moments and the
/// EC trend/residual state, not just the weights.
#[test]
fn checkpoint_restore_resumes_identically() {
    let mut original = engine_for(reqec_config(&tiny_data(), 0));
    for _ in 0..6 {
        original.run_epoch();
    }
    let snapshot = original.snapshot();
    assert_eq!(snapshot.epoch(), 6);
    let tail: Vec<f32> = (0..8).map(|_| original.run_epoch().loss).collect();

    let mut restored = engine_for(reqec_config(&tiny_data(), 0));
    restored.restore(&snapshot).expect("snapshot fits an identically-built engine");
    assert_eq!(restored.epochs_run(), 6);
    let replayed: Vec<f32> = (0..8).map(|_| restored.run_epoch().loss).collect();
    assert_eq!(tail, replayed, "restored engine must replay the exact loss curve");
}

/// A crash mid-run rolls back to the latest checkpoint and replays; the
/// final loss curve must match the uninterrupted run within 1e-4, and the
/// discarded work must be charged to `recovery_s`.
#[test]
fn crash_recovery_matches_uninterrupted_curve() {
    let data = tiny_data();
    let epochs = 12;
    let baseline = train(
        Arc::clone(&data),
        &HashPartitioner::default(),
        reqec_config(&data, epochs),
        "no-crash",
    );

    let mut config = reqec_config(&data, epochs);
    config.faults = FaultPlan::none().with_crash(1, 7);
    config.resilience.checkpoint_every = 4;
    let crashed = train(Arc::clone(&data), &HashPartitioner::default(), config, "crash");

    assert_eq!(crashed.crashes_recovered, 1);
    assert!(crashed.recovery_s > 0.0, "rolled-back epochs must be charged");
    assert_eq!(crashed.epochs.len(), baseline.epochs.len());
    for (a, b) in baseline.epochs.iter().zip(&crashed.epochs) {
        assert_eq!(a.epoch, b.epoch);
        assert!(
            (a.loss - b.loss).abs() <= 1e-4,
            "epoch {}: loss {} vs {} after recovery",
            a.epoch,
            a.loss,
            b.loss
        );
    }
}

/// Without periodic checkpoints the run still survives a crash — it
/// replays from epoch 0 (the implicit initial snapshot) and pays for it.
#[test]
fn crash_without_periodic_checkpoints_replays_from_scratch() {
    let data = tiny_data();
    let mut config = reqec_config(&data, 6);
    config.faults = FaultPlan::none().with_crash(0, 3);
    let r = train(Arc::clone(&data), &HashPartitioner::default(), config, "crash-0");
    assert_eq!(r.crashes_recovered, 1);
    assert_eq!(r.epochs.len(), 6);
    // Epochs 0..3 ran twice; the first pass is recovery time.
    let replay_cost: f64 = r.epochs.iter().take(3).map(|e| e.sim_time()).sum();
    assert!((r.recovery_s - replay_cost).abs() / replay_cost.max(1e-12) < 0.5);
}

// ---------------------------------------------------------------------
// EC-degrade vs retry-only under loss.
// ---------------------------------------------------------------------

/// Under message loss plus a straggler, the EC-degrade policy must train in
/// strictly less simulated communication time than retry-until-delivered,
/// at final accuracy no worse than the retry baseline.
#[test]
fn ec_degrade_beats_retry_only_under_loss() {
    let data = tiny_data();
    let run = |policy: ResiliencePolicy| {
        let mut config = reqec_config(&data, 30);
        config.faults = FaultPlan::uniform_drop(13, 0.05).with_straggler(0, 2.0);
        config.resilience.policy = policy;
        config.resilience.max_attempts = 1;
        train(Arc::clone(&data), &HashPartitioner::default(), config, "policy")
    };
    let retry = run(ResiliencePolicy::RetryOnly);
    let degrade = run(ResiliencePolicy::EcDegrade);

    let comm =
        |r: &ec_graph_repro::ecgraph::RunResult| -> f64 { r.epochs.iter().map(|e| e.comm_s).sum() };
    let degraded_msgs: u64 = degrade.epochs.iter().map(|e| e.degraded).sum();
    assert!(degraded_msgs > 0, "5% drop over 30 epochs must trigger degradation");
    assert_eq!(
        retry.epochs.iter().map(|e| e.degraded).sum::<u64>(),
        0,
        "retry-only must never substitute predictions"
    );
    assert!(
        comm(&degrade) < comm(&retry),
        "EC-degrade comm {} not below retry-only {}",
        comm(&degrade),
        comm(&retry)
    );
    assert!(
        degrade.best_test_acc >= retry.best_test_acc - 1e-9,
        "EC-degrade accuracy {} fell below retry-only {}",
        degrade.best_test_acc,
        retry.best_test_acc
    );
}

/// Drops make training slower, never less accurate, under retry-only: the
/// ledger charges wasted bytes and timeouts but every payload arrives.
#[test]
fn retry_only_losses_cost_time_not_accuracy() {
    let data = tiny_data();
    let run = |faults: FaultPlan| {
        let mut config = reqec_config(&data, 8);
        config.faults = faults;
        train(Arc::clone(&data), &HashPartitioner::default(), config, "x")
    };
    let clean = run(FaultPlan::none());
    let lossy = run(FaultPlan::uniform_drop(5, 0.2));
    let losses = |r: &ec_graph_repro::ecgraph::RunResult| {
        r.epochs.iter().map(|e| e.loss).collect::<Vec<_>>()
    };
    assert_eq!(losses(&clean), losses(&lossy), "guaranteed delivery ⇒ identical training");
    let comm =
        |r: &ec_graph_repro::ecgraph::RunResult| -> f64 { r.epochs.iter().map(|e| e.comm_s).sum() };
    assert!(comm(&lossy) > comm(&clean), "drops must cost simulated time");
    assert!(lossy.epochs.iter().map(|e| e.retry_bytes).sum::<u64>() > 0);
}

// ---------------------------------------------------------------------
// Property tests over the network layer.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Epoch communication time is exactly the sum of its flushed superstep
    /// times, for arbitrary traffic patterns — with and without faults.
    #[test]
    fn epoch_time_is_sum_of_supersteps(
        nodes in 2usize..6,
        drop_p in 0.0f64..0.4,
        seed in any::<u64>(),
        sends in proptest::collection::vec(
            (0usize..6, 0usize..6, 1u64..10_000, 0u8..4), 1..60),
        flush_every in 1usize..8,
    ) {
        let plan = if drop_p == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::uniform_drop(seed, drop_p).with_straggler(0, 1.5)
        };
        let model = NetworkModel { bandwidth: 1e6, latency: 1e-4 };
        let mut net = SimNetwork::with_faults(nodes, model, plan);
        let mut superstep_sum = 0.0f64;
        for (k, &(from, to, bytes, ch)) in sends.iter().enumerate() {
            let channel = match ch {
                0 => Channel::Forward,
                1 => Channel::Backward,
                2 => Channel::Parameter,
                _ => Channel::Control,
            };
            net.send(from % nodes, to % nodes, channel, bytes);
            if (k + 1) % flush_every == 0 {
                superstep_sum += net.flush_superstep();
            }
        }
        superstep_sum += net.flush_superstep();
        let (_, epoch_time) = net.end_epoch();
        prop_assert!(
            (epoch_time - superstep_sum).abs() <= 1e-12 * superstep_sum.max(1.0),
            "epoch {epoch_time} != Σ supersteps {superstep_sum}"
        );
    }

    /// Zero-probability fault plans reproduce the fault-free byte ledger
    /// bit-for-bit, and the same seed reproduces the same faulty ledger.
    #[test]
    fn fault_injection_is_deterministic_and_strictly_optional(
        nodes in 2usize..6,
        seed in any::<u64>(),
        drop_p in 0.01f64..0.5,
        sends in proptest::collection::vec((0usize..6, 0usize..6, 1u64..5_000), 1..50),
    ) {
        let model = NetworkModel { bandwidth: 1e6, latency: 1e-4 };
        let replay = |plan: FaultPlan| {
            let mut net = SimNetwork::with_faults(nodes, model, plan);
            for &(from, to, bytes) in &sends {
                net.send(from % nodes, to % nodes, Channel::Forward, bytes);
            }
            net.flush_superstep();
            for &(from, to, bytes) in &sends {
                let _ = net.try_send(to % nodes, from % nodes, Channel::Backward, bytes);
            }
            let (stats, time) = net.end_epoch();
            (stats, time.to_bits())
        };

        // p = 0 ⇒ bit-identical to no plan at all.
        let bare = replay(FaultPlan::none());
        let zero = replay(FaultPlan::uniform_drop(seed, 0.0));
        prop_assert_eq!(&bare, &zero);
        prop_assert_eq!(bare.0.retry_bytes, 0);

        // Same seed ⇒ same ledger; and the ledger is really different from
        // the clean one once failures actually occur.
        let a = replay(FaultPlan::uniform_drop(seed, drop_p));
        let b = replay(FaultPlan::uniform_drop(seed, drop_p));
        prop_assert_eq!(&a, &b);
        if a.0.retry_bytes > 0 {
            // Failures can only add wasted bytes (guaranteed sends retry on
            // top; try_send drops shift payload bytes into the retry
            // ledger) — never shrink the wire total.
            prop_assert!(a.0.total_bytes() >= bare.0.total_bytes());
            prop_assert!(a.0 != bare.0, "faulty ledger must differ from the clean one");
        }
    }
}
