#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), and the whole
# workspace test suite. CI runs exactly this script.
# Pass --bench to also run the hot-path and serving benchmarks (writes
# BENCH_hotpath.json and BENCH_serving.json at the repo root).
# Pass --trace-smoke to also drive the CLI end-to-end with the telemetry
# exporters on and validate the emitted trace/metrics/timeline files, the
# serving request-trace path, and an `ecgraph compare` self-vs-self run
# (which must report all-unchanged).
# Pass --serve-smoke to also drive `ecgraph serve` end-to-end (fast path)
# and validate the emitted serve report.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_BENCH=0
RUN_TRACE_SMOKE=0
RUN_SERVE_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --bench) RUN_BENCH=1 ;;
    --trace-smoke) RUN_TRACE_SMOKE=1 ;;
    --serve-smoke) RUN_SERVE_SMOKE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== ec-lint (determinism / panic / wire-schema / concurrency invariants) =="
# --cache keeps per-file analysis summaries under target/ec-lint-cache so
# repeated local runs only re-analyze edited files; the JSON and SARIF
# reports live under target/ (never the repo root) and are what CI uploads
# as artifacts.
mkdir -p target
cargo run -q -p ec-lint -- --check --cache --sarif target/ec-lint-report.sarif \
  | tee target/ec-lint-report.txt

echo "== cargo test =="
cargo test --workspace -q

if [[ "$RUN_BENCH" == "1" ]]; then
  echo "== hot-path benchmark (BENCH_hotpath.json) =="
  # hotpath_bench enforces a speedup gate (2-thread epoch rows >= 1.0x vs
  # sequential, best kernel >= 1.3x vs the naive reference). On a 1-core
  # runner thread requests resolve to 1 and the threading comparison is
  # pure noise, so the gate is waived there; the JSON still records
  # host_threads so the waiver is auditable.
  if [[ "$(nproc 2>/dev/null || echo 1)" -lt 2 ]]; then
    export EC_BENCH_SKIP_SPEEDUP_GATE=1
    echo "(single-core host: EC_BENCH_SKIP_SPEEDUP_GATE=1)"
  fi
  cargo run -q --release -p ec-bench --bin hotpath_bench
  echo "== serving benchmark (BENCH_serving.json) =="
  cargo run -q --release -p ec-bench --bin serve_bench
fi

if [[ "$RUN_TRACE_SMOKE" == "1" ]]; then
  echo "== trace smoke (CLI exporters end-to-end) =="
  SMOKE_DIR=$(mktemp -d)
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  cargo run -q -p ec-graph-repro --bin ecgraph -- train \
    dataset=cora vertices=150 workers=4 epochs=6 fp=reqec:2 bp=resec:4 \
    --quiet --trace-out "$SMOKE_DIR/trace.json" --metrics-out "$SMOKE_DIR/metrics.json" \
    --timeline-out "$SMOKE_DIR/timeline.json"
  cargo run -q -p ec-trace --bin trace_check -- \
    "$SMOKE_DIR/trace.json" "$SMOKE_DIR/metrics.json" "$SMOKE_DIR/timeline.json"
  for needle in selector.pdt resec.theorem1_bound traffic.link_bytes; do
    grep -q "$needle" "$SMOKE_DIR/metrics.json" \
      || { echo "metrics.json is missing $needle" >&2; exit 1; }
  done
  grep -q 'fp:exchange' "$SMOKE_DIR/trace.json" \
    || { echo "trace.json is missing fp:exchange spans" >&2; exit 1; }
  for needle in overlap_headroom_s comm_wire_s idle_s; do
    grep -q "$needle" "$SMOKE_DIR/timeline.json" \
      || { echo "timeline.json is missing $needle" >&2; exit 1; }
  done

  echo "== serve trace smoke (request-level spans) =="
  cargo run -q -p ec-graph-repro --bin ecgraph -- serve \
    dataset=cora vertices=150 workers=4 epochs=2 requests=200 \
    --quiet --trace-out "$SMOKE_DIR/serve_trace.json"
  cargo run -q -p ec-trace --bin trace_check -- "$SMOKE_DIR/serve_trace.json"
  for needle in serve:fetch serve:compute; do
    grep -q "$needle" "$SMOKE_DIR/serve_trace.json" \
      || { echo "serve_trace.json is missing $needle spans" >&2; exit 1; }
  done

  echo "== compare smoke (self-vs-self must be all-unchanged) =="
  cargo run -q -p ec-graph-repro --bin ecgraph -- compare \
    "$SMOKE_DIR/metrics.json" "$SMOKE_DIR/metrics.json" \
    out="$SMOKE_DIR/verdict.json" > "$SMOKE_DIR/compare.txt"
  grep -q 'verdict: unchanged' "$SMOKE_DIR/compare.txt" \
    || { echo "self-compare must report all-unchanged" >&2; exit 1; }
  cargo run -q -p ec-trace --bin trace_check -- "$SMOKE_DIR/verdict.json"

  echo "== compare smoke (injected regression must exit 3) =="
  # Copy the real metrics document and inflate one lower-is-better series
  # (a `*bytes` traffic counter); `ecgraph compare` documents exit 0 for
  # no regressions and exit 3 when at least one series regressed, so the
  # doctored run must exit 3.
  python3 - "$SMOKE_DIR/metrics.json" "$SMOKE_DIR/metrics_regressed.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for entry in doc["metrics"]:
    value = entry.get("value")
    if "bytes" in entry.get("name", "") and isinstance(value, (int, float)) and value > 0:
        entry["value"] = value * 10
        break
else:
    raise SystemExit("metrics.json has no nonzero *bytes series to regress")
with open(sys.argv[2], "w") as f:
    json.dump(doc, f)
PY
  compare_rc=0
  cargo run -q -p ec-graph-repro --bin ecgraph -- compare \
    "$SMOKE_DIR/metrics.json" "$SMOKE_DIR/metrics_regressed.json" --quiet \
    || compare_rc=$?
  [[ "$compare_rc" -eq 3 ]] \
    || { echo "regressed compare must exit 3 (got $compare_rc)" >&2; exit 1; }
fi

if [[ "$RUN_SERVE_SMOKE" == "1" ]]; then
  echo "== serve smoke (ecgraph serve end-to-end) =="
  SERVE_DIR=$(mktemp -d)
  # Re-arming EXIT replaces any --trace-smoke trap; clean both dirs.
  trap 'rm -rf "$SERVE_DIR" "${SMOKE_DIR:-}"' EXIT
  cargo run -q -p ec-graph-repro --bin ecgraph -- serve \
    dataset=cora vertices=150 workers=4 epochs=3 requests=300 \
    --quiet --report-out "$SERVE_DIR/serve.json" --metrics-out "$SERVE_DIR/serve_metrics.json"
  for needle in latency_p50_s latency_p99_s '"served":300' cache_hits; do
    grep -q "$needle" "$SERVE_DIR/serve.json" \
      || { echo "serve.json is missing $needle" >&2; exit 1; }
  done
  for needle in serve.cache_hit serve.latency_p99 serve.qps; do
    grep -q "$needle" "$SERVE_DIR/serve_metrics.json" \
      || { echo "serve_metrics.json is missing $needle" >&2; exit 1; }
  done
fi

echo "All checks passed."
