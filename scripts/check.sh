#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), and the whole
# workspace test suite. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== ec-lint (determinism / panic / wire invariants) =="
cargo run -q -p ec-lint -- --check

echo "== cargo test =="
cargo test --workspace -q

echo "All checks passed."
