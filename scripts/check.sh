#!/usr/bin/env bash
# Full local gate: formatting, lints (warnings are errors), and the whole
# workspace test suite. CI runs exactly this script.
# Pass --bench to also run the hot-path benchmark (writes BENCH_hotpath.json
# at the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_BENCH=0
for arg in "$@"; do
  case "$arg" in
    --bench) RUN_BENCH=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== ec-lint (determinism / panic / wire invariants) =="
cargo run -q -p ec-lint -- --check

echo "== cargo test =="
cargo test --workspace -q

if [[ "$RUN_BENCH" == "1" ]]; then
  echo "== hot-path benchmark (BENCH_hotpath.json) =="
  cargo run -q --release -p ec-bench --bin hotpath_bench
fi

echo "All checks passed."
