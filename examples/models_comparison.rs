//! The three GNN models the paper names — GCN, GraphSAGE and GAT — trained
//! on the same replica by the single-machine reference stack.
//!
//! The paper evaluates GCN, states that GraphSAGE "enjoys similar
//! performance improvements", and sketches how GAT fits EC-Graph's message
//! pattern. This example shows all three learning the same task, which is
//! what makes the engine's model-pluggability claim concrete.
//!
//! ```sh
//! cargo run --release --example models_comparison
//! ```

use ec_comm::HostTimer;
use ec_graph_repro::data::{normalize, DatasetSpec};
use ec_graph_repro::nn::{metrics, GatNetwork, GcnNetwork, SageNetwork};
use std::sync::Arc;

fn main() {
    let data = DatasetSpec::cora().instantiate_with(1_000, 64, 33);
    println!(
        "dataset: {} replica — |V|={} |E|={} classes={}\n",
        data.name,
        data.num_vertices(),
        data.graph.num_edges(),
        data.num_classes
    );
    let dims = vec![data.feature_dim(), 16, data.num_classes];
    let epochs = 80;
    let gcn_adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
    let mean_adj = Arc::new(normalize::row_normalized_adjacency(&data.graph));

    println!("{:<10} {:>10} {:>12} {:>12}", "model", "test-acc", "s/epoch", "params");
    // GCN (tape-based).
    {
        let mut net = GcnNetwork::new(&dims, 0.02, 5);
        let start = HostTimer::start();
        for _ in 0..epochs {
            net.train_epoch(&gcn_adj, &data.features, &data.labels, &data.split.train);
        }
        let per_epoch = start.elapsed_s() / epochs as f64;
        let acc = metrics::accuracy(
            &net.forward(&gcn_adj, &data.features),
            &data.labels,
            &data.split.test,
        );
        let params: usize = dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum();
        println!("{:<10} {:>10.4} {:>12.4} {:>12}", "gcn", acc, per_epoch, params);
    }
    // GraphSAGE (tape-based, mean aggregator).
    {
        let mut net = SageNetwork::new(&dims, 0.02, 5);
        let start = HostTimer::start();
        for _ in 0..epochs {
            net.train_epoch(&mean_adj, &data.features, &data.labels, &data.split.train);
        }
        let per_epoch = start.elapsed_s() / epochs as f64;
        let acc = metrics::accuracy(
            &net.forward(&mean_adj, &data.features),
            &data.labels,
            &data.split.test,
        );
        let params: usize = dims.windows(2).map(|w| 2 * w[0] * w[1] + w[1]).sum();
        println!("{:<10} {:>10.4} {:>12.4} {:>12}", "sage", acc, per_epoch, params);
    }
    // GAT (manual gradients, single head).
    {
        let mut net = GatNetwork::new(&dims, 0.02, 5);
        let start = HostTimer::start();
        for _ in 0..epochs {
            net.train_epoch(&data.graph, &data.features, &data.labels, &data.split.train);
        }
        let per_epoch = start.elapsed_s() / epochs as f64;
        let acc = metrics::accuracy(
            &net.forward(&data.graph, &data.features),
            &data.labels,
            &data.split.test,
        );
        let params: usize = dims.windows(2).map(|w| w[0] * w[1] + 3 * w[1]).sum();
        println!("{:<10} {:>10.4} {:>12.4} {:>12}", "gat", acc, per_epoch, params);
    }
    println!("\nAll three exchange the same message types under distribution —");
    println!("neighbour embeddings forward, embedding gradients backward — which");
    println!("is the property EC-Graph's compression pipeline keys on. GCN and");
    println!("SAGE run distributed today (`ModelKind`); GAT ships here as the");
    println!("gradient-checked single-machine reference.");
}
