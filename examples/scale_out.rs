//! Scale-out behaviour: epoch time versus number of simulated machines,
//! under Hash and METIS-like partitioning (the paper's Fig. 11 in
//! miniature), with the partition-quality numbers that explain it.
//!
//! ```sh
//! cargo run --release --example scale_out
//! ```

use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph_repro::ecgraph::trainer::train;
use ec_graph_repro::partition::hash::HashPartitioner;
use ec_graph_repro::partition::metis::MetisLikePartitioner;
use ec_graph_repro::partition::{metrics, Partitioner};
use std::sync::Arc;

fn main() {
    let data = Arc::new(DatasetSpec::products().instantiate_with(2_048, 64, 13));
    println!(
        "dataset: {} replica — |V|={} |E|={}\n",
        data.name,
        data.num_vertices(),
        data.graph.num_edges()
    );
    println!(
        "{:<8} {:<10} {:>10} {:>12} {:>12} {:>10}",
        "workers", "partition", "edge-cut", "ḡ_rmt", "s/epoch", "test-acc"
    );
    let partitioners: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("hash", Box::new(HashPartitioner::default())),
        ("metis", Box::new(MetisLikePartitioner::default())),
    ];
    for workers in [2usize, 4, 6, 8] {
        for (name, partitioner) in &partitioners {
            let partition = partitioner.partition(&data.graph, workers);
            let cut = metrics::edge_cut_fraction(&data.graph, &partition);
            let g_rmt = metrics::avg_remote_degree(&data.graph, &partition);
            let config = TrainingConfig {
                dims: vec![data.feature_dim(), 16, data.num_classes],
                num_workers: workers,
                fp_mode: FpMode::ReqEc { bits: 2, t_tr: 10, adaptive: true },
                bp_mode: BpMode::ResEc { bits: 4 },
                max_epochs: 30,
                seed: 4,
                ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
            };
            let r = train(Arc::clone(&data), partitioner.as_ref(), config, "ec-graph");
            println!(
                "{:<8} {:<10} {:>9.1}% {:>12.2} {:>11.4}s {:>10.4}",
                workers,
                name,
                cut * 100.0,
                g_rmt,
                r.avg_epoch_time(),
                r.best_test_acc
            );
        }
    }
    println!("\nMETIS-like partitioning cuts fewer edges, so each worker has fewer");
    println!("remote neighbours (ḡ_rmt) and the communication share of the epoch");
    println!("shrinks — the gap the paper's Fig. 11 shows between Hash and METIS.");
}
