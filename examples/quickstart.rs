//! Quickstart: train EC-Graph on a Cora-like replica and inspect what the
//! error-compensated compression buys.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph_repro::ecgraph::trainer::train;
use ec_graph_repro::partition::hash::HashPartitioner;
use std::sync::Arc;

fn main() {
    // 1. A synthetic Cora replica: 2 708 vertices, 7 classes, the paper's
    //    average degree and homophily, features capped at 64 dims to keep
    //    the example snappy.
    let data = Arc::new(DatasetSpec::cora().instantiate_with(2_708, 64, 42));
    println!(
        "dataset: {} — |V|={} |E|={} d0={} classes={}",
        data.name,
        data.num_vertices(),
        data.graph.num_edges(),
        data.feature_dim(),
        data.num_classes
    );

    // 2. EC-Graph: 2-layer GCN over 6 simulated workers, ReqEC-FP with the
    //    adaptive Bit-Tuner in the forward pass, ResEC-BP in the backward.
    let config = TrainingConfig {
        dims: vec![data.feature_dim(), 16, data.num_classes],
        num_workers: 6,
        fp_mode: FpMode::ReqEc { bits: 2, t_tr: 10, adaptive: true },
        bp_mode: BpMode::ResEc { bits: 4 },
        max_epochs: 100,
        patience: Some(20),
        ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
    };

    // 3. Train. The Hash partitioner is the paper's default.
    let result = train(Arc::clone(&data), &HashPartitioner::default(), config, "ec-graph");

    // 4. Report.
    println!("\nepoch  loss      val-acc  test-acc  sim-time   MB-on-wire");
    for e in result.epochs.iter().step_by(10) {
        println!(
            "{:>5}  {:<8.4}  {:<7.4}  {:<8.4}  {:>7.4}s  {:>9.3}",
            e.epoch,
            e.loss,
            e.val_acc,
            e.test_acc,
            e.sim_time(),
            e.total_bytes as f64 / 1e6
        );
    }
    println!(
        "\nconverged at epoch {} — test accuracy {:.4}",
        result.best_epoch, result.best_test_acc
    );
    println!(
        "total simulated training time {:.2}s ({:.1} MB communicated, {:.2}s preprocessing)",
        result.total_train_time(),
        result.total_bytes() as f64 / 1e6,
        result.preprocessing_s
    );
}
