//! The accuracy/traffic trade-off of message compression, and how much of
//! it error compensation repairs — the paper's core story in one table.
//!
//! For each bit width B, trains (a) plain compression `Cp-fp-B` and
//! (b) `ReqEC-FP-B`, and prints accuracy plus total forward traffic next
//! to the uncompressed baseline.
//!
//! ```sh
//! cargo run --release --example compression_tradeoff
//! ```

use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::{FpMode, TrainingConfig};
use ec_graph_repro::ecgraph::report::RunResult;
use ec_graph_repro::ecgraph::trainer::train;
use ec_graph_repro::partition::hash::HashPartitioner;
use std::sync::Arc;

fn run(data: &Arc<ec_graph_repro::data::AttributedGraph>, fp: FpMode, label: &str) -> RunResult {
    let config = TrainingConfig {
        dims: vec![data.feature_dim(), 16, data.num_classes],
        num_workers: 6,
        fp_mode: fp,
        max_epochs: 80,
        seed: 9,
        ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
    };
    train(Arc::clone(data), &HashPartitioner::default(), config, label)
}

fn main() {
    // A dense replica — the regime where compression matters most.
    let data = Arc::new(DatasetSpec::products().instantiate_with(2_048, 64, 21));
    println!(
        "dataset: {} replica — |V|={} |E|={} (avg degree {:.1})\n",
        data.name,
        data.num_vertices(),
        data.graph.num_edges(),
        data.graph.avg_degree()
    );

    let fp_gb = |r: &RunResult| r.epochs.iter().map(|e| e.fp_bytes).sum::<u64>() as f64 / 1e9;
    let baseline = run(&data, FpMode::Exact, "non-cp");
    println!("{:<14} {:>9} {:>12} {:>10}", "mode", "test-acc", "FP traffic", "vs exact");
    println!(
        "{:<14} {:>9.4} {:>10.3}GB {:>10}",
        "non-cp",
        baseline.best_test_acc,
        fp_gb(&baseline),
        "1.00x"
    );
    for bits in [1u8, 2, 4, 8] {
        let cp = run(&data, FpMode::Compressed { bits }, "cp");
        let ec = run(&data, FpMode::ReqEc { bits, t_tr: 10, adaptive: false }, "reqec");
        for (label, r) in [(format!("cp-fp-{bits}"), cp), (format!("reqec-fp-{bits}"), ec)] {
            println!(
                "{:<14} {:>9.4} {:>10.3}GB {:>9.2}x",
                label,
                r.best_test_acc,
                fp_gb(&r),
                fp_gb(&baseline) / fp_gb(&r).max(1e-12)
            );
        }
    }
    println!("\nReading the table: plain low-bit compression trades accuracy for");
    println!("bandwidth; ReqEC-FP keeps (nearly) the bandwidth win while closing");
    println!("the accuracy gap — Fig. 6 of the paper, in miniature.");
}
