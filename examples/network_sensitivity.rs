//! How much the network fabric matters — and why compression is a
//! Gigabit-Ethernet story.
//!
//! The paper notes that DistDGL "adopt[s] a high-speed commercial network
//! device (100Gbps), where communication would not be a bottleneck". This
//! example trains the same model on the same replica under three network
//! models and shows how EC-Graph's advantage over uncompressed training
//! shrinks as the fabric gets faster.
//!
//! ```sh
//! cargo run --release --example network_sensitivity
//! ```

use ec_graph_repro::comm::NetworkModel;
use ec_graph_repro::data::DatasetSpec;
use ec_graph_repro::ecgraph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph_repro::ecgraph::trainer::train;
use ec_graph_repro::partition::hash::HashPartitioner;
use std::sync::Arc;

fn main() {
    let data = Arc::new(DatasetSpec::reddit().instantiate_with(2_048, 256, 21));
    println!(
        "dataset: {} replica — |V|={} |E|={} (avg degree {:.1})\n",
        data.name,
        data.num_vertices(),
        data.graph.num_edges(),
        data.graph.avg_degree()
    );
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "network", "non-cp s/epoch", "ec-graph s/epoch", "speedup"
    );
    let fabrics = [
        ("gigabit (paper)", NetworkModel::gigabit_ethernet()),
        ("10 GbE", NetworkModel::ten_gig()),
        ("100 GbE (DistDGL)", NetworkModel::hundred_gig()),
    ];
    for (name, network) in fabrics {
        let mut times = Vec::new();
        for compressed in [false, true] {
            let config = TrainingConfig {
                dims: vec![data.feature_dim(), 16, data.num_classes],
                num_workers: 6,
                fp_mode: if compressed {
                    FpMode::ReqEc { bits: 2, t_tr: 10, adaptive: true }
                } else {
                    FpMode::Exact
                },
                bp_mode: if compressed { BpMode::ResEc { bits: 4 } } else { BpMode::Exact },
                network,
                max_epochs: 20,
                seed: 4,
                ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
            };
            let r = train(
                Arc::clone(&data),
                &HashPartitioner::default(),
                config,
                if compressed { "ec-graph" } else { "non-cp" },
            );
            times.push(r.avg_epoch_time());
        }
        println!(
            "{:<22} {:>14.4} {:>14.4} {:>9.2}x",
            name,
            times[0],
            times[1],
            times[0] / times[1].max(1e-12)
        );
    }
    println!("\nOn Gigabit Ethernet the epoch is communication-bound and compression");
    println!("pays; on a 100 GbE fabric the wire is nearly free and the two systems");
    println!("converge to the same compute-bound epoch time — which is exactly why");
    println!("DistDGL could claim linear scaling without compressing anything.");
}
