//! Bring your own graph: load an edge list from disk, attach features and
//! labels, and train EC-Graph on it.
//!
//! The example first writes a small edge list in the supported format to a
//! temporary file (stand-in for your own data), then walks the full
//! pipeline: load → attribute → split → partition → train.
//!
//! ```sh
//! cargo run --release --example custom_graph
//! ```

use ec_graph_repro::data::generators;
use ec_graph_repro::data::{datasets, io, AttributedGraph, Split};
use ec_graph_repro::ecgraph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph_repro::ecgraph::trainer::train;
use ec_graph_repro::partition::ldg::LdgPartitioner;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Pretend this file came from your data pipeline. -------------
    let dir = std::env::temp_dir();
    let edges_path = dir.join("ecgraph-example-edges.tsv");
    let labels_path = dir.join("ecgraph-example-labels.txt");
    {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        let labels: Vec<u32> = (0..1_000).map(|_| rng.gen_range(0..5)).collect();
        let graph = generators::planted_partition(&labels, 5, 12.0, 0.75, 42);
        io::save_edge_list(&graph, &edges_path)?;
        io::save_labels(&labels, &labels_path)?;
    }

    // --- 2. Load it back through the public IO API. ---------------------
    let graph = io::load_edge_list(&edges_path)?;
    let labels = io::load_labels(&labels_path)?;
    println!(
        "loaded graph: |V|={} |E|={} avg-degree {:.2}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // --- 3. Attach features and a train/val/test split. -----------------
    let features = datasets::class_features(&labels, 5, 32, 0.4, 7);
    let data = Arc::new(AttributedGraph {
        split: Split::by_fraction(graph.num_vertices(), 0.6, 0.2),
        graph,
        features,
        labels,
        num_classes: 5,
        name: "custom".into(),
    });
    data.validate().expect("inconsistent attributed graph");

    // --- 4. Train with a streaming partitioner this time. ---------------
    let config = TrainingConfig {
        dims: vec![32, 16, 5],
        num_workers: 4,
        fp_mode: FpMode::ReqEc { bits: 2, t_tr: 10, adaptive: true },
        bp_mode: BpMode::ResEc { bits: 4 },
        max_epochs: 60,
        patience: Some(15),
        ..TrainingConfig::defaults(32, 5)
    };
    let r = train(Arc::clone(&data), &LdgPartitioner::default(), config, "ec-graph");
    println!(
        "trained to test accuracy {:.4} in {} epochs ({:.1} MB on the simulated wire)",
        r.best_test_acc,
        r.epochs.len(),
        r.total_bytes() as f64 / 1e6
    );

    std::fs::remove_file(edges_path).ok();
    std::fs::remove_file(labels_path).ok();
    Ok(())
}
