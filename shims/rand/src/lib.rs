//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the tiny API subset it actually uses: [`rngs::SmallRng`] (xoshiro256++
//! seeded via SplitMix64), [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range`, `gen`, and `gen_bool`.
//!
//! Streams differ from upstream `rand`, but every consumer in this
//! workspace only requires determinism for a fixed seed, which this
//! implementation provides.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; ints or floats).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform sample of the full type domain (`f32`/`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types samplable over their whole domain by [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`], producing values of type `T`.
///
/// Parameterizing over `T` (instead of an associated type) lets the
/// *expected* result type drive float-literal inference, matching upstream
/// `rand`: `let x: f32 = rng.gen_range(0.0..1.0)` picks `Range<f32>`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f32(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand seeds xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u8..=16);
            assert!((1..=16).contains(&y));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
