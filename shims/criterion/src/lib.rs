//! Offline stand-in for `criterion`.
//!
//! Runs every benchmark closure with a short warm-up followed by timed
//! iterations and prints the mean time per iteration (plus throughput when
//! configured). None of criterion's statistical machinery (outlier
//! analysis, HTML reports, comparisons) is reproduced — this exists so
//! `cargo bench` works without registry access.

use std::time::{Duration, Instant};

/// Measured-value throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`BenchmarkId::from_parameter(4)` etc.).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self { id: format!("{name}/{param}") }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self { id: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs closures under measurement.
pub struct Bencher {
    mean: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~10ms or 3 iterations, whichever is later.
        let warm = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm.elapsed() < Duration::from_millis(10) {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm.elapsed().as_secs_f64() / warm_iters as f64;
        // Timed: target ~100ms of measurement.
        let iters = ((0.1 / per_iter.max(1e-9)) as u64).clamp(3, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the simplified runner ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the simplified runner ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { mean: Duration::ZERO };
        f(&mut b);
        self.report(&id.id, b.mean);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { mean: Duration::ZERO };
        f(&mut b, input);
        self.report(&id.id, b.mean);
        self
    }

    /// Ends the group (report-flush point in real criterion; a no-op here).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, mean: Duration) {
        let per = mean.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if per > 0.0 => {
                format!("  {:>10.1} MiB/s", b as f64 / per / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(e)) if per > 0.0 => {
                format!("  {:>10.2} Melem/s", e as f64 / per / 1e6)
            }
            _ => String::new(),
        };
        println!("{}/{:<24} {:>12.3} µs/iter{rate}", self.name, id, per * 1e6);
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
