//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize` / `Deserialize` on value types for
//! API-compatibility with downstream users, but nothing in-tree calls the
//! serde data model (checkpoints and wire messages use the explicit binary
//! codec in `ec-comm`). These derives therefore accept the annotation —
//! including `#[serde(...)]` attributes — and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
