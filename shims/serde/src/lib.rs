//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize` / `Deserialize` names (trait + derive macro) so
//! existing annotations compile without registry access. The traits are
//! markers: no in-tree code drives the serde data model — persistent state
//! goes through the explicit binary codec in `ec-comm` instead.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
