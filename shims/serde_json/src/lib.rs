//! Offline stand-in for `serde_json`: a [`Value`] tree, the [`json!`]
//! constructor macro, and RFC 8259 text output via `Display`/`to_string`.
//!
//! Only the construction-and-print path the bench harness uses is
//! implemented; parsing is intentionally absent.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A double (non-finite values print as `null`, as upstream does).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`], used by the [`json!`] macro.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Value;
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_to_json_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        i64::try_from(*self).map(Value::Int).unwrap_or(Value::UInt(*self))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Value {
        (*self as u64).to_json()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToJson::to_json)
    }
}

/// Free-function form of [`ToJson`], what `json!` expands to.
pub fn to_value<T: ToJson>(v: T) -> Value {
    v.to_json()
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) if x.is_finite() => {
                if *x == x.trunc() && x.abs() < 1e15 {
                    // Match serde_json: doubles with no fraction keep ".0".
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Float(_) => f.write_str("null"),
            Value::String(s) => escape(s, f),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Builds a [`Value`] from JSON-ish syntax: objects with literal keys,
/// arrays, and arbitrary expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            // By reference, like upstream: values stay usable after json!.
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    #[test]
    fn object_prints_like_serde_json() {
        let v = json!({"a": 1usize, "b": 2.5f64, "s": "x", "t": true});
        assert_eq!(v.to_string(), r#"{"a":1,"b":2.5,"s":"x","t":true}"#);
    }

    #[test]
    fn nested_values_and_arrays() {
        let inner = json!({"k": 7u64});
        let v = json!({"outer": inner, "arr": vec![1u32, 2, 3]});
        assert_eq!(v.to_string(), r#"{"outer":{"k":7},"arr":[1,2,3]}"#);
    }

    #[test]
    fn floats_keep_a_fraction() {
        assert_eq!(json!(3.0f64).to_string(), "3.0");
        assert_eq!(json!(0.125f64).to_string(), "0.125");
        assert_eq!(json!(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(json!("a\"b\n").to_string(), r#""a\"b\n""#);
    }
}
