//! Offline stand-in for `serde_json`: a [`Value`] tree, the [`json!`]
//! constructor macro, RFC 8259 text output via `Display`/`to_string`, and
//! a matching [`from_str`] parser with the upstream accessor surface
//! (`get`, `as_*`, `Index`/`IndexMut`) — enough for round-tripping the
//! ec-lint analysis cache and other tool state through disk.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A double (non-finite values print as `null`, as upstream does).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `i64`, when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    /// Upstream semantics: out-of-bounds or non-array indexing yields
    /// `Value::Null` rather than panicking.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl IndexMut<&str> for Value {
    /// Upstream semantics: indexing an object with a missing key inserts
    /// `null` there; indexing a non-object panics.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(fields) = self else {
            panic!("cannot index non-object JSON value with a string key");
        };
        if let Some(pos) = fields.iter().position(|(k, _)| k == key) {
            return &mut fields[pos].1;
        }
        fields.push((key.to_string(), Value::Null));
        &mut fields.last_mut().expect("just pushed").1
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parses RFC 8259 text into a [`Value`].
///
/// # Errors
/// Malformed input, or trailing non-whitespace after the top-level value.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.expect_word("null", Value::Null),
            Some(b't') => self.expect_word("true", Value::Bool(true)),
            Some(b'f') => self.expect_word("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.pos += 1; // "
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs: combine \uD800-\uDBFF with
                            // the following low surrogate.
                            let c = if (0xD800..0xDC00).contains(&hex) {
                                let rest = self.bytes.get(self.pos + 5..self.pos + 11);
                                let low = rest
                                    .filter(|r| r.starts_with(b"\\u"))
                                    .and_then(|r| std::str::from_utf8(&r[2..]).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .filter(|l| (0xDC00..0xE000).contains(l))
                                    .ok_or_else(|| self.err("unpaired surrogate"))?;
                                self.pos += 6;
                                0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                hex
                            };
                            out.push(char::from_u32(c).ok_or_else(|| self.err("bad codepoint"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    if b < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so this is a
                    // valid sequence; copy the whole char.
                    let s = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(s).map_err(|_| self.err("bad utf-8"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if !self.eat(b'+') {
                self.eat(b'-');
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("bad number"))
    }
}

/// Conversion into a [`Value`], used by the [`json!`] macro.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Value;
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_to_json_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        i64::try_from(*self).map(Value::Int).unwrap_or(Value::UInt(*self))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Value {
        (*self as u64).to_json()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToJson::to_json)
    }
}

/// Free-function form of [`ToJson`], what `json!` expands to.
pub fn to_value<T: ToJson>(v: T) -> Value {
    v.to_json()
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) if x.is_finite() => {
                if *x == x.trunc() && x.abs() < 1e15 {
                    // Match serde_json: doubles with no fraction keep ".0".
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Float(_) => f.write_str("null"),
            Value::String(s) => escape(s, f),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Builds a [`Value`] from JSON-ish syntax: objects with literal keys,
/// arrays, and arbitrary expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            // By reference, like upstream: values stay usable after json!.
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    #[test]
    fn object_prints_like_serde_json() {
        let v = json!({"a": 1usize, "b": 2.5f64, "s": "x", "t": true});
        assert_eq!(v.to_string(), r#"{"a":1,"b":2.5,"s":"x","t":true}"#);
    }

    #[test]
    fn nested_values_and_arrays() {
        let inner = json!({"k": 7u64});
        let v = json!({"outer": inner, "arr": vec![1u32, 2, 3]});
        assert_eq!(v.to_string(), r#"{"outer":{"k":7},"arr":[1,2,3]}"#);
    }

    #[test]
    fn floats_keep_a_fraction() {
        assert_eq!(json!(3.0f64).to_string(), "3.0");
        assert_eq!(json!(0.125f64).to_string(), "0.125");
        assert_eq!(json!(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(json!("a\"b\n").to_string(), r#""a\"b\n""#);
    }

    #[test]
    fn parse_round_trips_print() {
        let b = vec![json!(true), json!(null), json!("x\ny")];
        let c = json!({"d": -7i64});
        let v = json!({"a": 1usize, "b": b, "c": c});
        let text = v.to_string();
        let back = crate::from_str(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn accessors_read_members() {
        let v = crate::from_str(r#"{"n": 42, "s": "hi", "b": false, "arr": [1, 2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(crate::Value::as_u64), Some(42));
        assert_eq!(v["s"].as_str(), Some("hi"));
        assert_eq!(v["b"].as_bool(), Some(false));
        assert_eq!(v["arr"].as_array().map(Vec::len), Some(2));
        assert!(v["missing"].is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn index_mut_inserts_and_overwrites() {
        let mut v = json!({"keep": 1u32});
        v["note"] = json!("added");
        v["keep"] = json!(2u32);
        assert_eq!(v.to_string(), r#"{"keep":2,"note":"added"}"#);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(crate::from_str("{").is_err());
        assert!(crate::from_str("[1,]").is_err());
        assert!(crate::from_str(r#"{"a" 1}"#).is_err());
        assert!(crate::from_str("1 2").is_err(), "trailing tokens");
        assert!(crate::from_str("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_numbers_and_unicode_escapes() {
        assert_eq!(crate::from_str("-12").unwrap(), crate::Value::Int(-12));
        assert_eq!(crate::from_str("18446744073709551615").unwrap(), crate::Value::UInt(u64::MAX));
        assert_eq!(crate::from_str("2.5e2").unwrap().as_f64(), Some(250.0));
        assert_eq!(crate::from_str(r#""é😀""#).unwrap().as_str(), Some("é😀"));
    }
}
