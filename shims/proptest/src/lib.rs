//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`], integer and
//! float range strategies, tuple strategies, [`any`], [`Just`] /
//! [`prop_oneof!`], and [`collection::vec`]. Inputs are drawn from a deterministic generator
//! seeded by the test's fully-qualified name and the case index, so every
//! run explores the same cases (failures are always reproducible; there is
//! no shrinking).

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite fast while
        // still exercising a meaningful spread of inputs.
        Self { cases: 64 }
    }
}

/// Deterministic case generator (xoshiro256++ seeded per test name + case).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut x = h ^ ((case as u64) << 32 | 0x9E37);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_sint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_strategy_sint!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Constant strategy (upstream `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Uniform choice among strategies producing the same value type
/// (upstream's `prop_oneof!`, minus per-arm weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Full-domain strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy for an arbitrary value of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        // Finite, sign-balanced; avoids NaN/inf which upstream filters too.
        (rng.unit_f64() as f32 - 0.5) * 2e6
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` strategy with element strategy `elem` and a length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy, Union,
    };
}

/// Asserts a property-level condition (panics on failure, like a failed
/// case in upstream proptest — minus the shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Property-level equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares deterministic property tests.
///
/// Supports the upstream surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in collection::vec(any::<u8>(), 0..64)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..17,
            y in 1u8..=16,
            f in -2.0f32..2.0,
            (a, b) in (0u32..10, 5u64..6),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=16).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
        }

        #[test]
        fn vecs_respect_length(v in collection::vec(any::<u8>(), 2..12)) {
            prop_assert!((2..12).contains(&v.len()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4).map(|c| super::TestRng::for_case("t", c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| super::TestRng::for_case("t", c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
