//! `ecgraph` — command-line front end for the EC-Graph trainer and the
//! `ec-serve` inference service.
//!
//! ```sh
//! ecgraph train dataset=cora workers=6 fp=reqec:2 bp=resec:4 epochs=100
//! ecgraph train dataset=products layers=3 fp=cp:8 partitioner=metis
//! ecgraph train dataset=cora workers=4 --trace-out trace.json --metrics-out metrics.json
//! ecgraph train dataset=cora workers=6 --timeline-out timeline.json
//! ecgraph serve dataset=cora workers=4 epochs=5 requests=500 cache=256
//! ecgraph serve dataset=cora workers=4 --trace-out serve_trace.json
//! ecgraph compare before.json after.json rel=0.05 out=verdict.json
//! ecgraph datasets            # list the built-in dataset replicas
//! ```
//!
//! `fp` accepts `exact`, `cp:<bits>`, `reqec:<bits>`, `reqec-adapt:<bits>`
//! or `delayed:<r>`; `bp` accepts `exact`, `cp:<bits>` or `resec:<bits>`.
//!
//! `serve` trains briefly (or reuses `checkpoint=<file>` if it exists),
//! reloads the checkpoint through the engine-free inference path, and
//! drives the serving cluster with the seeded closed-loop load generator;
//! `--report-out <file>` writes the run's canonical `ServeReport` JSON.
//!
//! Observability: `--trace-out <file>` writes a Chrome `trace_event` JSON
//! (or a flat JSONL event log when the file ends in `.jsonl`) — for
//! `serve` it carries the request-level spans (queue wait, fetch,
//! compute); `--timeline-out <file>` writes the compute/comm/idle
//! timeline attribution (or flamegraph folded stacks when the file ends
//! in `.folded`); `--metrics-out <file>` writes the EC-metrics registry
//! as JSON; `telemetry=off|epoch|superstep|trace` overrides the recording
//! level the flags imply. `--quiet` silences the progress output.
//!
//! `compare` structurally diffs two metrics/bench JSON documents and
//! classifies every numeric series as improved / regressed / unchanged —
//! the same engine as the `trace_diff` binary (exit `3` on regression).

use ec_faults::FaultPlan;
use ec_graph::config::{BpMode, FpMode, ModelKind, TrainingConfig};
use ec_graph::engine::DistributedEngine;
use ec_graph::infer::ModelWeights;
use ec_graph::trainer::train;
use ec_graph_data::{normalize, DatasetSpec};
use ec_partition::hash::HashPartitioner;
use ec_partition::ldg::LdgPartitioner;
use ec_partition::metis::MetisLikePartitioner;
use ec_partition::Partitioner;
use ec_serve::{run_closed_loop, InferenceService, ServeConfig, WorkloadConfig};
use ec_trace::{TelemetryConfig, TelemetryLevel};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// Flag-style (non-`key=value`) options shared by `train` and `serve`.
struct CliOpts {
    trace_out: Option<PathBuf>,
    timeline_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    report_out: Option<PathBuf>,
    quiet: bool,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("train") => {
            let rest: Vec<String> = args.collect();
            match parse_cli_args(&rest).and_then(|(kv, opts)| run_train(&kv, &opts)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("serve") => {
            let rest: Vec<String> = args.collect();
            match parse_cli_args(&rest).and_then(|(kv, opts)| run_serve(&kv, &opts)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("compare") => {
            let rest: Vec<String> = args.collect();
            ExitCode::from(ec_trace::diff::cli_run("ecgraph compare", &rest))
        }
        Some("datasets") => {
            println!(
                "{:<10} {:>12} {:>10} {:>8} {:>8} {:>8}",
                "name", "paper |V|", "replica", "d0", "classes", "degree"
            );
            for s in DatasetSpec::all() {
                println!(
                    "{:<10} {:>12} {:>10} {:>8} {:>8} {:>8.1}",
                    s.name,
                    s.paper_vertices,
                    s.default_vertices,
                    s.feature_dim,
                    s.num_classes,
                    s.avg_degree
                );
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: ecgraph <train|serve|compare|datasets> [key=value ...] \
                 [--trace-out <file>] [--timeline-out <file>] [--metrics-out <file>] \
                 [--report-out <file>] [--quiet]"
            );
            eprintln!("  e.g. ecgraph train dataset=cora workers=6 fp=reqec:2 bp=resec:4");
            eprintln!("       ecgraph serve dataset=cora workers=4 epochs=5 requests=500");
            eprintln!("       ecgraph compare before.json after.json rel=0.05 out=verdict.json");
            ExitCode::FAILURE
        }
    }
}

/// Splits the `train`/`serve` arguments into `key=value` pairs and flags.
fn parse_cli_args(rest: &[String]) -> Result<(HashMap<String, String>, CliOpts), String> {
    let mut kv = HashMap::new();
    let mut opts = CliOpts {
        trace_out: None,
        timeline_out: None,
        metrics_out: None,
        report_out: None,
        quiet: false,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace-out" => {
                let path = it.next().ok_or_else(|| "--trace-out needs a path".to_string())?;
                opts.trace_out = Some(PathBuf::from(path));
            }
            "--timeline-out" => {
                let path = it.next().ok_or_else(|| "--timeline-out needs a path".to_string())?;
                opts.timeline_out = Some(PathBuf::from(path));
            }
            "--metrics-out" => {
                let path = it.next().ok_or_else(|| "--metrics-out needs a path".to_string())?;
                opts.metrics_out = Some(PathBuf::from(path));
            }
            "--report-out" => {
                let path = it.next().ok_or_else(|| "--report-out needs a path".to_string())?;
                opts.report_out = Some(PathBuf::from(path));
            }
            "--quiet" => opts.quiet = true,
            other => {
                let (k, v) = other.split_once('=').ok_or_else(|| {
                    format!(
                        "unrecognized argument '{other}' (expected key=value, \
                         --trace-out <file>, --timeline-out <file>, --metrics-out <file>, \
                         --report-out <file>, or --quiet)"
                    )
                })?;
                kv.insert(k.to_string(), v.to_string());
            }
        }
    }
    Ok((kv, opts))
}

fn run_train(kv: &HashMap<String, String>, opts: &CliOpts) -> Result<(), String> {
    if opts.report_out.is_some() {
        return Err("--report-out only applies to `ecgraph serve`".into());
    }
    let get = |k: &str, d: &str| kv.get(k).cloned().unwrap_or_else(|| d.to_string());

    // The export flags imply a recording level; an explicit `telemetry=`
    // can deepen it further but never below what the flags need.
    let mut level = match kv.get("telemetry") {
        Some(s) => s.parse::<TelemetryLevel>()?,
        None if opts.trace_out.is_some() || opts.timeline_out.is_some() => TelemetryLevel::Trace,
        None if opts.metrics_out.is_some() => TelemetryLevel::Epoch,
        None => TelemetryLevel::Off,
    };
    if opts.trace_out.is_some() || opts.timeline_out.is_some() {
        level = level.max(TelemetryLevel::Trace);
    } else if opts.metrics_out.is_some() {
        level = level.max(TelemetryLevel::Epoch);
    }
    // At Superstep+ the run is being inspected through the exporters, so
    // the ad-hoc progress lines get out of the way.
    let show_progress = !opts.quiet && level < TelemetryLevel::Superstep;
    let dataset = get("dataset", "cora");
    let spec = DatasetSpec::all()
        .into_iter()
        .find(|s| s.name == dataset)
        .ok_or_else(|| format!("unknown dataset '{dataset}' (try `ecgraph datasets`)"))?;
    let vertices: usize = get("vertices", &spec.default_vertices.to_string())
        .parse()
        .map_err(|e| format!("bad vertices: {e}"))?;
    let dims_cap: usize = get("features", &spec.feature_dim.min(256).to_string())
        .parse()
        .map_err(|e| format!("bad features: {e}"))?;
    let layers: usize = get("layers", &spec.default_layers.to_string()).parse().unwrap_or(2);
    let hidden: usize = get("hidden", "16").parse().unwrap_or(16);
    let workers: usize = get("workers", "6").parse().unwrap_or(6);
    let epochs: usize = get("epochs", "100").parse().unwrap_or(100);
    let seed: u64 = get("seed", "1").parse().unwrap_or(1);

    let fp_mode = parse_fp(&get("fp", "reqec:2"))?;
    let bp_mode = parse_bp(&get("bp", "resec:4"))?;
    let model = match get("model", "gcn").as_str() {
        "gcn" => ModelKind::Gcn,
        "sage" => ModelKind::Sage,
        other => return Err(format!("unknown model '{other}'")),
    };

    if show_progress {
        println!("instantiating {dataset} replica (|V|={vertices}, d0={dims_cap}) …");
    }
    let data = Arc::new(spec.instantiate_with(vertices, dims_cap, seed));
    let mut dims = vec![data.feature_dim()];
    dims.extend(std::iter::repeat_n(hidden, layers - 1));
    dims.push(data.num_classes);

    let config = TrainingConfig {
        dims,
        model,
        num_workers: workers,
        fp_mode,
        bp_mode,
        max_epochs: epochs,
        patience: Some(get("patience", "25").parse().unwrap_or(25)),
        telemetry: TelemetryConfig::at(level),
        seed,
        ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
    };
    config.validate()?;

    let partitioner: Box<dyn Partitioner> = match get("partitioner", "hash").as_str() {
        "hash" => Box::new(HashPartitioner::default()),
        "metis" => Box::new(MetisLikePartitioner::default()),
        "ldg" => Box::new(LdgPartitioner::default()),
        other => return Err(format!("unknown partitioner '{other}'")),
    };

    if show_progress {
        println!(
            "training {layers}-layer {} on {workers} workers ({:?} / {:?}) …",
            if model == ModelKind::Gcn { "GCN" } else { "GraphSAGE" },
            config.fp_mode,
            config.bp_mode
        );
    }
    let r = train(Arc::clone(&data), partitioner.as_ref(), config, "cli");
    if show_progress {
        for e in r.epochs.iter().step_by(10.max(r.epochs.len() / 10)) {
            println!(
                "epoch {:>4}  loss {:<8.4}  val {:.4}  test {:.4}  {:>8.4}s/epoch  {:>8.2} MB",
                e.epoch,
                e.loss,
                e.val_acc,
                e.test_acc,
                e.sim_time(),
                e.total_bytes as f64 / 1e6
            );
        }
    }
    if let Some(report) = &r.telemetry {
        write_observability(report, opts)?;
    }
    if !opts.quiet {
        println!(
            "\nbest test accuracy {:.4} (epoch {}), avg epoch {:.4}s, total traffic {:.1} MB",
            r.best_test_acc,
            r.best_epoch,
            r.avg_epoch_time(),
            r.total_bytes() as f64 / 1e6
        );
    }
    Ok(())
}

/// Writes the `--trace-out` / `--timeline-out` / `--metrics-out` exports
/// for a finished run's telemetry report (shared by `train` and `serve`).
fn write_observability(report: &ec_trace::TelemetryReport, opts: &CliOpts) -> Result<(), String> {
    if let Some(path) = &opts.trace_out {
        let text = if path.extension().is_some_and(|e| e == "jsonl") {
            ec_trace::export::jsonl(report)
        } else {
            ec_trace::export::chrome_trace_json(report)
        };
        std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        if !opts.quiet {
            println!("wrote trace to {}", path.display());
        }
    }
    if let Some(path) = &opts.timeline_out {
        let text = if path.extension().is_some_and(|e| e == "folded") {
            ec_trace::timeline::folded_stacks(report)
        } else {
            ec_trace::timeline::timeline_json(report)
        };
        std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        if !opts.quiet {
            println!("wrote timeline to {}", path.display());
        }
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, ec_trace::export::metrics_json(report))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        if !opts.quiet {
            println!("wrote metrics to {}", path.display());
        }
    }
    Ok(())
}

/// `ecgraph serve`: train a small model (or reuse an existing
/// `checkpoint=` file), reload the weights through the engine-free
/// inference path, and drive the serving cluster with the closed-loop
/// load generator.
fn run_serve(kv: &HashMap<String, String>, opts: &CliOpts) -> Result<(), String> {
    let get = |k: &str, d: &str| kv.get(k).cloned().unwrap_or_else(|| d.to_string());
    // Same rule as `train`: export flags imply a recording level, and an
    // explicit `telemetry=` can deepen but never starve an export.
    let mut level = match kv.get("telemetry") {
        Some(s) => s.parse::<TelemetryLevel>()?,
        None if opts.trace_out.is_some() || opts.timeline_out.is_some() => TelemetryLevel::Trace,
        None if opts.metrics_out.is_some() => TelemetryLevel::Epoch,
        None => TelemetryLevel::Off,
    };
    if opts.trace_out.is_some() || opts.timeline_out.is_some() {
        level = level.max(TelemetryLevel::Trace);
    } else if opts.metrics_out.is_some() {
        level = level.max(TelemetryLevel::Epoch);
    }

    let dataset = get("dataset", "cora");
    let spec = DatasetSpec::all()
        .into_iter()
        .find(|s| s.name == dataset)
        .ok_or_else(|| format!("unknown dataset '{dataset}' (try `ecgraph datasets`)"))?;
    let vertices: usize = get("vertices", &spec.default_vertices.to_string())
        .parse()
        .map_err(|e| format!("bad vertices: {e}"))?;
    let dims_cap: usize = get("features", &spec.feature_dim.min(256).to_string())
        .parse()
        .map_err(|e| format!("bad features: {e}"))?;
    let layers: usize = get("layers", &spec.default_layers.to_string()).parse().unwrap_or(2);
    let hidden: usize = get("hidden", "16").parse().unwrap_or(16);
    let workers: usize = get("workers", "4").parse().unwrap_or(4);
    let epochs: usize = get("epochs", "5").parse().unwrap_or(5);
    let seed: u64 = get("seed", "1").parse().unwrap_or(1);
    let model = match get("model", "gcn").as_str() {
        "gcn" => ModelKind::Gcn,
        "sage" => ModelKind::Sage,
        other => return Err(format!("unknown model '{other}'")),
    };

    let requests: u64 = get("requests", "500").parse().map_err(|e| format!("bad requests: {e}"))?;
    let clients: usize = get("clients", "16").parse().map_err(|e| format!("bad clients: {e}"))?;
    let cache: usize = get("cache", "256").parse().map_err(|e| format!("bad cache: {e}"))?;
    let pinned: usize = get("pinned", "32").parse().map_err(|e| format!("bad pinned: {e}"))?;
    let bits: u8 = get("bits", "0").parse().map_err(|e| format!("bad bits: {e}"))?;
    let straggler: f64 =
        get("straggler", "0").parse().map_err(|e| format!("bad straggler: {e}"))?;
    let zipf: f64 = get("zipf", "0.9").parse().map_err(|e| format!("bad zipf: {e}"))?;

    if !opts.quiet {
        println!("instantiating {dataset} replica (|V|={vertices}, d0={dims_cap}) …");
    }
    let data = Arc::new(spec.instantiate_with(vertices, dims_cap, seed));
    let mut dims = vec![data.feature_dim()];
    dims.extend(std::iter::repeat_n(hidden, layers - 1));
    dims.push(data.num_classes);
    let partition = Arc::new(HashPartitioner::default().partition(&data.graph, workers));
    let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
    let adjs: Vec<_> = vec![adj; layers];

    // The serving path always goes through the on-disk checkpoint — the
    // server never holds a trainer. `checkpoint=` reuses an existing file
    // (and keeps a freshly written one); otherwise a temp file is used.
    let explicit_ckpt = kv.get("checkpoint").map(PathBuf::from);
    let ckpt = explicit_ckpt.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("ecgraph_serve_{}.ckpt", std::process::id()))
    });
    if !ckpt.exists() {
        let config = TrainingConfig {
            dims: dims.clone(),
            model,
            num_workers: workers,
            max_epochs: epochs,
            seed,
            ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
        };
        config.validate()?;
        if !opts.quiet {
            println!("training {epochs} epochs to produce a checkpoint …");
        }
        let mut engine =
            DistributedEngine::new(Arc::clone(&data), adjs.clone(), (*partition).clone(), config);
        for _ in 0..epochs {
            engine.run_epoch();
        }
        engine.save_checkpoint(&ckpt).map_err(|e| format!("saving checkpoint: {e:?}"))?;
    } else if !opts.quiet {
        println!("reusing checkpoint {} …", ckpt.display());
    }
    let weights =
        ModelWeights::load(&ckpt, model).map_err(|e| format!("loading checkpoint: {e:?}"))?;
    if explicit_ckpt.is_none() {
        let _ = std::fs::remove_file(&ckpt);
    }

    let mut sc = ServeConfig::defaults(workers);
    sc.cache_rows = cache;
    sc.pinned_rows = pinned;
    if bits > 0 {
        sc.fetch_bits = Some(bits);
    }
    if straggler > 1.0 {
        sc.faults = FaultPlan::none().with_straggler(0, straggler);
    }
    sc.telemetry = TelemetryConfig::at(level);
    sc.validate()?;
    let workload = WorkloadConfig {
        clients,
        total_requests: requests,
        zipf_exponent: zipf,
        seed,
        ..WorkloadConfig::defaults()
    };
    workload.validate()?;

    if !opts.quiet {
        println!(
            "serving {requests} requests on {workers} workers \
             (cache {cache} rows, {pinned} pinned, fetch {}) …",
            if bits > 0 { format!("{bits}-bit") } else { "exact".to_string() }
        );
    }
    let mut svc = InferenceService::new(weights, Arc::clone(&data), adjs, partition, sc);
    let report = run_closed_loop(&mut svc, &workload);

    if !opts.quiet {
        let (hits, misses) = report
            .per_worker
            .iter()
            .fold((0u64, 0u64), |(h, m), w| (h + w.cache_hits, m + w.cache_misses));
        let hit_rate =
            if hits + misses > 0 { hits as f64 / (hits + misses) as f64 * 100.0 } else { 0.0 };
        println!(
            "\nserved {} requests in {:.3}s simulated — p50 {:.3}ms, p99 {:.3}ms, {:.0} qps",
            report.served,
            report.sim_duration_s,
            report.latency_p50_s * 1e3,
            report.latency_p99_s * 1e3,
            report.qps_total
        );
        println!(
            "cache hit rate {:.1}% ({hits} hits / {misses} misses), \
             fetched {:.1} KB over the wire",
            hit_rate,
            report.fetch_bytes as f64 / 1e3
        );
    }
    if let Some(path) = &opts.report_out {
        std::fs::write(path, report.to_json().to_string())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        if !opts.quiet {
            println!("wrote serve report to {}", path.display());
        }
    }
    if opts.trace_out.is_some() || opts.timeline_out.is_some() || opts.metrics_out.is_some() {
        let telemetry = report
            .telemetry
            .as_ref()
            .ok_or_else(|| "telemetry is off; nothing to export".to_string())?;
        write_observability(telemetry, opts)?;
    }
    Ok(())
}

fn parse_fp(s: &str) -> Result<FpMode, String> {
    let (kind, arg) = s.split_once(':').unwrap_or((s, ""));
    let num = || arg.parse::<u8>().map_err(|_| format!("bad numeric argument in '{s}'"));
    match kind {
        "exact" => Ok(FpMode::Exact),
        "cp" => Ok(FpMode::Compressed { bits: num()? }),
        "reqec" => Ok(FpMode::ReqEc { bits: num()?, t_tr: 10, adaptive: false }),
        "reqec-adapt" => Ok(FpMode::ReqEc { bits: num()?, t_tr: 10, adaptive: true }),
        "delayed" => {
            Ok(FpMode::Delayed { r: arg.parse().map_err(|_| format!("bad delay in '{s}'"))? })
        }
        other => Err(format!("unknown fp mode '{other}'")),
    }
}

fn parse_bp(s: &str) -> Result<BpMode, String> {
    let (kind, arg) = s.split_once(':').unwrap_or((s, ""));
    let num = || arg.parse::<u8>().map_err(|_| format!("bad numeric argument in '{s}'"));
    match kind {
        "exact" => Ok(BpMode::Exact),
        "cp" => Ok(BpMode::Compressed { bits: num()? }),
        "resec" => Ok(BpMode::ResEc { bits: num()? }),
        other => Err(format!("unknown bp mode '{other}'")),
    }
}
