//! # EC-Graph reproduction — umbrella crate
//!
//! This crate re-exports the public API of the whole workspace so that the
//! runnable examples under `examples/` and the cross-crate integration
//! tests under `tests/` can use a single dependency.
//!
//! The actual functionality lives in the member crates:
//!
//! * [`tensor`] — dense/sparse linear-algebra kernels,
//! * [`data`] — graph storage, synthetic dataset replicas,
//! * [`partition`] — Hash / Range / METIS-like / streaming partitioners,
//! * [`compress`] — B-bit bucket quantization with bit-packing,
//! * [`comm`] — the simulated cluster (network model, parameter servers),
//! * [`faults`] — deterministic fault injection (drops, stragglers,
//!   outages, crashes) for the simulated cluster,
//! * [`nn`] — hand-rolled autodiff, GCN/SAGE layers, optimizers,
//! * [`ecgraph`] — the EC-Graph distributed engine, ReqEC-FP, ResEC-BP and
//!   every baseline system from the paper's evaluation,
//! * [`serve`] — the checkpoint-backed inference service (embedding store,
//!   per-worker caches, request batching, closed-loop load generation),
//! * [`trace`] — deterministic span tracing and the EC-metrics registry,
//!   with Chrome-trace / JSONL / metrics-JSON exporters.

pub use ec_comm as comm;
pub use ec_compress as compress;
pub use ec_faults as faults;
pub use ec_graph as ecgraph;
pub use ec_graph_data as data;
pub use ec_nn as nn;
pub use ec_partition as partition;
pub use ec_serve as serve;
pub use ec_tensor as tensor;
pub use ec_trace as trace;
