//! The metric registry: a static catalog of typed metrics plus the
//! `(metric, labels)`-keyed store.
//!
//! Every metric the system can record is declared once in [`MetricId`]'s
//! catalog with its kind, unit and label names — exporters and dashboards
//! never meet an undeclared series. Values live in a `BTreeMap`, so every
//! walk over recorded series is in deterministic key order. **Label slot 0
//! is always the epoch** — crash rollback uses that convention to discard
//! the series of replayed epochs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Label tuple attached to one series (unused slots are [`L_NONE`]).
pub type Labels = [u32; 4];

/// Sentinel for an unused label slot.
pub const L_NONE: u32 = u32::MAX;

/// Builds a label tuple from the used prefix.
pub fn labels(used: &[u32]) -> Labels {
    let mut out = [L_NONE; 4];
    for (slot, v) in out.iter_mut().zip(used) {
        *slot = *v;
    }
    out
}

/// Metric value kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotone sum of `u64` increments.
    Counter,
    /// Last-written `f64` (re-recording an epoch overwrites, which is what
    /// crash replay needs).
    Gauge,
    /// Streaming summary (`count`/`sum`/`min`/`max`) of `f64` observations.
    Histogram,
}

/// Streaming summary of a histogram series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`0` when empty).
    pub min: f64,
    /// Largest observation (`0` when empty).
    pub max: f64,
}

impl HistSummary {
    fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }
}

/// One recorded value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistSummary),
}

/// Static definition of one metric.
#[derive(Clone, Copy, Debug)]
pub struct MetricDef {
    /// Dotted series name, e.g. `"selector.pdt"`.
    pub name: &'static str,
    /// Value kind.
    pub kind: MetricKind,
    /// Unit of the recorded value.
    pub unit: &'static str,
    /// Names of the used label slots (slot 0 is always `"epoch"`).
    pub labels: &'static [&'static str],
    /// One-line description.
    pub help: &'static str,
}

macro_rules! metric_catalog {
    ($( $variant:ident => { $name:literal, $kind:ident, $unit:literal, [$($label:literal),*], $help:literal } ),+ $(,)?) => {
        /// Every metric the system records, in catalog order.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
        #[repr(u16)]
        pub enum MetricId {
            $(
                #[doc = $help]
                $variant,
            )+
        }

        /// The full static catalog, indexed by `MetricId as usize`.
        pub const CATALOG: &[MetricDef] = &[
            $(
                MetricDef {
                    name: $name,
                    kind: MetricKind::$kind,
                    unit: $unit,
                    labels: &[$($label),*],
                    help: $help,
                },
            )+
        ];
    };
}

metric_catalog! {
    SelectorCps => { "selector.cps", Counter, "decisions", ["epoch", "layer"],
        "ReqEC-FP Selector picked the compressed candidate" },
    SelectorPdt => { "selector.pdt", Counter, "decisions", ["epoch", "layer"],
        "ReqEC-FP Selector picked the predicted candidate" },
    SelectorAvg => { "selector.avg", Counter, "decisions", ["epoch", "layer"],
        "ReqEC-FP Selector picked the average candidate" },
    BitTunerBits => { "bittuner.bits", Gauge, "bits", ["epoch", "src", "dst"],
        "Adaptive bit width B in force on the src->dst requester link after the epoch's tune" },
    ResecResidualSq => { "resec.residual_l2sq", Gauge, "norm_sq", ["epoch", "layer"],
        "Sum of squared L2 norms of live ResEC-BP residuals per exchange layer" },
    ResecT1Bound => { "resec.theorem1_bound", Gauge, "norm_sq", ["epoch", "layer"],
        "Theorem 1 upper bound (1+a)^(L-l) G^2 / (1 - a^2(1+1/rho)) for the same layer" },
    LinkBytes => { "traffic.link_bytes", Gauge, "bytes", ["epoch", "src", "dst"],
        "Bytes moved src->dst this epoch (workers first, then parameter servers)" },
    FaultDropped => { "faults.dropped", Counter, "messages", ["epoch"],
        "Messages lost in transit under fault injection" },
    FaultCorrupted => { "faults.corrupted", Counter, "messages", ["epoch"],
        "Messages that arrived but failed their checksum" },
    FaultDuplicated => { "faults.duplicated", Counter, "messages", ["epoch"],
        "Redundant duplicate deliveries" },
    FaultDegradedDrop => { "faults.degraded_drop", Counter, "messages", ["epoch"],
        "EC-degrade substitutions whose final failed attempt was a drop (timeout-detected)" },
    FaultDegradedCorrupt => { "faults.degraded_corrupt", Counter, "messages", ["epoch"],
        "EC-degrade substitutions whose final failed attempt was a corruption (checksum-detected)" },
    FaultCrashRecovered => { "faults.crash_recovered", Counter, "events", ["epoch"],
        "Worker crashes rolled back and replayed at this epoch" },
    FaultStragglerFactor => { "faults.straggler_factor", Gauge, "ratio", ["epoch", "worker"],
        "Injected slowdown factor of a straggling worker" },
    PhaseComputeS => { "phase.compute", Gauge, "seconds", ["epoch"],
        "Measured max-worker compute seconds, summed over the epoch's supersteps" },
    PhaseCommS => { "phase.comm", Gauge, "seconds", ["epoch"],
        "Modeled communication seconds of the epoch" },
    PhasePackS => { "phase.pack", Gauge, "seconds", ["epoch"],
        "Measured responder-side gather/compress (message packing) seconds" },
    PhaseUnpackS => { "phase.unpack", Gauge, "seconds", ["epoch"],
        "Measured requester-side scatter (message unpacking) seconds" },
    SuperstepCommS => { "superstep.comm", Gauge, "seconds", ["epoch", "superstep"],
        "Modeled communication seconds of one superstep" },
    SuperstepComputeS => { "superstep.compute", Gauge, "seconds", ["epoch", "superstep"],
        "Measured max-worker compute seconds of one superstep" },
    FpWireBytes => { "fp.wire_bytes", Histogram, "bytes", ["epoch"],
        "Per-message forward-pass wire sizes" },
    BpWireBytes => { "bp.wire_bytes", Histogram, "bytes", ["epoch"],
        "Per-message backward-pass wire sizes" },
    FpReconErrL1 => { "fp.recon_err_l1", Gauge, "l1", ["epoch"],
        "Total L1 reconstruction error of the epoch's forward messages" },
    ServeCacheHit => { "serve.cache_hit", Counter, "rows", ["epoch", "worker"],
        "Serving embedding-cache hits (label 0 is the store refresh version)" },
    ServeCacheMiss => { "serve.cache_miss", Counter, "rows", ["epoch", "worker"],
        "Serving embedding-cache misses fetched from the owning worker" },
    ServeBatchOccupancy => { "serve.batch_occupancy", Histogram, "requests", ["epoch", "worker"],
        "Requests coalesced into one serving batch at dispatch" },
    ServeFetchBytes => { "serve.fetch_bytes", Counter, "bytes", ["epoch", "src", "dst"],
        "Embedding-fetch reply bytes moved src->dst at serve time" },
    ServeLatencyP50 => { "serve.latency_p50", Gauge, "seconds", ["epoch"],
        "Median simulated request latency of the serving run" },
    ServeLatencyP99 => { "serve.latency_p99", Gauge, "seconds", ["epoch"],
        "99th-percentile simulated request latency of the serving run" },
    ServeQps => { "serve.qps", Gauge, "requests_per_s", ["epoch", "worker"],
        "Served queries per simulated second, per worker" },
    TimelineIdleS => { "timeline.idle_s", Gauge, "seconds", ["epoch", "superstep", "worker"],
        "Idle-wait seconds of one worker inside one superstep barrier (step max minus own scaled compute)" },
    TimelineHeadroomS => { "timeline.overlap_headroom_s", Gauge, "seconds", ["epoch"],
        "Summed worker idle-wait seconds of the epoch — the overlap an async engine could reclaim" },
    ServeCacheHitRate => { "serve.cache_hit_rate", Gauge, "ratio", ["epoch", "worker"],
        "Serving cache hits / (hits + misses) over the run (label 0 is the store refresh version)" },
    ServeQueueWaitS => { "serve.queue_wait_s", Histogram, "seconds", ["epoch", "worker"],
        "Per-request simulated wait between arrival and batch dispatch" },
    ServeFetchS => { "serve.fetch_s", Histogram, "seconds", ["epoch", "worker"],
        "Per-batch modeled cross-partition fetch seconds" },
    ServeComputeS => { "serve.compute_s", Histogram, "seconds", ["epoch", "worker"],
        "Per-batch modeled final-layer compute seconds" },
    ServeLatencyBucket => { "serve.latency_log2", Counter, "requests", ["epoch", "bucket"],
        "Requests whose end-to-end latency fell in log2 bucket b = [2^(b-64), 2^(b-63)) seconds" },
}

impl MetricId {
    /// The static definition of this metric.
    pub fn def(self) -> &'static MetricDef {
        // The catalog is generated from the same macro arm as the enum, so
        // the index is always in range; fall back to the first entry rather
        // than panicking on a (impossible) mismatch.
        CATALOG.get(self as usize).unwrap_or(&CATALOG[0])
    }
}

/// The `(metric, labels)`-keyed value store.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    values: BTreeMap<(u16, Labels), MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to a counter series.
    pub fn add(&mut self, id: MetricId, lbl: Labels, v: u64) {
        let entry = self.values.entry((id as u16, lbl)).or_insert(MetricValue::Counter(0));
        if let MetricValue::Counter(total) = entry {
            *total += v;
        }
    }

    /// Sets a gauge series.
    pub fn set(&mut self, id: MetricId, lbl: Labels, v: f64) {
        self.values.insert((id as u16, lbl), MetricValue::Gauge(v));
    }

    /// Observes `v` on a histogram series.
    pub fn observe(&mut self, id: MetricId, lbl: Labels, v: f64) {
        let entry = self
            .values
            .entry((id as u16, lbl))
            .or_insert(MetricValue::Histogram(HistSummary::default()));
        if let MetricValue::Histogram(h) = entry {
            h.observe(v);
        }
    }

    /// Number of recorded series.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates recorded series in deterministic (catalog, label) order.
    pub fn iter(&self) -> impl Iterator<Item = (MetricId, &Labels, &MetricValue)> + '_ {
        self.values.iter().filter_map(|((id, lbl), v)| id_from_index(*id).map(|m| (m, lbl, v)))
    }

    /// Discards every series whose epoch label (slot 0) is `>= epoch`.
    /// Crash rollback replays those epochs, which re-records them; series
    /// without an epoch label survive.
    pub fn discard_from_epoch(&mut self, epoch: u32) {
        self.values.retain(|(_, lbl), _| lbl[0] == L_NONE || lbl[0] < epoch);
    }
}

/// Deterministic log2 latency bucket: `64 + floor(log2(v))` clamped to
/// `0..=127`, read straight from the IEEE-754 exponent bits — no libm
/// call, so every platform buckets identically. Zero, negative,
/// subnormal and non-finite values land in bucket 0.
pub fn log2_bucket(v: f64) -> u32 {
    if !(v.is_finite() && v > 0.0) {
        return 0;
    }
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i64;
    if biased == 0 {
        return 0; // subnormal: below every bucket boundary we care about
    }
    (64 + (biased - 1023)).clamp(0, 127) as u32
}

fn id_from_index(idx: u16) -> Option<MetricId> {
    // Inverse of `MetricId as u16`, kept total by construction: the store
    // only ever holds indices produced from a `MetricId`.
    CATALOG.get(idx as usize)?;
    // SAFETY-free inverse: match on the index via the catalog length.
    Some(match idx {
        0 => MetricId::SelectorCps,
        1 => MetricId::SelectorPdt,
        2 => MetricId::SelectorAvg,
        3 => MetricId::BitTunerBits,
        4 => MetricId::ResecResidualSq,
        5 => MetricId::ResecT1Bound,
        6 => MetricId::LinkBytes,
        7 => MetricId::FaultDropped,
        8 => MetricId::FaultCorrupted,
        9 => MetricId::FaultDuplicated,
        10 => MetricId::FaultDegradedDrop,
        11 => MetricId::FaultDegradedCorrupt,
        12 => MetricId::FaultCrashRecovered,
        13 => MetricId::FaultStragglerFactor,
        14 => MetricId::PhaseComputeS,
        15 => MetricId::PhaseCommS,
        16 => MetricId::PhasePackS,
        17 => MetricId::PhaseUnpackS,
        18 => MetricId::SuperstepCommS,
        19 => MetricId::SuperstepComputeS,
        20 => MetricId::FpWireBytes,
        21 => MetricId::BpWireBytes,
        22 => MetricId::FpReconErrL1,
        23 => MetricId::ServeCacheHit,
        24 => MetricId::ServeCacheMiss,
        25 => MetricId::ServeBatchOccupancy,
        26 => MetricId::ServeFetchBytes,
        27 => MetricId::ServeLatencyP50,
        28 => MetricId::ServeLatencyP99,
        29 => MetricId::ServeQps,
        30 => MetricId::TimelineIdleS,
        31 => MetricId::TimelineHeadroomS,
        32 => MetricId::ServeCacheHitRate,
        33 => MetricId::ServeQueueWaitS,
        34 => MetricId::ServeFetchS,
        35 => MetricId::ServeComputeS,
        _ => MetricId::ServeLatencyBucket,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_and_enum_agree() {
        assert_eq!(MetricId::SelectorCps.def().name, "selector.cps");
        assert_eq!(MetricId::FpReconErrL1.def().name, "fp.recon_err_l1");
        assert_eq!(MetricId::ServeLatencyBucket as usize, CATALOG.len() - 1);
        for (i, def) in CATALOG.iter().enumerate() {
            let id = id_from_index(i as u16).expect("index round-trips");
            assert_eq!(id as usize, i);
            assert_eq!(id.def().name, def.name);
            assert_eq!(
                def.labels.first(),
                Some(&"epoch"),
                "{}: slot 0 must be the epoch",
                def.name
            );
            assert!(def.labels.len() <= 4);
        }
    }

    #[test]
    fn counters_accumulate_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        let l = labels(&[0, 1]);
        r.add(MetricId::SelectorPdt, l, 5);
        r.add(MetricId::SelectorPdt, l, 7);
        r.set(MetricId::PhaseCommS, labels(&[0]), 1.0);
        r.set(MetricId::PhaseCommS, labels(&[0]), 2.0);
        let rows: Vec<_> = r.iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].2, &MetricValue::Counter(12));
        assert_eq!(rows[1].2, &MetricValue::Gauge(2.0));
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut r = MetricsRegistry::new();
        let l = labels(&[0]);
        for v in [4.0, 1.0, 9.0] {
            r.observe(MetricId::FpWireBytes, l, v);
        }
        let (_, _, v) = r.iter().next().expect("one series");
        match v {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 3);
                assert_eq!(h.sum, 14.0);
                assert_eq!(h.min, 1.0);
                assert_eq!(h.max, 9.0);
            }
            other => panic!("wrong value kind {other:?}"),
        }
    }

    #[test]
    fn iteration_is_in_catalog_then_label_order() {
        let mut r = MetricsRegistry::new();
        r.set(MetricId::PhaseCommS, labels(&[1]), 1.0);
        r.set(MetricId::PhaseCommS, labels(&[0]), 1.0);
        r.add(MetricId::SelectorCps, labels(&[1, 2]), 1);
        let names: Vec<(&str, u32)> = r.iter().map(|(id, l, _)| (id.def().name, l[0])).collect();
        assert_eq!(names, vec![("selector.cps", 1), ("phase.comm", 0), ("phase.comm", 1)]);
    }

    #[test]
    fn log2_bucket_is_floor_log2_plus_64() {
        assert_eq!(log2_bucket(1.0), 64);
        assert_eq!(log2_bucket(1.5), 64);
        assert_eq!(log2_bucket(2.0), 65);
        assert_eq!(log2_bucket(0.5), 63);
        // Millisecond-scale latencies: 1e-3 is in [2^-10, 2^-9).
        assert_eq!(log2_bucket(1e-3), 54);
        assert_eq!(log2_bucket(0.0), 0);
        assert_eq!(log2_bucket(-1.0), 0);
        assert_eq!(log2_bucket(f64::NAN), 0);
        assert_eq!(log2_bucket(f64::INFINITY), 0);
        assert_eq!(log2_bucket(f64::MAX), 127);
    }

    #[test]
    fn discard_from_epoch_respects_slot_zero() {
        let mut r = MetricsRegistry::new();
        r.add(MetricId::SelectorCps, labels(&[0, 1]), 1);
        r.add(MetricId::SelectorCps, labels(&[3, 1]), 1);
        r.set(MetricId::PhaseCommS, labels(&[2]), 0.5);
        r.discard_from_epoch(2);
        let epochs: Vec<u32> = r.iter().map(|(_, l, _)| l[0]).collect();
        assert_eq!(epochs, vec![0]);
    }
}
