//! The span model: fixed-shape events on a fixed track layout.
//!
//! A [`SpanEvent`] is `Copy` and carries only `&'static str` names plus
//! numeric coordinates, so recording one is a handful of word moves — no
//! allocation on any hot path. Timestamps are **simulated seconds**
//! (converted to microseconds at export time, the unit Chrome's
//! `trace_event` format expects); host-measured spans accumulate on their
//! own track and are zero-width under deterministic timing.

use serde::{Deserialize, Serialize};

/// Sentinel for "this dimension does not apply to this span".
pub const NO_INDEX: i64 = -1;

/// One completed span. `start_s`/`dur_s` are seconds on the simulated
/// timeline (or the accumulated host timeline for `cat == "host"`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Event name, e.g. `"fp:exchange"`.
    pub name: &'static str,
    /// Category: `"fp"`, `"bp"`, `"loss"`, `"update"` or `"host"`.
    pub cat: &'static str,
    /// Track index (Chrome `tid`); see [`TrackLayout`].
    pub track: u32,
    /// Start time in seconds.
    pub start_s: f64,
    /// Duration in seconds.
    pub dur_s: f64,
    /// Epoch the span belongs to ([`NO_INDEX`] when not applicable).
    pub epoch: i64,
    /// GNN layer ([`NO_INDEX`] when not applicable).
    pub layer: i64,
    /// Within-epoch superstep index ([`NO_INDEX`] when not applicable).
    pub superstep: i64,
    /// Simulated worker ([`NO_INDEX`] for cluster-wide spans).
    pub worker: i64,
}

impl SpanEvent {
    /// A span with every optional dimension unset.
    pub fn new(
        name: &'static str,
        cat: &'static str,
        track: u32,
        start_s: f64,
        dur_s: f64,
    ) -> Self {
        Self {
            name,
            cat,
            track,
            start_s,
            dur_s,
            epoch: NO_INDEX,
            layer: NO_INDEX,
            superstep: NO_INDEX,
            worker: NO_INDEX,
        }
    }

    /// A host-measured span; the sink assigns its track and start time.
    pub fn host(name: &'static str, dur_s: f64) -> Self {
        Self::new(name, "host", 0, 0.0, dur_s)
    }

    /// Sets the epoch dimension.
    pub fn at_epoch(mut self, epoch: usize) -> Self {
        self.epoch = epoch as i64;
        self
    }

    /// Sets the layer dimension.
    pub fn at_layer(mut self, layer: usize) -> Self {
        self.layer = layer as i64;
        self
    }

    /// Sets the superstep dimension.
    pub fn at_superstep(mut self, superstep: u32) -> Self {
        self.superstep = superstep as i64;
        self
    }

    /// Sets the worker dimension.
    pub fn at_worker(mut self, worker: usize) -> Self {
        self.worker = worker as i64;
        self
    }
}

/// The fixed track layout of one run: one track per simulated worker,
/// then the network, the engine, and the host-measurement track. Exports
/// walk tracks in ascending index order — worker order first — so merged
/// output is byte-identical however the recording was threaded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackLayout {
    workers: usize,
}

impl TrackLayout {
    /// Layout for `workers` simulated workers.
    pub fn new(workers: usize) -> Self {
        Self { workers }
    }

    /// Number of simulated workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Track of worker `w`'s compute spans.
    pub fn worker(&self, w: usize) -> u32 {
        debug_assert!(w < self.workers, "worker out of range");
        w as u32
    }

    /// Track of modeled network time (exchange/update supersteps).
    pub fn network(&self) -> u32 {
        self.workers as u32
    }

    /// Track of cluster-wide engine phases (epochs, layers).
    pub fn engine(&self) -> u32 {
        self.workers as u32 + 1
    }

    /// Track of host-measured (wall-clock) spans.
    pub fn host(&self) -> u32 {
        self.workers as u32 + 2
    }

    /// Total number of tracks.
    pub fn count(&self) -> usize {
        self.workers + 3
    }

    /// Human-readable track name (Chrome `thread_name` metadata).
    pub fn name(&self, track: u32) -> String {
        let t = track as usize;
        if t < self.workers {
            format!("worker {t}")
        } else if t == self.workers {
            "network".to_string()
        } else if t == self.workers + 1 {
            "engine".to_string()
        } else {
            "host".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_dimensions() {
        let ev = SpanEvent::new("fp:compute", "fp", 2, 1.5, 0.25)
            .at_epoch(3)
            .at_layer(2)
            .at_superstep(7)
            .at_worker(1);
        assert_eq!(ev.epoch, 3);
        assert_eq!(ev.layer, 2);
        assert_eq!(ev.superstep, 7);
        assert_eq!(ev.worker, 1);
        assert_eq!(SpanEvent::host("x", 0.1).epoch, NO_INDEX);
    }

    #[test]
    fn track_layout_is_worker_major() {
        let l = TrackLayout::new(4);
        assert_eq!(l.worker(0), 0);
        assert_eq!(l.worker(3), 3);
        assert_eq!(l.network(), 4);
        assert_eq!(l.engine(), 5);
        assert_eq!(l.host(), 6);
        assert_eq!(l.count(), 7);
        assert_eq!(l.name(1), "worker 1");
        assert_eq!(l.name(4), "network");
        assert_eq!(l.name(5), "engine");
        assert_eq!(l.name(6), "host");
    }
}
