//! A dependency-free JSON syntax validator.
//!
//! A small RFC 8259 recursive-descent checker that validates syntax (and
//! rejects trailing garbage) without building a value tree — cheaper and
//! stricter than a full parse when all we want to prove is that an
//! exported document is well-formed. Used by the exporter tests, the
//! golden-snapshot suite, and the `trace_check` binary. (Structural
//! comparison of parsed documents lives in [`crate::diff`].)

/// Validates that `text` is exactly one well-formed JSON value.
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut p = Checker { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after the JSON value"));
    }
    Ok(())
}

/// Validates JSONL: every non-empty line is a well-formed JSON value.
/// Returns the number of validated lines.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    Ok(n)
}

const MAX_DEPTH: usize = 128;

struct Checker<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Checker<'_> {
    fn fail(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting deeper than 128 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.expect_lit("true"),
            Some(b'f') => self.expect_lit("false"),
            Some(b'n') => self.expect_lit("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.fail("unexpected character")),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.pos += 1; // consume `{`
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.fail("expected a string key"));
            }
            self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.fail("expected `:` after object key"));
            }
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(());
            }
            return Err(self.fail("expected `,` or `}` in object"));
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.pos += 1; // consume `[`
        self.skip_ws();
        if self.eat(b']') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(());
            }
            return Err(self.fail("expected `,` or `]` in array"));
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.pos += 1; // consume opening quote
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                                    return Err(self.fail("bad \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.fail("raw control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.fail("expected a digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), String> {
        self.eat(b'-');
        if self.eat(b'0') {
            // A leading zero may not be followed by more digits.
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.fail("leading zero in number"));
            }
        } else {
            self.digits()?;
        }
        if self.eat(b'.') {
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "null",
            "true",
            "-0.5e+3",
            "\"a\\u00e9\\n\"",
            "[]",
            "[1,2,[3]]",
            "{}",
            r#"{"a":1,"b":[{"c":null}],"d":"x"}"#,
            "  { \"k\" : 1.0 }  ",
        ] {
            assert_eq!(validate_json(ok), Ok(()), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            "1e",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "\"unterminated",
            "\"bad\\q\"",
            "[1] trailing",
            "{},",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn jsonl_counts_lines_and_reports_the_bad_one() {
        assert_eq!(validate_jsonl("{\"a\":1}\n\n[2]\n"), Ok(2));
        let err = validate_jsonl("{}\nnope\n").expect_err("bad line");
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn depth_limit_blocks_stack_abuse() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate_json(&deep).is_err());
    }
}
