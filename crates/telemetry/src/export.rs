//! Exporters: Chrome `trace_event` JSON, flat JSONL, standalone metrics
//! JSON.
//!
//! All three render a [`TelemetryReport`], whose spans and rows are
//! already in deterministic order — the exporters add no ordering of
//! their own, so exported bytes are identical whenever reports are.
//! Timestamps convert from the report's seconds to the microseconds
//! Chrome's `trace_event` format expects only here, at the edge.

use crate::registry::{MetricKind, MetricValue, L_NONE};
use crate::report::{MetricRow, TelemetryReport};
use crate::span::SpanEvent;
use serde_json::{json, Value};

const MICROS_PER_S: f64 = 1e6;

fn span_args(ev: &SpanEvent) -> Value {
    let mut fields = Vec::new();
    for (name, v) in [
        ("epoch", ev.epoch),
        ("layer", ev.layer),
        ("superstep", ev.superstep),
        ("worker", ev.worker),
    ] {
        if v >= 0 {
            fields.push((name.to_string(), Value::Int(v)));
        }
    }
    Value::Object(fields)
}

fn metric_kind_str(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

fn metric_labels(row: &MetricRow) -> Value {
    let fields = row
        .label_names
        .iter()
        .zip(row.labels.iter())
        .filter(|(_, v)| **v != L_NONE)
        .map(|(name, v)| (name.to_string(), Value::Int(*v as i64)))
        .collect();
    Value::Object(fields)
}

fn metric_value(value: &MetricValue) -> Value {
    match value {
        MetricValue::Counter(v) => json!(*v),
        MetricValue::Gauge(v) => Value::Float(*v),
        MetricValue::Histogram(h) => json!({
            "count": h.count,
            "sum": h.sum,
            "min": h.min,
            "max": h.max,
        }),
    }
}

fn metric_row(row: &MetricRow) -> Value {
    json!({
        "name": row.name,
        "kind": metric_kind_str(row.kind),
        "unit": row.unit,
        "labels": metric_labels(row),
        "value": metric_value(&row.value),
    })
}

/// Renders the report as a Chrome `trace_event` value: one
/// `thread_name` metadata event per track, then one complete (`"X"`)
/// event per span, `ts`/`dur` in microseconds. The result loads in
/// `chrome://tracing` and Perfetto.
pub fn chrome_trace(report: &TelemetryReport) -> Value {
    let mut events = vec![json!({
        "ph": "M",
        "name": "process_name",
        "pid": 0,
        "args": json!({"name": "ec-graph"}),
    })];
    for (tid, name) in report.tracks.iter().enumerate() {
        events.push(json!({
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": tid,
            "args": json!({"name": name}),
        }));
    }
    for ev in &report.spans {
        events.push(json!({
            "ph": "X",
            "name": ev.name,
            "cat": ev.cat,
            "ts": Value::Float(ev.start_s * MICROS_PER_S),
            "dur": Value::Float(ev.dur_s * MICROS_PER_S),
            "pid": 0,
            "tid": ev.track,
            "args": span_args(ev),
        }));
    }
    json!({
        "traceEvents": Value::Array(events),
        "displayTimeUnit": "ms",
        "otherData": json!({
            "level": report.level.as_str(),
            "dropped_spans": report.dropped_spans,
        }),
    })
}

/// [`chrome_trace`] rendered to a string.
pub fn chrome_trace_json(report: &TelemetryReport) -> String {
    chrome_trace(report).to_string()
}

/// Renders the report as a flat JSONL event log: one JSON object per
/// line — spans (in merged track order) first, then metric rows.
pub fn jsonl(report: &TelemetryReport) -> String {
    let mut out = String::new();
    for ev in &report.spans {
        let line = json!({
            "type": "span",
            "name": ev.name,
            "cat": ev.cat,
            "track": ev.track,
            "start_s": Value::Float(ev.start_s),
            "dur_s": Value::Float(ev.dur_s),
            "args": span_args(ev),
        });
        out.push_str(&line.to_string());
        out.push('\n');
    }
    for row in &report.rows {
        let mut line = metric_row(row);
        if let Value::Object(fields) = &mut line {
            fields.insert(0, ("type".to_string(), json!("metric")));
        }
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Renders the metric rows (plus run-level context) as a standalone
/// metrics JSON document.
pub fn metrics_json(report: &TelemetryReport) -> String {
    let rows: Vec<Value> = report.rows.iter().map(metric_row).collect();
    json!({
        "level": report.level.as_str(),
        "tracks": report.tracks,
        "dropped_spans": report.dropped_spans,
        "metrics": Value::Array(rows),
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonck;
    use crate::registry::{labels, MetricId};
    use crate::sink::TelemetrySink;
    use crate::{TelemetryConfig, TelemetryLevel};

    fn sample_report() -> TelemetryReport {
        let mut s = TelemetrySink::new(&TelemetryConfig::at(TelemetryLevel::Trace), 2);
        let net = s.layout().network();
        s.span(
            SpanEvent::new("fp:compute", "fp", 0, 0.5, 0.25).at_epoch(0).at_layer(1).at_worker(0),
        );
        s.span(SpanEvent::new("fp:exchange", "fp", net, 0.0, 0.5).at_epoch(0).at_superstep(0));
        s.add(MetricId::SelectorPdt, labels(&[0, 2]), 17);
        s.set(MetricId::PhaseCommS, labels(&[0]), 0.5);
        s.observe(MetricId::FpWireBytes, labels(&[0]), 128.0);
        s.observe(MetricId::FpWireBytes, labels(&[0]), 64.0);
        s.report()
    }

    #[test]
    fn chrome_trace_has_metadata_then_spans_and_validates() {
        let rep = sample_report();
        let text = chrome_trace_json(&rep);
        jsonck::validate_json(&text).expect("valid JSON");
        assert!(text.starts_with(r#"{"traceEvents":[{"ph":"M","name":"process_name""#));
        assert!(text.contains(r#""name":"worker 0""#));
        assert!(text.contains(r#""name":"network""#));
        // 0.5 s start -> 500000 us; the span keeps its dimensions as args.
        assert!(text.contains(r#""ph":"X","name":"fp:compute","cat":"fp","ts":500000.0,"dur":250000.0,"pid":0,"tid":0,"args":{"epoch":0,"layer":1,"worker":0}"#));
        assert!(text.contains(r#""args":{"epoch":0,"superstep":0}"#));
    }

    #[test]
    fn jsonl_emits_spans_then_metrics_one_per_line() {
        let rep = sample_report();
        let text = jsonl(&rep);
        let lines = jsonck::validate_jsonl(&text).expect("valid JSONL");
        assert_eq!(lines, 2 + rep.rows.len());
        let first = text.lines().next().expect("nonempty");
        assert!(first.starts_with(r#"{"type":"span","name":"fp:compute""#));
        assert!(text.contains(r#"{"type":"metric","name":"selector.pdt","kind":"counter","unit":"decisions","labels":{"epoch":0,"layer":2},"value":17}"#));
        assert!(text.contains(r#"{"type":"metric","name":"fp.wire_bytes","kind":"histogram","unit":"bytes","labels":{"epoch":0},"value":{"count":2,"sum":192.0,"min":64.0,"max":128.0}}"#));
    }

    #[test]
    fn metrics_json_is_standalone_and_valid() {
        let rep = sample_report();
        let text = metrics_json(&rep);
        jsonck::validate_json(&text).expect("valid JSON");
        assert!(text.starts_with(r#"{"level":"trace","tracks":["worker 0","worker 1","network","engine","host"],"dropped_spans":0,"metrics":["#));
        assert!(text.contains(r#""name":"phase.comm","kind":"gauge","unit":"seconds","labels":{"epoch":0},"value":0.5"#));
    }

    #[test]
    fn empty_report_still_exports_valid_documents() {
        let rep = TelemetrySink::new(&TelemetryConfig::default(), 1).report();
        jsonck::validate_json(&chrome_trace_json(&rep)).expect("valid trace");
        jsonck::validate_json(&metrics_json(&rep)).expect("valid metrics");
        assert_eq!(jsonck::validate_jsonl(&jsonl(&rep)), Ok(0));
    }
}
