//! [`TelemetryReport`]: the immutable snapshot a finished run hands back.
//!
//! The sink merges its per-track rings in ascending track order (workers
//! first, then network / engine / host) and flattens the registry into
//! [`MetricRow`]s in `BTreeMap` key order, so the report — and everything
//! exported from it — is byte-identical across thread-count matrices.

use crate::registry::{Labels, MetricKind, MetricValue};
use crate::span::SpanEvent;
use crate::TelemetryLevel;
use serde::{Deserialize, Serialize};

/// One flattened metric series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricRow {
    /// Dotted series name from the catalog.
    pub name: &'static str,
    /// Value kind.
    pub kind: MetricKind,
    /// Unit of the value.
    pub unit: &'static str,
    /// Names of the used label slots.
    pub label_names: &'static [&'static str],
    /// Label values ([`crate::L_NONE`] in unused slots).
    pub labels: Labels,
    /// The recorded value.
    pub value: MetricValue,
}

/// Snapshot of everything one run recorded.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// The level the run recorded at.
    pub level: TelemetryLevel,
    /// Track names in track-index order (Chrome `tid` order).
    pub tracks: Vec<String>,
    /// Completed spans, merged in ascending track order and recording
    /// order within a track. Empty below [`TelemetryLevel::Trace`].
    pub spans: Vec<SpanEvent>,
    /// Spans overwritten because a ring filled up.
    pub dropped_spans: u64,
    /// Metric rows in deterministic catalog-then-label order.
    pub rows: Vec<MetricRow>,
}

impl TelemetryReport {
    /// Rows of the series called `name`, in label order.
    pub fn rows_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a MetricRow> + 'a {
        self.rows.iter().filter(move |r| r.name == name)
    }

    /// The single gauge value of `name` with label values `labels`
    /// (prefix match on the used slots), if recorded.
    pub fn gauge(&self, name: &str, labels: &[u32]) -> Option<f64> {
        self.rows_named(name).find(|r| r.labels.iter().zip(labels).all(|(a, b)| a == b)).and_then(
            |r| match r.value {
                MetricValue::Gauge(v) => Some(v),
                _ => None,
            },
        )
    }

    /// The single counter value of `name` with label values `labels`
    /// (prefix match on the used slots), if recorded.
    pub fn counter(&self, name: &str, labels: &[u32]) -> Option<u64> {
        self.rows_named(name).find(|r| r.labels.iter().zip(labels).all(|(a, b)| a == b)).and_then(
            |r| match r.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{labels, L_NONE};

    fn row(name: &'static str, l: Labels, value: MetricValue) -> MetricRow {
        MetricRow {
            name,
            kind: match value {
                MetricValue::Counter(_) => MetricKind::Counter,
                MetricValue::Gauge(_) => MetricKind::Gauge,
                MetricValue::Histogram(_) => MetricKind::Histogram,
            },
            unit: "x",
            label_names: &["epoch"],
            labels: l,
            value,
        }
    }

    #[test]
    fn lookup_helpers_match_on_label_prefix() {
        let rep = TelemetryReport {
            rows: vec![
                row("phase.comm", labels(&[0]), MetricValue::Gauge(1.5)),
                row("phase.comm", labels(&[1]), MetricValue::Gauge(2.5)),
                row("faults.dropped", labels(&[1]), MetricValue::Counter(3)),
            ],
            ..TelemetryReport::default()
        };
        assert_eq!(rep.gauge("phase.comm", &[1]), Some(2.5));
        assert_eq!(rep.counter("faults.dropped", &[1]), Some(3));
        assert_eq!(rep.counter("faults.dropped", &[0]), None);
        assert_eq!(rep.gauge("missing", &[0]), None);
        assert_eq!(rep.rows_named("phase.comm").count(), 2);
        assert_eq!(rep.rows[0].labels[1], L_NONE);
    }
}
