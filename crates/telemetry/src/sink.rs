//! [`TelemetrySink`]: the single recording facade the engine owns.
//!
//! Every instrumentation site goes through the sink, and every recording
//! method is gated on the configured [`TelemetryLevel`] — at
//! [`TelemetryLevel::Off`] each call reduces to one enum compare. The
//! sink is deliberately not `Sync`: spans are recorded on the engine
//! thread during its deterministic ordered replay of worker results, so
//! no locks sit on (or perturb) the hot path. This file is inside
//! `ec-lint`'s `no-panic-hot-path` scope.

use crate::registry::{labels, Labels, MetricId, MetricsRegistry};
use crate::report::{MetricRow, TelemetryReport};
use crate::ring::SpanRing;
use crate::span::{SpanEvent, TrackLayout};
use crate::{TelemetryConfig, TelemetryLevel};

/// Owns the span rings and the metric registry of one run.
#[derive(Clone, Debug)]
pub struct TelemetrySink {
    level: TelemetryLevel,
    layout: TrackLayout,
    registry: MetricsRegistry,
    /// One ring per track; empty below [`TelemetryLevel::Trace`].
    rings: Vec<SpanRing>,
    /// Epochs at which a crash was rolled back and replayed. Kept outside
    /// the registry because [`Self::rewind_to_epoch`] must NOT erase them:
    /// the replayed epochs re-record everything else, but the crash itself
    /// happens only once.
    crash_epochs: Vec<u32>,
    /// Accumulated host-measured time; host spans are laid out end to end
    /// on their own track (zero-width under deterministic timing).
    host_cursor_s: f64,
}

impl TelemetrySink {
    /// A sink for `workers` simulated workers at the configured level.
    pub fn new(config: &TelemetryConfig, workers: usize) -> Self {
        let layout = TrackLayout::new(workers);
        let rings = if config.level >= TelemetryLevel::Trace {
            (0..layout.count()).map(|_| SpanRing::new(config.resolved_ring_capacity())).collect()
        } else {
            Vec::new()
        };
        Self {
            level: config.level,
            layout,
            registry: MetricsRegistry::new(),
            rings,
            crash_epochs: Vec::new(),
            host_cursor_s: 0.0,
        }
    }

    /// The configured recording level.
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// True when recording at `at` (or deeper) is on. `Off` is never
    /// "enabled": it is the absence of recording.
    pub fn enabled(&self, at: TelemetryLevel) -> bool {
        at > TelemetryLevel::Off && self.level >= at
    }

    /// The track layout of this run.
    pub fn layout(&self) -> TrackLayout {
        self.layout
    }

    /// Adds to a counter series (no-op below [`TelemetryLevel::Epoch`]).
    pub fn add(&mut self, id: MetricId, lbl: Labels, v: u64) {
        if self.level >= TelemetryLevel::Epoch {
            self.registry.add(id, lbl, v);
        }
    }

    /// Sets a gauge series (no-op below [`TelemetryLevel::Epoch`]).
    pub fn set(&mut self, id: MetricId, lbl: Labels, v: f64) {
        if self.level >= TelemetryLevel::Epoch {
            self.registry.set(id, lbl, v);
        }
    }

    /// Observes onto a histogram series (no-op below
    /// [`TelemetryLevel::Epoch`]).
    pub fn observe(&mut self, id: MetricId, lbl: Labels, v: f64) {
        if self.level >= TelemetryLevel::Epoch {
            self.registry.observe(id, lbl, v);
        }
    }

    /// Records a completed span on its track's ring (no-op below
    /// [`TelemetryLevel::Trace`], or for an out-of-range track).
    pub fn span(&mut self, ev: SpanEvent) {
        if let Some(ring) = self.rings.get_mut(ev.track as usize) {
            ring.push(ev);
        }
    }

    /// Records a host-measured span ([`crate::span!`]'s backend): assigns
    /// the host track and lays the span at the current host cursor.
    pub fn push_host_span(&mut self, mut ev: SpanEvent) {
        if self.rings.is_empty() {
            return;
        }
        ev.track = self.layout.host();
        ev.start_s = self.host_cursor_s;
        self.host_cursor_s += ev.dur_s;
        self.span(ev);
    }

    /// Marks a crash rolled back and replayed at `epoch`. Survives
    /// [`Self::rewind_to_epoch`].
    pub fn note_crash(&mut self, epoch: u32) {
        if self.level >= TelemetryLevel::Epoch {
            self.crash_epochs.push(epoch);
        }
    }

    /// Crash-rollback support: discards every metric row and span
    /// belonging to epoch `epoch` or later — the restored engine replays
    /// those epochs and re-records them, and without the rewind the
    /// replayed counters would double-count.
    pub fn rewind_to_epoch(&mut self, epoch: u32) {
        self.registry.discard_from_epoch(epoch);
        for ring in &mut self.rings {
            ring.discard_from_epoch(epoch as i64);
        }
    }

    /// Snapshots everything recorded so far into an immutable report.
    pub fn report(&self) -> TelemetryReport {
        let mut registry = self.registry.clone();
        for &e in &self.crash_epochs {
            registry.add(MetricId::FaultCrashRecovered, labels(&[e]), 1);
        }
        let rows: Vec<MetricRow> = registry
            .iter()
            .map(|(id, lbl, value)| {
                let def = id.def();
                MetricRow {
                    name: def.name,
                    kind: def.kind,
                    unit: def.unit,
                    label_names: def.labels,
                    labels: *lbl,
                    value: *value,
                }
            })
            .collect();
        let mut spans = Vec::with_capacity(self.rings.iter().map(SpanRing::len).sum());
        let mut dropped_spans = 0;
        for ring in &self.rings {
            spans.extend(ring.iter().copied());
            dropped_spans += ring.dropped();
        }
        TelemetryReport {
            level: self.level,
            tracks: (0..self.layout.count()).map(|t| self.layout.name(t as u32)).collect(),
            spans,
            dropped_spans,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::L_NONE;

    fn sink_at(level: TelemetryLevel) -> TelemetrySink {
        TelemetrySink::new(&TelemetryConfig::at(level), 2)
    }

    #[test]
    fn off_records_nothing() {
        let mut s = sink_at(TelemetryLevel::Off);
        assert!(!s.enabled(TelemetryLevel::Off));
        assert!(!s.enabled(TelemetryLevel::Epoch));
        s.add(MetricId::SelectorCps, labels(&[0, 1]), 5);
        s.span(SpanEvent::new("x", "fp", 0, 0.0, 1.0));
        s.note_crash(3);
        let rep = s.report();
        assert!(rep.rows.is_empty());
        assert!(rep.spans.is_empty());
    }

    #[test]
    fn epoch_level_records_metrics_but_not_spans() {
        let mut s = sink_at(TelemetryLevel::Epoch);
        assert!(s.enabled(TelemetryLevel::Epoch));
        assert!(!s.enabled(TelemetryLevel::Trace));
        s.set(MetricId::PhaseCommS, labels(&[0]), 0.5);
        s.span(SpanEvent::new("x", "fp", 0, 0.0, 1.0));
        let rep = s.report();
        assert_eq!(rep.rows.len(), 1);
        assert!(rep.spans.is_empty());
        assert_eq!(rep.tracks, vec!["worker 0", "worker 1", "network", "engine", "host"]);
    }

    #[test]
    fn spans_merge_in_ascending_track_order() {
        let mut s = sink_at(TelemetryLevel::Trace);
        let net = s.layout().network();
        s.span(SpanEvent::new("net", "fp", net, 0.0, 1.0));
        s.span(SpanEvent::new("w1", "fp", 1, 0.0, 1.0));
        s.span(SpanEvent::new("w0", "fp", 0, 0.0, 1.0));
        let names: Vec<&str> = s.report().spans.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["w0", "w1", "net"]);
    }

    #[test]
    fn host_spans_accumulate_on_their_own_track() {
        let mut s = sink_at(TelemetryLevel::Trace);
        s.push_host_span(SpanEvent::host("a", 2.0));
        s.push_host_span(SpanEvent::host("b", 0.5));
        let rep = s.report();
        assert_eq!(rep.spans.len(), 2);
        assert_eq!(rep.spans[0].track, s.layout().host());
        assert_eq!(rep.spans[0].start_s, 0.0);
        assert_eq!(rep.spans[1].start_s, 2.0);
    }

    #[test]
    fn rewind_discards_replayed_epochs_but_keeps_crash_marks() {
        let mut s = sink_at(TelemetryLevel::Trace);
        s.add(MetricId::SelectorCps, labels(&[0, 1]), 1);
        s.add(MetricId::SelectorCps, labels(&[1, 1]), 1);
        s.span(SpanEvent::new("e0", "fp", 0, 0.0, 1.0).at_epoch(0));
        s.span(SpanEvent::new("e1", "fp", 0, 1.0, 1.0).at_epoch(1));
        s.note_crash(1);
        s.rewind_to_epoch(1);
        s.add(MetricId::SelectorCps, labels(&[1, 1]), 1);
        let rep = s.report();
        assert_eq!(rep.spans.len(), 1);
        assert_eq!(rep.spans[0].name, "e0");
        assert_eq!(rep.counter("selector.cps", &[1, 1]), Some(1));
        assert_eq!(rep.counter("faults.crash_recovered", &[1]), Some(1));
        assert_eq!(
            rep.rows_named("faults.crash_recovered").next().map(|r| r.labels[1]),
            Some(L_NONE)
        );
    }
}
