//! `trace_diff`: structural regression diff of two metrics/bench JSON
//! documents (`BENCH_hotpath.json`, `BENCH_serving.json`, metrics
//! exports — anything the exporters or bench bins write).
//!
//! Usage:
//! `trace_diff <before.json> <after.json> [rel=0.05] [abs=1e-9]
//! [out=verdict.json] [--quiet]`
//!
//! Prints the human table unless `--quiet`; `out=` additionally writes
//! the machine JSON verdict. Exit codes: `0` no regressions (unchanged /
//! improved / schema-only change), `3` at least one series regressed,
//! `1` unreadable or malformed input, `2` bad usage. CI runs this as a
//! *soft* gate — the verdict is archived, the job does not fail on 3.
//!
//! `ecgraph compare` is the same driver ([`ec_trace::diff::cli_run`])
//! mounted as a subcommand.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(ec_trace::diff::cli_run("trace_diff", &args))
}
