//! `trace_check`: validates exported telemetry files.
//!
//! Usage: `trace_check <file>...` — each `.jsonl` file is checked line by
//! line, everything else as one JSON document. Exits non-zero on the
//! first malformed file. Used by `scripts/check.sh --trace-smoke`.

use std::process::ExitCode;

fn check_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    if path.ends_with(".jsonl") {
        let lines = ec_trace::jsonck::validate_jsonl(&text)?;
        Ok(format!("{lines} JSONL lines"))
    } else {
        ec_trace::jsonck::validate_json(&text)?;
        Ok(format!("{} bytes of JSON", text.len()))
    }
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <file>...");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &paths {
        match check_file(path) {
            Ok(desc) => println!("trace_check: {path}: OK ({desc})"),
            Err(e) => {
                eprintln!("trace_check: {path}: INVALID: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
