//! Cross-run regression diffing of metrics / bench JSON documents.
//!
//! `BENCH_hotpath.json`, `BENCH_serving.json` and the exporters' metrics
//! documents are point-in-time snapshots; this module compares two of
//! them structurally. Every numeric leaf becomes a dotted series path
//! (`epoch[1].compute_s_per_epoch`) and is classified as **unchanged**
//! (within a configurable relative threshold), **improved** or
//! **regressed** (when the path's name tells us which direction is
//! better), or plain **changed** (direction unknown, or a non-numeric
//! leaf differs). Added/removed paths are reported too, so schema drift
//! between runs cannot hide.
//!
//! Two identical documents always produce an all-unchanged report — the
//! `ecgraph compare` self-vs-self smoke test and the determinism suite
//! both rely on that. The classification itself is pure arithmetic over
//! the parsed values: no clocks, no environment, byte-identical output
//! for byte-identical inputs.

use serde_json::Value;
use std::fmt::Write as _;

/// Thresholds that decide when a numeric delta counts as drift.
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Relative threshold: deltas with `|after - before| <= rel *
    /// max(|before|, |after|)` are unchanged. Timing series from real
    /// hosts are noisy; 5 % is the default.
    pub rel_threshold: f64,
    /// Absolute floor below which a delta is always noise (shields
    /// near-zero series from infinite relative deltas).
    pub abs_epsilon: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self { rel_threshold: 0.05, abs_epsilon: 1e-9 }
    }
}

/// Whether a smaller value of a series is better, derived from the last
/// path segment's name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Times, byte counts, latencies, drops: smaller is better.
    LowerIsBetter,
    /// Speedups, accuracies, throughputs, hit rates: bigger is better.
    HigherIsBetter,
    /// No convention matches; deltas are reported as plain changes.
    Unknown,
}

/// Infers the improvement direction of a series from its path. When the
/// last segment is a neutral statistic name (`value`, `sum`, `mean`,
/// `min`, `max` — as in metric rows like `metrics[3].serve.qps.value`),
/// the preceding segment decides instead.
pub fn direction_of(path: &str) -> Direction {
    const NEUTRAL: &[&str] = &["value", "sum", "mean", "min", "max"];
    let mut segments = path.rsplit('.');
    let mut leaf = segments.next().unwrap_or(path);
    if NEUTRAL.contains(&leaf) {
        if let Some(parent) = segments.next() {
            leaf = parent;
        }
    }
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    const LOWER: &[&str] = &[
        "_s",
        "secs",
        "_bytes",
        "latency",
        "dropped",
        "violations",
        "loss",
        "_err",
        "err_",
        "corrupted",
        "duplicated",
        "miss",
        "recovery",
        "wait",
    ];
    const HIGHER: &[&str] =
        &["speedup", "qps", "acc", "hit", "melem_per_s", "throughput", "served", "rate"];
    if HIGHER.iter().any(|k| leaf.contains(k)) {
        return Direction::HigherIsBetter;
    }
    if LOWER.iter().any(|k| leaf.contains(k) || leaf.ends_with(k)) {
        return Direction::LowerIsBetter;
    }
    Direction::Unknown
}

/// Classification of one diffed path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Equal, or numeric delta within threshold.
    Unchanged,
    /// Numeric delta beyond threshold, in the better direction.
    Improved,
    /// Numeric delta beyond threshold, in the worse direction.
    Regressed,
    /// Differs, but no direction convention applies (or non-numeric).
    Changed,
    /// Present only in the after document.
    Added,
    /// Present only in the before document.
    Removed,
}

impl Verdict {
    /// Lower-case machine name.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Unchanged => "unchanged",
            Verdict::Improved => "improved",
            Verdict::Regressed => "regressed",
            Verdict::Changed => "changed",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }
}

/// One diffed leaf path.
#[derive(Clone, Debug)]
pub struct DiffEntry {
    /// Dotted/indexed path to the leaf.
    pub path: String,
    /// Value in the before document (`None` when added).
    pub before: Option<Value>,
    /// Value in the after document (`None` when removed).
    pub after: Option<Value>,
    /// Relative delta `(after - before) / max(|before|, |after|)` for
    /// numeric pairs with a nonzero base.
    pub rel_delta: Option<f64>,
    /// Classification.
    pub verdict: Verdict,
}

/// The full structural diff of two documents.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every compared leaf, in document walk order.
    pub entries: Vec<DiffEntry>,
}

/// Diffs two parsed JSON documents.
pub fn diff_values(before: &Value, after: &Value, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    walk(String::new(), Some(before), Some(after), cfg, &mut report.entries);
    report
}

fn as_number(v: &Value) -> Option<f64> {
    match v {
        Value::Int(_) | Value::UInt(_) | Value::Float(_) => v.as_f64(),
        _ => None,
    }
}

fn classify_numbers(path: &str, b: f64, a: f64, cfg: &DiffConfig) -> (Verdict, Option<f64>) {
    // Non-finite and subnormal operands break the threshold arithmetic
    // below: `INF - INF` and NaN deltas fail every `<=`/`>` comparison and
    // would fall through to an Improved/Regressed verdict chosen by the
    // `delta > 0.0` branch, and subnormals underflow `rel_threshold *
    // base`. Such leaves never classify as Improved/Regressed — only
    // exact-equal (covers equal infinities) counts as Unchanged, anything
    // else is Changed, and no relative delta is reported.
    let degenerate = |x: f64| !x.is_finite() || (x != 0.0 && !x.is_normal());
    if degenerate(b) || degenerate(a) {
        let verdict = if a == b { Verdict::Unchanged } else { Verdict::Changed };
        return (verdict, None);
    }
    let delta = a - b;
    let base = b.abs().max(a.abs());
    let rel = if base > 0.0 { Some(delta / base) } else { None };
    if delta.abs() <= cfg.abs_epsilon || delta.abs() <= cfg.rel_threshold * base {
        return (Verdict::Unchanged, rel);
    }
    let verdict = match (direction_of(path), delta > 0.0) {
        (Direction::LowerIsBetter, true) | (Direction::HigherIsBetter, false) => Verdict::Regressed,
        (Direction::LowerIsBetter, false) | (Direction::HigherIsBetter, true) => Verdict::Improved,
        (Direction::Unknown, _) => Verdict::Changed,
    };
    (verdict, rel)
}

fn child_path(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn walk(
    path: String,
    before: Option<&Value>,
    after: Option<&Value>,
    cfg: &DiffConfig,
    out: &mut Vec<DiffEntry>,
) {
    match (before, after) {
        (None, None) => {}
        (Some(b), None) => out.push(DiffEntry {
            path,
            before: Some(b.clone()),
            after: None,
            rel_delta: None,
            verdict: Verdict::Removed,
        }),
        (None, Some(a)) => out.push(DiffEntry {
            path,
            before: None,
            after: Some(a.clone()),
            rel_delta: None,
            verdict: Verdict::Added,
        }),
        (Some(Value::Object(bf)), Some(Value::Object(af))) => {
            // A row-shaped object that names its own series (metric rows:
            // `{"name": "serve.qps", ..., "value": n}`) gets the name
            // spliced into its children's paths, so direction inference
            // and the human table see `metrics[3].serve.qps.value`
            // instead of an anonymous `metrics[3].value`.
            let series = bf.iter().chain(af.iter()).find_map(|(k, v)| match v {
                Value::String(s) if k == "name" => Some(s.clone()),
                _ => None,
            });
            let seg = |k: &str| match &series {
                Some(name) if k != "name" => format!("{name}.{k}"),
                _ => k.to_string(),
            };
            // Before's key order first, then after-only keys in after's
            // order — deterministic, insertion-ordered like the shim.
            for (k, bv) in bf {
                let av = af.iter().find(|(ak, _)| ak == k).map(|(_, v)| v);
                walk(child_path(&path, &seg(k)), Some(bv), av, cfg, out);
            }
            for (k, av) in af {
                if !bf.iter().any(|(bk, _)| bk == k) {
                    walk(child_path(&path, &seg(k)), None, Some(av), cfg, out);
                }
            }
        }
        (Some(Value::Array(bs)), Some(Value::Array(asv))) => {
            for i in 0..bs.len().max(asv.len()) {
                walk(format!("{path}[{i}]"), bs.get(i), asv.get(i), cfg, out);
            }
        }
        (Some(b), Some(a)) => {
            let entry = match (as_number(b), as_number(a)) {
                (Some(bn), Some(an)) => {
                    let (verdict, rel_delta) = classify_numbers(&path, bn, an, cfg);
                    DiffEntry {
                        path,
                        before: Some(b.clone()),
                        after: Some(a.clone()),
                        rel_delta,
                        verdict,
                    }
                }
                _ => {
                    let same = b.to_string() == a.to_string();
                    DiffEntry {
                        path,
                        before: Some(b.clone()),
                        after: Some(a.clone()),
                        rel_delta: None,
                        verdict: if same { Verdict::Unchanged } else { Verdict::Changed },
                    }
                }
            };
            out.push(entry);
        }
    }
}

impl DiffReport {
    /// `(unchanged, improved, regressed, changed, added, removed)` counts.
    pub fn counts(&self) -> [usize; 6] {
        let mut c = [0usize; 6];
        for e in &self.entries {
            let i = match e.verdict {
                Verdict::Unchanged => 0,
                Verdict::Improved => 1,
                Verdict::Regressed => 2,
                Verdict::Changed => 3,
                Verdict::Added => 4,
                Verdict::Removed => 5,
            };
            c[i] += 1;
        }
        c
    }

    /// True when any path is not `Unchanged`.
    pub fn has_drift(&self) -> bool {
        self.entries.iter().any(|e| e.verdict != Verdict::Unchanged)
    }

    /// True when any numeric series regressed.
    pub fn has_regressions(&self) -> bool {
        self.entries.iter().any(|e| e.verdict == Verdict::Regressed)
    }

    /// The single overall verdict: `regressed` dominates, then
    /// `changed` (schema drift counts), then `improved`, else
    /// `unchanged`.
    pub fn overall(&self) -> Verdict {
        let [_, improved, regressed, changed, added, removed] = self.counts();
        if regressed > 0 {
            Verdict::Regressed
        } else if changed + added + removed > 0 {
            Verdict::Changed
        } else if improved > 0 {
            Verdict::Improved
        } else {
            Verdict::Unchanged
        }
    }

    /// A human-readable table of every drifted path (regressions first),
    /// capped at `max_rows` detail lines, with a one-line summary.
    pub fn human_table(&self, max_rows: usize) -> String {
        let mut out = String::new();
        let [unchanged, improved, regressed, changed, added, removed] = self.counts();
        let mut drifted: Vec<&DiffEntry> =
            self.entries.iter().filter(|e| e.verdict != Verdict::Unchanged).collect();
        drifted.sort_by_key(|e| match e.verdict {
            Verdict::Regressed => 0,
            Verdict::Improved => 1,
            Verdict::Changed => 2,
            Verdict::Added => 3,
            Verdict::Removed => 4,
            Verdict::Unchanged => 5,
        });
        for e in drifted.iter().take(max_rows) {
            let before = e.before.as_ref().map_or("-".to_string(), Value::to_string);
            let after = e.after.as_ref().map_or("-".to_string(), Value::to_string);
            let delta = e.rel_delta.map(|d| format!("  ({:+.1}%)", d * 100.0)).unwrap_or_default();
            let _ = writeln!(
                out,
                "  {:<9} {:<48} {before} -> {after}{delta}",
                e.verdict.as_str().to_uppercase(),
                e.path
            );
        }
        if drifted.len() > max_rows {
            let _ = writeln!(out, "  ... and {} more drifted paths", drifted.len() - max_rows);
        }
        let _ = writeln!(
            out,
            "verdict: {} ({} unchanged, {} improved, {} regressed, {} changed, {} added, {} removed)",
            self.overall().as_str(),
            unchanged,
            improved,
            regressed,
            changed,
            added,
            removed,
        );
        out
    }

    /// The machine verdict document CI archives: overall verdict,
    /// thresholds, counts, and every drifted path.
    pub fn to_json(&self, cfg: &DiffConfig) -> Value {
        let [unchanged, improved, regressed, changed, added, removed] = self.counts();
        let entries: Vec<Value> = self
            .entries
            .iter()
            .filter(|e| e.verdict != Verdict::Unchanged)
            .map(|e| {
                let mut fields = vec![
                    ("path".to_string(), Value::String(e.path.clone())),
                    ("verdict".to_string(), Value::String(e.verdict.as_str().to_string())),
                ];
                if let Some(b) = &e.before {
                    fields.push(("before".to_string(), b.clone()));
                }
                if let Some(a) = &e.after {
                    fields.push(("after".to_string(), a.clone()));
                }
                if let Some(d) = e.rel_delta {
                    if d.is_finite() {
                        fields.push(("rel_delta".to_string(), Value::Float(d)));
                    }
                }
                Value::Object(fields)
            })
            .collect();
        serde_json::json!({
            "verdict": self.overall().as_str(),
            "thresholds": serde_json::json!({
                "rel": Value::Float(cfg.rel_threshold),
                "abs": Value::Float(cfg.abs_epsilon),
            }),
            "counts": serde_json::json!({
                "unchanged": unchanged,
                "improved": improved,
                "regressed": regressed,
                "changed": changed,
                "added": added,
                "removed": removed,
            }),
            "entries": Value::Array(entries),
        })
    }
}

/// Parses and diffs two JSON texts.
pub fn diff_texts(before: &str, after: &str, cfg: &DiffConfig) -> Result<DiffReport, String> {
    let b = serde_json::from_str(before).map_err(|e| format!("before document: {e:?}"))?;
    let a = serde_json::from_str(after).map_err(|e| format!("after document: {e:?}"))?;
    Ok(diff_values(&b, &a, cfg))
}

/// Shared compare-CLI driver behind the `trace_diff` binary and
/// `ecgraph compare`. `args` is the raw argument list after the tool /
/// subcommand name: two paths plus optional `rel=`, `abs=`,
/// `out=verdict.json`, `--quiet`. Prints the human table (unless quiet)
/// and returns the process exit code: `0` no regressions, `3` at least
/// one regressed series, `1` unreadable input, `2` bad usage.
pub fn cli_run(tool: &str, args: &[String]) -> u8 {
    match cli_inner(tool, args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("{tool}: {e}");
            if e.starts_with("usage:") {
                2
            } else {
                1
            }
        }
    }
}

fn cli_inner(tool: &str, args: &[String]) -> Result<u8, String> {
    const MAX_TABLE_ROWS: usize = 100;
    let mut paths: Vec<&String> = Vec::new();
    let mut cfg = DiffConfig::default();
    let mut out_path: Option<&str> = None;
    let mut quiet = false;
    for arg in args {
        if arg == "--quiet" {
            quiet = true;
        } else if let Some(v) = arg.strip_prefix("rel=") {
            cfg.rel_threshold = v.parse().map_err(|e| format!("bad rel= threshold '{v}': {e}"))?;
        } else if let Some(v) = arg.strip_prefix("abs=") {
            cfg.abs_epsilon = v.parse().map_err(|e| format!("bad abs= epsilon '{v}': {e}"))?;
        } else if let Some(v) = arg.strip_prefix("out=") {
            out_path = Some(v);
        } else {
            paths.push(arg);
        }
    }
    let [before_path, after_path] = <[&String; 2]>::try_from(paths).map_err(|_| {
        format!(
            "usage: {tool} <before.json> <after.json> [rel=0.05] [abs=1e-9] \
             [out=verdict.json] [--quiet]"
        )
    })?;
    let before = std::fs::read_to_string(before_path)
        .map_err(|e| format!("{before_path}: read failed: {e}"))?;
    let after = std::fs::read_to_string(after_path)
        .map_err(|e| format!("{after_path}: read failed: {e}"))?;
    let report = diff_texts(&before, &after, &cfg)?;
    if !quiet {
        println!("{tool}: {before_path} -> {after_path}");
        print!("{}", report.human_table(MAX_TABLE_ROWS));
    }
    if let Some(out) = out_path {
        std::fs::write(out, report.to_json(&cfg).to_string())
            .map_err(|e| format!("{out}: write failed: {e}"))?;
        if !quiet {
            println!("wrote {out}");
        }
    }
    Ok(if report.has_regressions() { 3 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonck;

    const BEFORE: &str = r#"{"experiment":"x","compute_s_per_epoch":1.0,
        "speedup_vs_seq":2.0,"note":"a","epoch":[{"total_bytes":100}]}"#;

    #[test]
    fn self_diff_is_all_unchanged() {
        let r = diff_texts(BEFORE, BEFORE, &DiffConfig::default()).expect("parse");
        assert!(!r.has_drift());
        assert_eq!(r.overall(), Verdict::Unchanged);
        assert_eq!(r.counts()[0], r.entries.len());
        assert!(r.human_table(50).contains("verdict: unchanged"));
    }

    #[test]
    fn direction_aware_classification() {
        let after = r#"{"experiment":"x","compute_s_per_epoch":2.0,
            "speedup_vs_seq":1.0,"note":"a","epoch":[{"total_bytes":100}]}"#;
        let r = diff_texts(BEFORE, after, &DiffConfig::default()).expect("parse");
        let verdict_of = |p: &str| {
            r.entries.iter().find(|e| e.path == p).map(|e| e.verdict).expect("path present")
        };
        // compute seconds doubled: worse. speedup halved: worse.
        assert_eq!(verdict_of("compute_s_per_epoch"), Verdict::Regressed);
        assert_eq!(verdict_of("speedup_vs_seq"), Verdict::Regressed);
        assert_eq!(verdict_of("epoch[0].total_bytes"), Verdict::Unchanged);
        assert_eq!(r.overall(), Verdict::Regressed);
        assert!(r.has_regressions());
    }

    #[test]
    fn improvements_and_thresholds() {
        let after = r#"{"experiment":"x","compute_s_per_epoch":0.5,
            "speedup_vs_seq":2.05,"note":"a","epoch":[{"total_bytes":100}]}"#;
        let r = diff_texts(BEFORE, after, &DiffConfig::default()).expect("parse");
        let verdict_of = |p: &str| {
            r.entries.iter().find(|e| e.path == p).map(|e| e.verdict).expect("path present")
        };
        assert_eq!(verdict_of("compute_s_per_epoch"), Verdict::Improved);
        // +2.5 % speedup is inside the 5 % threshold.
        assert_eq!(verdict_of("speedup_vs_seq"), Verdict::Unchanged);
        assert_eq!(r.overall(), Verdict::Improved);
    }

    #[test]
    fn schema_drift_is_reported() {
        let after = r#"{"experiment":"y","compute_s_per_epoch":1.0,
            "speedup_vs_seq":2.0,"epoch":[{"total_bytes":100},{"total_bytes":90}],
            "extra":1}"#;
        let r = diff_texts(BEFORE, after, &DiffConfig::default()).expect("parse");
        let verdict_of = |p: &str| {
            r.entries.iter().find(|e| e.path == p).map(|e| e.verdict).expect("path present")
        };
        assert_eq!(verdict_of("experiment"), Verdict::Changed);
        assert_eq!(verdict_of("note"), Verdict::Removed);
        assert_eq!(verdict_of("extra"), Verdict::Added);
        // A whole added array element is reported at the element level.
        assert_eq!(verdict_of("epoch[1]"), Verdict::Added);
        assert_eq!(r.overall(), Verdict::Changed);
    }

    #[test]
    fn zero_base_series_use_the_absolute_floor() {
        let cfg = DiffConfig::default();
        let r = diff_texts(r#"{"recovery_s":0.0}"#, r#"{"recovery_s":0.0}"#, &cfg).expect("parse");
        assert!(!r.has_drift());
        let r = diff_texts(r#"{"recovery_s":0.0}"#, r#"{"recovery_s":1.0}"#, &cfg).expect("parse");
        assert!(r.has_regressions());
    }

    #[test]
    fn direction_heuristics() {
        assert_eq!(direction_of("epoch[0].comm_s"), Direction::LowerIsBetter);
        assert_eq!(direction_of("fetch_bytes"), Direction::LowerIsBetter);
        assert_eq!(direction_of("latency_p99_s"), Direction::LowerIsBetter);
        assert_eq!(direction_of("qps_total"), Direction::HigherIsBetter);
        assert_eq!(direction_of("best_test_acc"), Direction::HigherIsBetter);
        assert_eq!(direction_of("cache_hit_rate"), Direction::HigherIsBetter);
        assert_eq!(direction_of("workers"), Direction::Unknown);
    }

    #[test]
    fn metric_rows_classify_through_their_name_field() {
        // The metrics exporter emits anonymous `value` leaves next to a
        // `name` field; the name must drive both the path and direction.
        let before = r#"{"metrics":[
            {"name":"serve.latency_p99_s","kind":"gauge","labels":{"epoch":0},"value":1.0},
            {"name":"serve.qps","kind":"gauge","labels":{"epoch":0},"value":100.0}]}"#;
        let after = r#"{"metrics":[
            {"name":"serve.latency_p99_s","kind":"gauge","labels":{"epoch":0},"value":2.0},
            {"name":"serve.qps","kind":"gauge","labels":{"epoch":0},"value":200.0}]}"#;
        let r = diff_texts(before, after, &DiffConfig::default()).expect("parse");
        let verdict_of = |p: &str| {
            r.entries.iter().find(|e| e.path == p).map(|e| e.verdict).expect("path present")
        };
        assert_eq!(verdict_of("metrics[0].serve.latency_p99_s.value"), Verdict::Regressed);
        assert_eq!(verdict_of("metrics[1].serve.qps.value"), Verdict::Improved);
        // Identical documents still self-diff clean through the splice.
        assert!(!diff_texts(before, before, &DiffConfig::default()).expect("parse").has_drift());
    }

    #[test]
    fn machine_verdict_is_valid_json() {
        let cfg = DiffConfig::default();
        let after = r#"{"experiment":"x","compute_s_per_epoch":9.0,
            "speedup_vs_seq":2.0,"note":"a","epoch":[{"total_bytes":100}]}"#;
        let r = diff_texts(BEFORE, after, &cfg).expect("parse");
        let text = r.to_json(&cfg).to_string();
        jsonck::validate_json(&text).expect("valid JSON");
        assert!(text.starts_with(r#"{"verdict":"regressed""#));
        assert!(text.contains(r#""path":"compute_s_per_epoch","verdict":"regressed""#));
    }

    /// Builds a one-leaf doc on a lower-is-better path, so any hole in
    /// the degenerate-number guard would surface as Improved/Regressed.
    fn directed(v: f64) -> Value {
        Value::Object(vec![("compute_s_per_epoch".to_string(), Value::Float(v))])
    }

    fn verdict_between(b: f64, a: f64) -> (Verdict, Option<f64>) {
        let r = diff_values(&directed(b), &directed(a), &DiffConfig::default());
        assert_eq!(r.entries.len(), 1, "{:?}", r.entries);
        (r.entries[0].verdict, r.entries[0].rel_delta)
    }

    #[test]
    fn non_finite_and_subnormal_leaves_never_improve_or_regress() {
        const SUBNORMAL: f64 = 5e-324;
        // Without the guard, 1.0 → INF computes delta = INF > 0 on a
        // lower-is-better path and reads as Regressed; NaN deltas fail
        // every comparison and fall into the direction match too.
        for (b, a) in [
            (1.0, f64::NAN),
            (f64::NAN, 1.0),
            (f64::NAN, f64::NAN), // NaN != NaN: even self-compare is Changed
            (1.0, f64::INFINITY),
            (f64::INFINITY, 1.0),
            (f64::NEG_INFINITY, f64::INFINITY),
            (f64::INFINITY, f64::NEG_INFINITY),
            (1.0, SUBNORMAL),
            (SUBNORMAL, 2.0 * SUBNORMAL),
        ] {
            let (verdict, rel) = verdict_between(b, a);
            assert_eq!(verdict, Verdict::Changed, "({b}, {a})");
            assert_eq!(rel, None, "degenerate pairs report no relative delta ({b}, {a})");
        }
        // Exact equality (covers equal infinities and bit-equal
        // subnormals) stays Unchanged so self-comparison of a document
        // with infinite leaves does not report drift.
        for v in [f64::INFINITY, f64::NEG_INFINITY, SUBNORMAL] {
            assert_eq!(verdict_between(v, v).0, Verdict::Unchanged, "{v}");
        }
    }

    /// Deterministic splitmix64 for the random-document generator.
    fn next_u64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Random JSON document biased toward the numeric edge cases and
    /// direction-carrying key names.
    fn random_doc(state: &mut u64, depth: usize) -> Value {
        const FLOATS: &[f64] = &[
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            5e-324, // subnormal
            0.0,
            -0.0,
            1.0,
            -3.25,
            1e308,
            1e-12,
        ];
        const KEYS: &[&str] =
            &["compute_s_per_epoch", "speedup_vs_seq", "total_bytes", "loss", "value", "slot"];
        match next_u64(state) % if depth == 0 { 5 } else { 7 } {
            0 => Value::Null,
            1 => Value::Bool(next_u64(state).is_multiple_of(2)),
            2 => Value::Int(next_u64(state) as i64 % 1000),
            3 => Value::Float(FLOATS[next_u64(state) as usize % FLOATS.len()]),
            4 => Value::String(format!("s{}", next_u64(state) % 4)),
            5 => {
                let n = next_u64(state) as usize % 3;
                Value::Array((0..n).map(|_| random_doc(state, depth - 1)).collect())
            }
            _ => {
                let n = next_u64(state) as usize % 4;
                Value::Object(
                    (0..n)
                        .map(|i| {
                            let key = KEYS[(next_u64(state) as usize + i) % KEYS.len()];
                            (key.to_string(), random_doc(state, depth - 1))
                        })
                        .collect(),
                )
            }
        }
    }

    fn is_degenerate_leaf(v: &Option<Value>) -> bool {
        matches!(v, Some(Value::Float(x)) if !x.is_finite() || (*x != 0.0 && !x.is_normal()))
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(256))]
        /// Over random documents (seeded, shim proptest): diffing never
        /// panics, and no leaf touching a NaN/±Inf/subnormal value ever
        /// classifies as Improved or Regressed.
        #[test]
        fn random_documents_never_misclassify_degenerate_numbers(seed in proptest::any::<u64>()) {
            let mut s = seed;
            let before = random_doc(&mut s, 3);
            let after = if next_u64(&mut s).is_multiple_of(4) {
                before.clone() // exercise self-comparison too
            } else {
                random_doc(&mut s, 3)
            };
            let report = diff_values(&before, &after, &DiffConfig::default());
            for e in &report.entries {
                if is_degenerate_leaf(&e.before) || is_degenerate_leaf(&e.after) {
                    proptest::prop_assert!(
                        !matches!(e.verdict, Verdict::Improved | Verdict::Regressed),
                        "degenerate leaf classified directionally: {e:?}"
                    );
                    proptest::prop_assert!(
                        e.rel_delta.is_none(),
                        "degenerate leaf reported a relative delta: {e:?}"
                    );
                }
            }
            // The report must also serialize without panicking.
            let _ = report.to_json(&DiffConfig::default()).to_string();
        }
    }
}
