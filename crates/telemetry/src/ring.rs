//! Fixed-capacity span rings.
//!
//! Each track records into its own [`SpanRing`]: a preallocated circular
//! buffer that overwrites the oldest event when full and counts what it
//! dropped. Recording never allocates after the first `capacity` pushes
//! and never panics — this file is inside `ec-lint`'s `no-panic-hot-path`
//! scope.

use crate::span::SpanEvent;

/// A circular buffer of spans with drop accounting.
#[derive(Clone, Debug)]
pub struct SpanRing {
    buf: Vec<SpanEvent>,
    cap: usize,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
}

impl SpanRing {
    /// An empty ring retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self { buf: Vec::new(), cap, head: 0, dropped: 0 }
    }

    /// Records one span, overwriting the oldest when full.
    pub fn push(&mut self, ev: SpanEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else if let Some(slot) = self.buf.get_mut(self.head) {
            *slot = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was removed).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> + '_ {
        let n = self.buf.len();
        (0..n).filter_map(move |i| self.buf.get((self.head + i) % n.max(1)))
    }

    /// Drops every retained event whose `epoch` is `>= epoch` (crash
    /// rollback: the epochs after a restored checkpoint will be replayed
    /// and re-recorded). Events without an epoch (`epoch < 0`) survive.
    pub fn discard_from_epoch(&mut self, epoch: i64) {
        let kept: Vec<SpanEvent> =
            self.iter().filter(|ev| ev.epoch < 0 || ev.epoch < epoch).copied().collect();
        self.buf = kept;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, epoch: i64) -> SpanEvent {
        let mut e = SpanEvent::new(name, "fp", 0, 0.0, 1.0);
        e.epoch = epoch;
        e
    }

    #[test]
    fn keeps_insertion_order_below_capacity() {
        let mut r = SpanRing::new(4);
        for (i, n) in ["a", "b", "c"].iter().enumerate() {
            r.push(ev(n, i as i64));
        }
        let names: Vec<&str> = r.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut r = SpanRing::new(2);
        r.push(ev("a", 0));
        r.push(ev("b", 1));
        r.push(ev("c", 2));
        let names: Vec<&str> = r.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c"]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn discard_from_epoch_removes_replayed_spans() {
        let mut r = SpanRing::new(8);
        r.push(ev("a", 0));
        r.push(ev("b", 1));
        r.push(ev("host", -1));
        r.push(ev("c", 2));
        r.discard_from_epoch(1);
        let names: Vec<&str> = r.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a", "host"]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = SpanRing::new(0);
        r.push(ev("a", 0));
        r.push(ev("b", 1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().map(|e| e.name), Some("b"));
    }
}
