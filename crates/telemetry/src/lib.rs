//! # `ec-trace` — deterministic observability for the simulated cluster
//!
//! The paper's whole argument rests on internals the per-epoch run report
//! cannot show: which candidate the Selector picks per vertex, how the
//! Bit-Tuner walks `B` through `{1, 2, 4, 8, 16}`, and whether the ResEC
//! residual norm stays inside the Theorem 1 bound. This crate makes those
//! internals visible without perturbing them:
//!
//! * [`span`] — a lightweight span model ([`SpanEvent`] is `Copy`, names
//!   are `&'static str`, recording allocates nothing) placed on a fixed
//!   track layout (one per simulated worker, plus network/engine/host);
//! * [`ring`] — fixed-capacity per-track ring buffers that overwrite the
//!   oldest event under pressure and count what they dropped;
//! * [`registry`] — a static catalog of typed counters / gauges /
//!   histograms keyed by `(metric, labels)` in a `BTreeMap`, so every walk
//!   over recorded metrics is deterministic;
//! * [`sink`] — [`TelemetrySink`], the single recording facade the engine
//!   owns, gated by [`TelemetryLevel`];
//! * [`report`] — [`TelemetryReport`], the immutable snapshot attached to
//!   a finished run;
//! * [`export`] — Chrome `trace_event` JSON (loadable in
//!   `chrome://tracing` / Perfetto), a flat JSONL event log, and a
//!   standalone metrics JSON;
//! * [`timeline`] — compute / comm-serialize / comm-wire / idle-wait
//!   attribution over the span stream, with a flamegraph-compatible
//!   folded-stack export and the overlap-headroom figure the async
//!   engine refactor must beat;
//! * [`diff`] — structural cross-run diffing of metrics/bench JSON with
//!   improved/regressed/unchanged classification (the `trace_diff` bin
//!   and `ecgraph compare`);
//! * [`jsonck`] — a dependency-free JSON *syntax* validator that checks
//!   exported documents without building a value tree, used by the
//!   `trace_check` bin and the exporter tests.
//!
//! ## Determinism contract
//!
//! Trace timestamps are **simulated seconds** (the same modeled clock the
//! run report is built from), never the host clock. Host-measured spans
//! (the `span!` macro, preprocessing) go through the sanctioned
//! [`ec_comm::HostTimer`], which reports zero under deterministic timing —
//! so under `ec_comm::set_deterministic_timing(true)` two identical runs
//! export byte-identical traces, whatever the thread counts. Recording is
//! observation only: no training decision may read telemetry state, and
//! `tests/determinism_suite.rs` proves the run report is byte-identical
//! with telemetry [`TelemetryLevel::Off`] vs [`TelemetryLevel::Trace`].

use serde::{Deserialize, Serialize};

pub mod diff;
pub mod export;
pub mod jsonck;
pub mod registry;
pub mod report;
pub mod ring;
pub mod sink;
pub mod span;
pub mod timeline;

pub use registry::{Labels, MetricId, MetricKind, MetricValue, L_NONE};
pub use report::{MetricRow, TelemetryReport};
pub use sink::TelemetrySink;
pub use span::{SpanEvent, TrackLayout, NO_INDEX};

/// Not part of the public API: support machinery for the [`span!`] macro.
#[doc(hidden)]
pub mod __private {
    pub use ec_comm::HostTimer;
}

/// How much the telemetry layer records. Levels are cumulative: each one
/// records everything the previous level does.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TelemetryLevel {
    /// Record nothing; every instrumentation site reduces to one enum
    /// compare (the default).
    #[default]
    Off,
    /// Per-epoch metrics: Selector decisions, Bit-Tuner trajectory, ResEC
    /// residual norms vs the Theorem 1 bound, link traffic matrix, fault
    /// events, phase timings, wire-size histograms.
    Epoch,
    /// Adds per-superstep comm/compute timing rows and host-measured
    /// pack/unpack phase accounting.
    Superstep,
    /// Adds span events on the per-track ring buffers (Chrome-trace /
    /// JSONL export).
    Trace,
}

impl TelemetryLevel {
    /// Canonical lower-case name (CLI `telemetry=` values).
    pub fn as_str(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Epoch => "epoch",
            TelemetryLevel::Superstep => "superstep",
            TelemetryLevel::Trace => "trace",
        }
    }
}

impl std::str::FromStr for TelemetryLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TelemetryLevel::Off),
            "epoch" => Ok(TelemetryLevel::Epoch),
            "superstep" => Ok(TelemetryLevel::Superstep),
            "trace" => Ok(TelemetryLevel::Trace),
            other => Err(format!("unknown telemetry level '{other}' (off|epoch|superstep|trace)")),
        }
    }
}

/// Telemetry knobs carried on the training configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Recording level; [`TelemetryLevel::Off`] by default.
    pub level: TelemetryLevel,
    /// Span-ring capacity per track at [`TelemetryLevel::Trace`]
    /// (`0` = the default of 65 536 events). When a ring fills, the oldest
    /// events are overwritten and counted as dropped.
    pub ring_capacity: usize,
}

impl TelemetryConfig {
    /// Default ring capacity per track.
    pub const DEFAULT_RING_CAPACITY: usize = 65_536;

    /// Convenience constructor for a given level with default capacity.
    pub fn at(level: TelemetryLevel) -> Self {
        Self { level, ring_capacity: 0 }
    }

    /// The ring capacity with the `0 = default` convention resolved.
    pub fn resolved_ring_capacity(&self) -> usize {
        if self.ring_capacity == 0 {
            Self::DEFAULT_RING_CAPACITY
        } else {
            self.ring_capacity
        }
    }
}

/// Times `$body` with the sanctioned host clock and records it as a span
/// on the sink's host track (a no-op below [`TelemetryLevel::Trace`]).
///
/// The field block accepts any subset of `epoch` / `layer` / `superstep` /
/// `worker`:
///
/// ```
/// use ec_trace::{span, TelemetryConfig, TelemetryLevel, TelemetrySink};
/// let mut sink = TelemetrySink::new(&TelemetryConfig::at(TelemetryLevel::Trace), 2);
/// let value = span!(sink, "preprocess:partition", { epoch: 0, worker: 1 }, {
///     21 * 2
/// });
/// assert_eq!(value, 42);
/// ```
///
/// Host spans live on their own wall-clock timeline (accumulated from the
/// start of the run); under deterministic timing they are zero-width, so
/// traces stay byte-identical.
#[macro_export]
macro_rules! span {
    ($sink:expr, $name:expr, { $($field:ident : $val:expr),* $(,)? }, $body:expr) => {{
        if $sink.enabled($crate::TelemetryLevel::Trace) {
            let __ec_trace_timer = $crate::__private::HostTimer::start();
            let __ec_trace_out = $body;
            #[allow(unused_mut)]
            let mut __ec_trace_ev =
                $crate::SpanEvent::host($name, __ec_trace_timer.elapsed_s());
            $( __ec_trace_ev.$field = ($val) as i64; )*
            $sink.push_host_span(__ec_trace_ev);
            __ec_trace_out
        } else {
            $body
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_cumulative() {
        assert!(TelemetryLevel::Off < TelemetryLevel::Epoch);
        assert!(TelemetryLevel::Epoch < TelemetryLevel::Superstep);
        assert!(TelemetryLevel::Superstep < TelemetryLevel::Trace);
    }

    #[test]
    fn level_parses_round_trip() {
        for l in [
            TelemetryLevel::Off,
            TelemetryLevel::Epoch,
            TelemetryLevel::Superstep,
            TelemetryLevel::Trace,
        ] {
            assert_eq!(l.as_str().parse::<TelemetryLevel>(), Ok(l));
        }
        assert!("verbose".parse::<TelemetryLevel>().is_err());
    }

    #[test]
    fn config_resolves_ring_capacity() {
        assert_eq!(
            TelemetryConfig::default().resolved_ring_capacity(),
            TelemetryConfig::DEFAULT_RING_CAPACITY
        );
        let c = TelemetryConfig { ring_capacity: 8, ..TelemetryConfig::default() };
        assert_eq!(c.resolved_ring_capacity(), 8);
    }

    #[test]
    fn span_macro_records_at_trace_and_passes_value_through() {
        let mut sink = TelemetrySink::new(&TelemetryConfig::at(TelemetryLevel::Trace), 2);
        let v = span!(sink, "unit:work", { epoch: 3, layer: 1 }, 6 * 7);
        assert_eq!(v, 42);
        let report = sink.report();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "unit:work");
        assert_eq!(report.spans[0].epoch, 3);
        assert_eq!(report.spans[0].layer, 1);
        assert_eq!(report.spans[0].worker, NO_INDEX);

        let mut off = TelemetrySink::new(&TelemetryConfig::default(), 2);
        let v = span!(off, "unit:work", {}, 1 + 1);
        assert_eq!(v, 2);
        assert!(off.report().spans.is_empty());
    }
}
