//! Timeline attribution: where did the simulated time actually go?
//!
//! The span stream already records *what* happened; this module folds it
//! into *accounting* — per-track totals split into four buckets:
//!
//! * **compute** — worker compute blocks (`*:compute`, `*:pull`);
//! * **comm-serialize** — host-measured pack/unpack of wire messages
//!   (cat `"pack"`);
//! * **comm-wire** — modeled transfer time on the network track
//!   (`*:exchange`, `*:push`, `*:fetch`);
//! * **idle-wait** — time a worker spent blocked on the superstep
//!   barrier while a slower peer finished (cat `"idle"`).
//!
//! The idle total across worker tracks is the **overlap headroom**: the
//! simulated seconds an async engine with comm/compute overlap could
//! reclaim without changing any result. That number is the published
//! baseline the ROADMAP's async-superstep refactor must beat.
//!
//! Everything here is a pure function of the [`TelemetryReport`], so the
//! derived profiles inherit the report's byte-identity guarantees. Two
//! exports render the attribution: [`folded_stacks`] (the
//! flamegraph-compatible `frame;frame count` text format, counts in
//! microseconds) and [`timeline_json`] (machine-readable buckets +
//! per-phase self-time profile).

use crate::registry::MetricValue;
use crate::report::TelemetryReport;
use crate::span::SpanEvent;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// The four attribution buckets of one track (simulated seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeBuckets {
    /// Worker compute blocks.
    pub compute_s: f64,
    /// Host-measured message pack/unpack (serialization).
    pub comm_serialize_s: f64,
    /// Modeled wire transfer time.
    pub comm_wire_s: f64,
    /// Barrier idle-wait (reclaimable by an async engine).
    pub idle_s: f64,
}

impl TimeBuckets {
    /// Sum over all four buckets.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_serialize_s + self.comm_wire_s + self.idle_s
    }

    fn accumulate(&mut self, other: &TimeBuckets) {
        self.compute_s += other.compute_s;
        self.comm_serialize_s += other.comm_serialize_s;
        self.comm_wire_s += other.comm_wire_s;
        self.idle_s += other.idle_s;
    }
}

/// Which bucket one span contributes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bucket {
    /// Worker compute.
    Compute,
    /// Message pack/unpack.
    CommSerialize,
    /// Modeled wire time.
    CommWire,
    /// Barrier idle-wait.
    Idle,
}

/// Classifies a span by the recording conventions of the engine and the
/// serving path. Umbrella spans (the per-epoch engine span, host-side
/// preprocessing) return `None`: they aggregate other spans and would
/// double-count.
pub fn bucket_of(ev: &SpanEvent) -> Option<Bucket> {
    match ev.cat {
        "idle" => return Some(Bucket::Idle),
        "pack" => return Some(Bucket::CommSerialize),
        _ => {}
    }
    if ev.name.ends_with(":exchange") || ev.name.ends_with(":push") || ev.name.ends_with(":fetch") {
        return Some(Bucket::CommWire);
    }
    if ev.name.ends_with(":compute") || ev.name.ends_with(":pull") {
        return Some(Bucket::Compute);
    }
    None
}

/// Bucket totals of one track.
#[derive(Clone, Debug, PartialEq)]
pub struct TrackTimeline {
    /// Track index (Chrome `tid`).
    pub track: u32,
    /// Track name from the report layout.
    pub name: String,
    /// Attributed seconds.
    pub buckets: TimeBuckets,
}

/// Self-time of one span phase (all spans sharing a name).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    /// Span category (`"fp"`, `"bp"`, `"serve"`, …).
    pub cat: &'static str,
    /// Span name (`"fp:compute"`, …).
    pub name: &'static str,
    /// Number of spans.
    pub count: u64,
    /// Summed duration in simulated seconds.
    pub total_s: f64,
}

/// The full attribution of one report.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Per-track bucket totals, ascending track index, tracks with no
    /// attributed time omitted.
    pub tracks: Vec<TrackTimeline>,
    /// Per-phase self-time profile in `(cat, name)` order.
    pub phases: Vec<PhaseRow>,
    /// Bucket totals over every track.
    pub total: TimeBuckets,
    /// Idle-wait seconds across worker tracks — what an async engine
    /// could reclaim. Falls back to the recorded
    /// `timeline.overlap_headroom_s` gauges when the span stream is
    /// empty (levels below `Trace`), so the figure survives ring drops.
    pub overlap_headroom_s: f64,
}

/// Folds the report's spans into per-track buckets and a per-phase
/// self-time profile.
pub fn attribute(report: &TelemetryReport) -> Timeline {
    let mut per_track: BTreeMap<u32, TimeBuckets> = BTreeMap::new();
    let mut per_phase: BTreeMap<(&'static str, &'static str), (u64, f64)> = BTreeMap::new();
    let mut total = TimeBuckets::default();
    for ev in &report.spans {
        let entry = per_phase.entry((ev.cat, ev.name)).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += ev.dur_s;
        let Some(bucket) = bucket_of(ev) else { continue };
        let b = per_track.entry(ev.track).or_default();
        match bucket {
            Bucket::Compute => b.compute_s += ev.dur_s,
            Bucket::CommSerialize => b.comm_serialize_s += ev.dur_s,
            Bucket::CommWire => b.comm_wire_s += ev.dur_s,
            Bucket::Idle => b.idle_s += ev.dur_s,
        }
    }
    for b in per_track.values() {
        total.accumulate(b);
    }
    let span_idle = total.idle_s;
    // Below Trace there are no spans; the per-epoch headroom gauges
    // recorded by the engine still carry the figure.
    let gauge_idle: f64 = report
        .rows_named("timeline.overlap_headroom_s")
        .map(|r| match r.value {
            MetricValue::Gauge(v) => v,
            _ => 0.0,
        })
        .sum();
    let tracks = per_track
        .into_iter()
        .map(|(track, buckets)| TrackTimeline {
            track,
            name: report
                .tracks
                .get(track as usize)
                .cloned()
                .unwrap_or_else(|| format!("track {track}")),
            buckets,
        })
        .collect();
    let phases = per_phase
        .into_iter()
        .map(|((cat, name), (count, total_s))| PhaseRow { cat, name, count, total_s })
        .collect();
    Timeline {
        tracks,
        phases,
        total,
        overlap_headroom_s: if span_idle > 0.0 { span_idle } else { gauge_idle },
    }
}

/// Microsecond count for the folded-stack export (rounded, min 0).
fn folded_micros(secs: f64) -> u64 {
    if secs.is_finite() && secs > 0.0 {
        (secs * 1e6).round() as u64
    } else {
        0
    }
}

/// Renders the span stream in the folded-stack text format flamegraph
/// tools consume: one `track;cat;name count` line per distinct stack,
/// counts in microseconds, lines in deterministic (track, cat, name)
/// order. Zero-duration stacks (everything, under deterministic timing
/// with no modeled comm) are kept with count 0 so the stack *structure*
/// is still visible and byte-identical.
pub fn folded_stacks(report: &TelemetryReport) -> String {
    let mut stacks: BTreeMap<(u32, &'static str, &'static str), f64> = BTreeMap::new();
    for ev in &report.spans {
        *stacks.entry((ev.track, ev.cat, ev.name)).or_insert(0.0) += ev.dur_s;
    }
    let mut out = String::new();
    for ((track, cat, name), secs) in stacks {
        let tname =
            report.tracks.get(track as usize).cloned().unwrap_or_else(|| format!("track {track}"));
        out.push_str(&format!("{tname};{cat};{name} {}\n", folded_micros(secs)));
    }
    out
}

fn buckets_value(b: &TimeBuckets) -> Value {
    json!({
        "compute_s": Value::Float(b.compute_s),
        "comm_serialize_s": Value::Float(b.comm_serialize_s),
        "comm_wire_s": Value::Float(b.comm_wire_s),
        "idle_s": Value::Float(b.idle_s),
    })
}

/// Renders the attribution as a standalone JSON document: run level,
/// overall and per-track buckets, the overlap-headroom figure, and the
/// per-phase self-time profile.
pub fn timeline_json(report: &TelemetryReport) -> String {
    let t = attribute(report);
    let tracks: Vec<Value> = t
        .tracks
        .iter()
        .map(|tr| {
            let mut v = buckets_value(&tr.buckets);
            if let Value::Object(fields) = &mut v {
                fields.insert(0, ("track".to_string(), json!(tr.track)));
                fields.insert(1, ("name".to_string(), json!(tr.name.clone())));
            }
            v
        })
        .collect();
    let phases: Vec<Value> = t
        .phases
        .iter()
        .map(|p| {
            json!({
                "cat": p.cat,
                "name": p.name,
                "count": p.count,
                "total_s": Value::Float(p.total_s),
            })
        })
        .collect();
    json!({
        "level": report.level.as_str(),
        "overlap_headroom_s": Value::Float(t.overlap_headroom_s),
        "total": buckets_value(&t.total),
        "tracks": Value::Array(tracks),
        "phases": Value::Array(phases),
    })
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonck;
    use crate::registry::{labels, MetricId};
    use crate::sink::TelemetrySink;
    use crate::{TelemetryConfig, TelemetryLevel};

    fn sample_report() -> TelemetryReport {
        let mut s = TelemetrySink::new(&TelemetryConfig::at(TelemetryLevel::Trace), 2);
        let net = s.layout().network();
        s.span(SpanEvent::new("fp:compute", "fp", 0, 0.0, 0.25).at_epoch(0).at_worker(0));
        s.span(SpanEvent::new("fp:compute", "fp", 1, 0.0, 0.10).at_epoch(0).at_worker(1));
        s.span(SpanEvent::new("idle:wait", "idle", 1, 0.10, 0.15).at_epoch(0).at_worker(1));
        s.span(SpanEvent::new("comm:pack", "pack", 0, 0.25, 0.02).at_epoch(0).at_worker(0));
        s.span(SpanEvent::new("fp:exchange", "fp", net, 0.25, 0.5).at_epoch(0).at_superstep(0));
        s.set(MetricId::TimelineHeadroomS, labels(&[0]), 0.15);
        s.report()
    }

    #[test]
    fn buckets_attribute_by_span_convention() {
        let t = attribute(&sample_report());
        assert!((t.total.compute_s - 0.35).abs() < 1e-12);
        assert!((t.total.comm_serialize_s - 0.02).abs() < 1e-12);
        assert!((t.total.comm_wire_s - 0.5).abs() < 1e-12);
        assert!((t.total.idle_s - 0.15).abs() < 1e-12);
        assert!((t.overlap_headroom_s - 0.15).abs() < 1e-12);
        // Worker 1: compute 0.10, idle 0.15.
        let w1 = t.tracks.iter().find(|tr| tr.track == 1).expect("worker 1 present");
        assert!((w1.buckets.compute_s - 0.10).abs() < 1e-12);
        assert!((w1.buckets.idle_s - 0.15).abs() < 1e-12);
        assert_eq!(w1.name, "worker 1");
    }

    #[test]
    fn umbrella_spans_do_not_double_count() {
        let mut s = TelemetrySink::new(&TelemetryConfig::at(TelemetryLevel::Trace), 1);
        let engine = s.layout().engine();
        s.span(SpanEvent::new("epoch", "engine", engine, 0.0, 10.0).at_epoch(0));
        s.span(SpanEvent::new("fp:compute", "fp", 0, 0.0, 1.0).at_epoch(0).at_worker(0));
        let t = attribute(&s.report());
        assert!((t.total.total_s() - 1.0).abs() < 1e-12);
        // ... but the umbrella still shows up in the phase profile.
        assert!(t.phases.iter().any(|p| p.name == "epoch"));
    }

    #[test]
    fn headroom_falls_back_to_gauges_below_trace() {
        let mut s = TelemetrySink::new(&TelemetryConfig::at(TelemetryLevel::Epoch), 2);
        s.set(MetricId::TimelineHeadroomS, labels(&[0]), 0.25);
        s.set(MetricId::TimelineHeadroomS, labels(&[1]), 0.50);
        let t = attribute(&s.report());
        assert!((t.overlap_headroom_s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn folded_stacks_are_flamegraph_lines_in_deterministic_order() {
        let text = folded_stacks(&sample_report());
        let expected = "worker 0;fp;fp:compute 250000\n\
                        worker 0;pack;comm:pack 20000\n\
                        worker 1;fp;fp:compute 100000\n\
                        worker 1;idle;idle:wait 150000\n\
                        network;fp;fp:exchange 500000\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn timeline_json_validates_and_carries_headroom() {
        let text = timeline_json(&sample_report());
        jsonck::validate_json(&text).expect("valid JSON");
        assert!(text.starts_with(r#"{"level":"trace","overlap_headroom_s":0.15"#));
        assert!(text.contains(r#""name":"worker 1""#));
        assert!(text.contains(r#""cat":"idle","name":"idle:wait","count":1"#));
    }

    #[test]
    fn empty_report_exports_cleanly() {
        let rep = TelemetrySink::new(&TelemetryConfig::default(), 1).report();
        assert!(folded_stacks(&rep).is_empty());
        jsonck::validate_json(&timeline_json(&rep)).expect("valid JSON");
        let t = attribute(&rep);
        assert_eq!(t.total, TimeBuckets::default());
        assert_eq!(t.overlap_headroom_s, 0.0);
    }
}
