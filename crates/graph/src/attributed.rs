//! Attributed graphs: structure + features + labels + splits.
//!
//! This is the `𝒢 = ⟨𝒱, ℰ, X_𝒱⟩` of the paper plus the semi-supervised
//! vertex-classification labelling (`y`, train/val/test split) every
//! experiment in Section V uses.

use crate::csr::Graph;
use ec_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Index sets for semi-supervised training.
///
/// The paper reports dataset-specific split sizes (Table III discussion);
/// [`Split::by_fraction`] builds a deterministic split with the same
/// proportions.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Vertices whose labels drive the loss.
    pub train: Vec<usize>,
    /// Vertices used for early stopping / model selection.
    pub val: Vec<usize>,
    /// Held-out vertices for the reported accuracy.
    pub test: Vec<usize>,
}

impl Split {
    /// Deterministically splits `0..n` into train/val/test by fractions.
    ///
    /// Vertices are assigned in a fixed interleaved order (stride pattern)
    /// so that every partition of the graph receives a proportional share
    /// of each subset — mirroring how the public splits scatter labelled
    /// vertices across the whole graph.
    ///
    /// # Panics
    /// Panics if `train_frac + val_frac > 1.0`.
    pub fn by_fraction(n: usize, train_frac: f64, val_frac: f64) -> Self {
        assert!(
            train_frac >= 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0,
            "invalid split fractions"
        );
        let mut split = Split::default();
        // Spread assignment with a multiplicative hash walk for determinism
        // without clustering low ids into one subset.
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_val = (n as f64 * val_frac).round() as usize;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&v| {
            (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
        });
        for (i, &v) in order.iter().enumerate() {
            if i < n_train {
                split.train.push(v);
            } else if i < n_train + n_val {
                split.val.push(v);
            } else {
                split.test.push(v);
            }
        }
        split.train.sort_unstable();
        split.val.sort_unstable();
        split.test.sort_unstable();
        split
    }

    /// Total number of vertices covered by the split.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True when no vertex is assigned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks that the three subsets are disjoint and within `0..n`.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let mut seen = vec![false; n];
        for (name, set) in [("train", &self.train), ("val", &self.val), ("test", &self.test)] {
            for &v in set {
                if v >= n {
                    return Err(format!("{name} vertex {v} out of bounds"));
                }
                if seen[v] {
                    return Err(format!("vertex {v} in multiple subsets"));
                }
                seen[v] = true;
            }
        }
        Ok(())
    }
}

/// A vertex-attributed, vertex-labelled graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttributedGraph {
    /// Undirected structure.
    pub graph: Graph,
    /// `|V| × d₀` feature matrix (`X_𝒱`, the layer-0 embeddings `H⁰`).
    pub features: Matrix,
    /// Ground-truth class per vertex.
    pub labels: Vec<u32>,
    /// Number of distinct classes.
    pub num_classes: usize,
    /// Train/val/test assignment.
    pub split: Split,
    /// Human-readable name (e.g. `"cora-replica"`).
    pub name: String,
}

impl AttributedGraph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Input feature dimensionality `d₀`.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Checks cross-field consistency (shapes, label range, split bounds).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.features.rows() != n {
            return Err(format!("feature rows {} != vertices {n}", self.features.rows()));
        }
        if self.labels.len() != n {
            return Err(format!("labels {} != vertices {n}", self.labels.len()));
        }
        if let Some(&bad) = self.labels.iter().find(|&&c| c as usize >= self.num_classes) {
            return Err(format!("label {bad} >= num_classes {}", self.num_classes));
        }
        self.split.validate(n)?;
        self.graph.validate()
    }

    /// Fraction of edges whose endpoints share a label (edge homophily).
    ///
    /// The replicas target the homophily regimes of the originals: citation
    /// graphs ≈ 0.8, Reddit ≈ 0.76, OGBN products ≈ 0.81.
    pub fn edge_homophily(&self) -> f64 {
        let mut same = 0usize;
        let mut total = 0usize;
        for (u, v) in self.graph.edges() {
            total += 1;
            if self.labels[u as usize] == self.labels[v as usize] {
                same += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            same as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AttributedGraph {
        let graph = Graph::from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        AttributedGraph {
            graph,
            features: Matrix::zeros(4, 3),
            labels: vec![0, 0, 1, 1],
            num_classes: 2,
            split: Split::by_fraction(4, 0.5, 0.25),
            name: "tiny".into(),
        }
    }

    #[test]
    fn split_fractions_respected() {
        let s = Split::by_fraction(100, 0.6, 0.2);
        assert_eq!(s.train.len(), 60);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 20);
        assert!(s.validate(100).is_ok());
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(Split::by_fraction(50, 0.5, 0.2), Split::by_fraction(50, 0.5, 0.2));
    }

    #[test]
    fn split_covers_all_vertices() {
        let s = Split::by_fraction(37, 0.4, 0.3);
        assert_eq!(s.len(), 37);
    }

    #[test]
    fn split_validate_catches_overlap() {
        let s = Split { train: vec![1], val: vec![1], test: vec![] };
        assert!(s.validate(5).is_err());
    }

    #[test]
    fn split_validate_catches_out_of_bounds() {
        let s = Split { train: vec![9], val: vec![], test: vec![] };
        assert!(s.validate(5).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid split fractions")]
    fn split_rejects_fractions_over_one() {
        let _ = Split::by_fraction(10, 0.8, 0.5);
    }

    #[test]
    fn attributed_graph_validates() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_label() {
        let mut g = tiny();
        g.labels[0] = 7;
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_shape_mismatch() {
        let mut g = tiny();
        g.features = Matrix::zeros(3, 3);
        assert!(g.validate().is_err());
    }

    #[test]
    fn homophily_of_tiny() {
        // edges: (0,1) same class, (2,3) same class, (1,2) differ => 2/3
        let h = tiny().edge_homophily();
        assert!((h - 2.0 / 3.0).abs() < 1e-9);
    }
}
