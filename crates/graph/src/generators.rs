//! Seeded synthetic graph generators.
//!
//! The reproduction cannot ship the paper's datasets, so the replicas in
//! [`crate::datasets`] are built from these generators. All generators are
//! deterministic in their seed and run in `O(edges)` expected time, which is
//! what makes the scaled Reddit replica (average degree ≈ 492) practical.

use crate::csr::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// G(n, m)-style Erdős–Rényi graph: `m` distinct undirected edges sampled
/// uniformly at random.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_edges, "requested {m} edges but only {max_edges} possible");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while edges.len() < m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push(key);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_per_vertex` existing vertices with probability proportional to degree.
///
/// Produces the heavy-tailed degree distributions typical of citation and
/// social graphs.
pub fn barabasi_albert(n: usize, m_per_vertex: usize, seed: u64) -> Graph {
    assert!(m_per_vertex >= 1, "attachment count must be positive");
    assert!(n > m_per_vertex, "need more vertices than the attachment count");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m_per_vertex);
    // `targets` holds one entry per edge endpoint: sampling uniformly from it
    // is sampling proportional to degree.
    let mut targets: Vec<u32> = (0..m_per_vertex as u32).collect();
    for v in m_per_vertex..n {
        let mut chosen = std::collections::HashSet::new();
        while chosen.len() < m_per_vertex {
            let t = targets[rng.gen_range(0..targets.len())];
            chosen.insert(t);
        }
        // Attach in sorted order: HashSet iteration order differs between
        // processes, and `targets` grows as edges land, so an unordered walk
        // here would make the whole graph differ from run to run.
        let mut picked: Vec<u32> = chosen.into_iter().collect();
        picked.sort_unstable();
        for t in picked {
            edges.push((v as u32, t));
            targets.push(v as u32);
            targets.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

/// R-MAT (recursive matrix) generator — the generator behind Graph500 and a
/// standard stand-in for web-scale power-law graphs such as OGBN-Papers.
///
/// `scale` gives `n = 2^scale` vertices; `edge_factor` edges are sampled per
/// vertex with quadrant probabilities `(a, b, c, 1-a-b-c)`.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!(a + b + c < 1.0 + 1e-9, "quadrant probabilities exceed 1");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            edges.push((u as u32, v as u32));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Stochastic block model over explicit class labels: every vertex draws
/// `degree/2` neighbours, each intra-class with probability `homophily`,
/// otherwise uniform over all vertices.
///
/// This is the workhorse behind the dataset replicas: it plants exactly the
/// label-correlated structure a GCN learns from, at any average degree, in
/// `O(n · degree)` time.
pub fn planted_partition(
    labels: &[u32],
    num_classes: usize,
    avg_degree: f64,
    homophily: f64,
    seed: u64,
) -> Graph {
    assert!((0.0..=1.0).contains(&homophily), "homophily must be in [0,1]");
    assert!(num_classes >= 1, "need at least one class");
    let n = labels.len();
    if n < 2 {
        return Graph::from_edges(n, &[]);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // Bucket vertices per class for O(1) intra-class sampling.
    let mut by_class: Vec<Vec<u32>> = vec![Vec::new(); num_classes];
    for (v, &c) in labels.iter().enumerate() {
        assert!((c as usize) < num_classes, "label {c} out of range");
        by_class[c as usize].push(v as u32);
    }
    // Sample distinct undirected edges until the exact target count is hit,
    // so the replica's average degree matches the spec instead of drifting
    // down with duplicate/reciprocal collisions.
    let target = ((n as f64 * avg_degree / 2.0).round() as usize).min(n * (n - 1) / 2);
    let mut seen = std::collections::HashSet::with_capacity(target * 2);
    let mut edges = Vec::with_capacity(target);
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(20).max(1024);
    while edges.len() < target && attempts < max_attempts {
        attempts += 1;
        let v = rng.gen_range(0..n) as u32;
        let class = labels[v as usize] as usize;
        // When a class bucket saturates (dense replicas with small classes),
        // the intra draw degenerates to uniform, gracefully trading
        // homophily for the target degree.
        let u = if rng.gen_bool(homophily) && by_class[class].len() > 1 {
            by_class[class][rng.gen_range(0..by_class[class].len())]
        } else {
            rng.gen_range(0..n) as u32
        };
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push(key);
        }
    }
    // Saturated classes can make homophilous draws collide forever; top up
    // with uniform edges so the degree target is still met.
    while edges.len() < target {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push(key);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Classic two-parameter stochastic block model with `k` equal blocks:
/// intra-block edge probability `p_in`, inter-block `p_out`.
/// Only practical for small `n` (used by tests and the quickstart example).
pub fn sbm(n: usize, k: usize, p_in: f64, p_out: f64, seed: u64) -> (Graph, Vec<u32>) {
    assert!(k >= 1 && n >= k, "invalid block structure");
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels: Vec<u32> = (0..n).map(|v| (v % k) as u32).collect();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if labels[u] == labels[v] { p_in } else { p_out };
            if rng.gen_bool(p) {
                edges.push((u as u32, v as u32));
            }
        }
    }
    (Graph::from_edges(n, &edges), labels)
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its `k/2` nearest neighbours on each side, with every edge
/// rewired to a uniform random endpoint with probability `beta`.
///
/// Small-world graphs stress partitioners differently from the other
/// generators: at `beta = 0` METIS-style partitioners find near-perfect
/// contiguous cuts, and quality degrades smoothly as `beta` grows.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and ≥ 2");
    assert!(n > k, "need more vertices than the ring degree");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * k / 2);
    for v in 0..n {
        for offset in 1..=(k / 2) {
            let mut u = ((v + offset) % n) as u32;
            if rng.gen_bool(beta) {
                // Rewire to a random non-self endpoint.
                loop {
                    let cand = rng.gen_range(0..n) as u32;
                    if cand as usize != v {
                        u = cand;
                        break;
                    }
                }
            }
            edges.push((v as u32, u));
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_has_exact_edge_count() {
        let g = erdos_renyi(100, 250, 1);
        assert_eq!(g.num_edges(), 250);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        assert_eq!(erdos_renyi(50, 100, 9), erdos_renyi(50, 100, 9));
        assert_ne!(erdos_renyi(50, 100, 9), erdos_renyi(50, 100, 10));
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn erdos_renyi_rejects_too_many_edges() {
        let _ = erdos_renyi(3, 10, 0);
    }

    #[test]
    fn barabasi_albert_is_connected_and_heavy_tailed() {
        let g = barabasi_albert(500, 3, 2);
        assert!(g.validate().is_ok());
        // Early vertices accumulate far more than the attachment count.
        assert!(g.max_degree() > 3 * 4, "max degree {} not heavy-tailed", g.max_degree());
        // Every late vertex has at least its own attachments.
        for v in 3..500 {
            assert!(g.degree(v) >= 3);
        }
    }

    #[test]
    fn rmat_produces_skewed_degrees() {
        let g = rmat(9, 8, 0.57, 0.19, 0.19, 3);
        assert!(g.validate().is_ok());
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn planted_partition_hits_target_degree() {
        let labels: Vec<u32> = (0..2000).map(|v| (v % 4) as u32).collect();
        let g = planted_partition(&labels, 4, 20.0, 0.8, 5);
        assert!(g.validate().is_ok());
        let d = g.avg_degree();
        assert!((d - 20.0).abs() < 3.0, "avg degree {d} too far from 20");
    }

    #[test]
    fn planted_partition_is_homophilous() {
        let labels: Vec<u32> = (0..1000).map(|v| (v % 5) as u32).collect();
        let g = planted_partition(&labels, 5, 16.0, 0.8, 7);
        let mut same = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            total += 1;
            if labels[u as usize] == labels[v as usize] {
                same += 1;
            }
        }
        let h = same as f64 / total as f64;
        assert!(h > 0.6, "homophily {h} too low");
    }

    #[test]
    fn watts_strogatz_ring_structure() {
        // beta = 0: pure ring lattice, every vertex has degree exactly k.
        let g = watts_strogatz(50, 4, 0.0, 1);
        assert!(g.validate().is_ok());
        for v in 0..50 {
            assert_eq!(g.degree(v), 4, "vertex {v}");
        }
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(0, 49));
    }

    #[test]
    fn watts_strogatz_rewiring_changes_structure() {
        let ring = watts_strogatz(100, 6, 0.0, 2);
        let wired = watts_strogatz(100, 6, 0.5, 2);
        assert_ne!(ring, wired);
        // Edge count is conserved up to dedup collisions.
        assert!(wired.num_edges() <= ring.num_edges());
        assert!(wired.num_edges() > ring.num_edges() / 2);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn watts_strogatz_rejects_odd_k() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }

    #[test]
    fn sbm_labels_match_blocks() {
        let (g, labels) = sbm(60, 3, 0.5, 0.02, 4);
        assert!(g.validate().is_ok());
        assert_eq!(labels.iter().filter(|&&c| c == 0).count(), 20);
    }
}
