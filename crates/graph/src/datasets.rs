//! Synthetic replicas of the paper's five evaluation datasets.
//!
//! The paper (Table III) evaluates on Cora, Pubmed, Reddit, OGBN-Products
//! and OGBN-Papers100M. We cannot ship those datasets, so each replica is a
//! seeded synthetic graph matched on the *drivers* of EC-Graph's behaviour:
//!
//! * **average degree** — controls message volume and, per the paper's own
//!   observation, how susceptible a graph is to aggressive compression
//!   ("graphs with a larger average degree are more susceptible to the
//!   number of bits"),
//! * **feature dimension / class count** — control compute and model shape,
//! * **label homophily** — controls how learnable the task is for a GCN.
//!
//! Vertex counts for Cora and Pubmed are kept at the published values; the
//! three large graphs are scaled down (the `default_vertices` field records
//! the replica size, `paper_vertices` the original) — every experiment in
//! `EXPERIMENTS.md` states which replica size it ran.

use crate::attributed::{AttributedGraph, Split};
use crate::generators::planted_partition;
use ec_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Static description of one dataset replica.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Replica name, e.g. `"cora"`.
    pub name: &'static str,
    /// Vertex count of the original dataset (Table III).
    pub paper_vertices: usize,
    /// Edge count of the original dataset (Table III).
    pub paper_edges: u64,
    /// Vertex count the replica instantiates by default.
    pub default_vertices: usize,
    /// Input feature dimensionality (matches the original).
    pub feature_dim: usize,
    /// Number of classes (matches the original).
    pub num_classes: usize,
    /// Target average degree (matches the original).
    pub avg_degree: f64,
    /// Target edge homophily for the planted structure.
    pub homophily: f64,
    /// Fraction of vertices labelled for training.
    pub train_frac: f64,
    /// Fraction of vertices used for validation.
    pub val_frac: f64,
    /// Uniform feature noise half-width (class-centroid perturbation).
    pub feature_noise: f32,
    /// Fraction of labels flipped to a random class — sets the accuracy
    /// ceiling of the replica to the paper's Table V band:
    /// `acc ≈ 1 - noise·(1 - 1/C)`.
    pub label_noise: f64,
    /// Default number of GCN layers in the paper's runs (Section V-A).
    pub default_layers: usize,
    /// Default hidden size in the paper's runs (Section V-A).
    pub default_hidden: usize,
}

impl DatasetSpec {
    /// Cora citation network: kept at full scale (2 708 vertices).
    pub fn cora() -> Self {
        Self {
            name: "cora",
            paper_vertices: 2_708,
            paper_edges: 10_556,
            default_vertices: 2_708,
            feature_dim: 1_433,
            num_classes: 7,
            avg_degree: 3.90,
            homophily: 0.81,
            train_frac: 0.52, // 1408/2708
            val_frac: 0.11,   // 300/2708
            feature_noise: 0.35,
            label_noise: 0.15,
            default_layers: 2,
            default_hidden: 16,
        }
    }

    /// Pubmed citation network: kept at full scale (19 717 vertices).
    pub fn pubmed() -> Self {
        Self {
            name: "pubmed",
            paper_vertices: 19_717,
            paper_edges: 88_654,
            default_vertices: 19_717,
            feature_dim: 500,
            num_classes: 3,
            avg_degree: 4.50,
            homophily: 0.80,
            train_frac: 0.65, // 12816/19717
            val_frac: 0.10,   // 1971/19717
            feature_noise: 0.4,
            label_noise: 0.2,
            default_layers: 2,
            default_hidden: 16,
        }
    }

    /// Reddit post graph replica: vertex count scaled 232 965 → 8 192,
    /// the extreme average degree (491.99) is preserved because it is the
    /// property the paper's compression analysis keys on.
    pub fn reddit() -> Self {
        Self {
            name: "reddit",
            paper_vertices: 232_965,
            paper_edges: 114_615_892,
            default_vertices: 8_192,
            feature_dim: 602,
            num_classes: 41,
            avg_degree: 491.99,
            homophily: 0.76,
            train_frac: 0.66, // 153932/232965
            val_frac: 0.10,
            feature_noise: 0.5,
            label_noise: 0.076,
            default_layers: 2,
            default_hidden: 16,
        }
    }

    /// OGBN-Products replica: vertex count scaled 2 449 029 → 16 384.
    pub fn products() -> Self {
        Self {
            name: "products",
            paper_vertices: 2_449_029,
            paper_edges: 123_718_024,
            default_vertices: 16_384,
            feature_dim: 100,
            num_classes: 47,
            avg_degree: 50.52,
            homophily: 0.81,
            train_frac: 0.08, // 196615/2449029
            val_frac: 0.016,
            feature_noise: 0.5,
            label_noise: 0.141,
            default_layers: 3,
            default_hidden: 256,
        }
    }

    /// OGBN-Papers100M replica: vertex count scaled 111 059 956 → 32 768.
    pub fn papers() -> Self {
        Self {
            name: "papers",
            paper_vertices: 111_059_956,
            paper_edges: 3_231_371_744,
            default_vertices: 32_768,
            feature_dim: 128,
            num_classes: 172,
            avg_degree: 29.10,
            homophily: 0.70,
            train_frac: 0.011, // 1207179/111M
            val_frac: 0.0011,
            feature_noise: 0.55,
            label_noise: 0.557,
            default_layers: 3,
            default_hidden: 256,
        }
    }

    /// All five replicas in the paper's Table III order.
    pub fn all() -> Vec<Self> {
        vec![Self::cora(), Self::pubmed(), Self::reddit(), Self::products(), Self::papers()]
    }

    /// Linear scale-down factor of the replica relative to the original.
    pub fn scale_factor(&self) -> f64 {
        self.default_vertices as f64 / self.paper_vertices as f64
    }

    /// Instantiates the replica at its default size.
    pub fn instantiate(&self, seed: u64) -> AttributedGraph {
        self.instantiate_with(self.default_vertices, self.feature_dim, seed)
    }

    /// Instantiates the replica at a custom vertex count (degree, dims,
    /// classes and homophily preserved). Tests use tiny instantiations.
    pub fn instantiate_scaled(&self, num_vertices: usize, seed: u64) -> AttributedGraph {
        self.instantiate_with(num_vertices, self.feature_dim, seed)
    }

    /// Instantiates with custom vertex count *and* feature dimension
    /// (benches shrink the huge Cora feature dim when it is not the object
    /// of study).
    pub fn instantiate_with(
        &self,
        num_vertices: usize,
        feature_dim: usize,
        seed: u64,
    ) -> AttributedGraph {
        let classes = self.num_classes.min(num_vertices);
        let mut rng = SmallRng::seed_from_u64(seed);
        let true_labels: Vec<u32> =
            (0..num_vertices).map(|_| rng.gen_range(0..classes) as u32).collect();
        // A homophilous graph with C classes over n vertices supports at
        // most ~n²/(2C) intra-class edges, i.e. an average degree of
        // ~n/(C·h). Down-scaled dense replicas (Reddit keeps the paper's
        // degree 492) must clamp below that ceiling or the planted
        // structure saturates into a label-random — unlearnable — graph.
        let degree_ceiling = num_vertices as f64 / (classes as f64 * self.homophily.max(0.1)) * 0.8;
        let avg_degree = self.avg_degree.min(degree_ceiling).max(1.0);
        // Structure and features follow the *true* classes; the observed
        // labels are then flipped with probability `label_noise`, capping
        // the achievable accuracy at the paper's Table V band.
        let graph =
            planted_partition(&true_labels, classes, avg_degree, self.homophily, seed ^ 0xA5A5);
        let mut features =
            class_features(&true_labels, classes, feature_dim, self.feature_noise, seed ^ 0x5A5A);
        // The public datasets ship z-scored features; standardizing is also
        // what keeps high-degree GCN aggregation from collapsing onto the
        // shared positive component (see normalize::standardize_columns).
        crate::normalize::standardize_columns(&mut features);
        let labels: Vec<u32> =
            true_labels
                .iter()
                .map(|&c| {
                    if rng.gen_bool(self.label_noise) {
                        rng.gen_range(0..classes) as u32
                    } else {
                        c
                    }
                })
                .collect();
        // The paper's split *fractions* scale down with the vertex count,
        // but semi-supervised learning needs an absolute label floor: the
        // full OGBN-Papers has 1.2 M training labels (1.1 %), while 1.1 %
        // of a small replica would leave fewer labels than classes. Keep
        // at least ~5 labels per class and a 50-vertex validation set.
        let train_floor = (5 * classes) as f64 / num_vertices as f64;
        let val_floor = (50.0 / num_vertices as f64).min(0.05);
        let train_frac = self.train_frac.max(train_floor).min(0.7);
        let val_frac = self.val_frac.max(val_floor).min(0.15);
        let split = Split::by_fraction(num_vertices, train_frac, val_frac);
        let g = AttributedGraph {
            graph,
            features,
            labels,
            num_classes: classes,
            split,
            name: self.name.to_string(),
        };
        debug_assert!(g.validate().is_ok());
        g
    }
}

/// Generates class-conditional features: each class has a random centroid in
/// `[0,1]^d`; each vertex observes its centroid plus uniform noise, clamped
/// back into `[0,1]`.
///
/// The noise level is chosen so the classification task is learnable but not
/// trivially separable — full-precision GCN training converges to high
/// accuracy while low-bit compression without error compensation visibly
/// degrades it, matching the qualitative behaviour of Fig. 6.
pub fn class_features(
    labels: &[u32],
    num_classes: usize,
    dim: usize,
    noise: f32,
    seed: u64,
) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let centroids = Matrix::from_fn(num_classes, dim, |_, _| rng.gen_range(0.0..1.0));
    let mut features = Matrix::zeros(labels.len(), dim);
    for (v, &c) in labels.iter().enumerate() {
        let centroid = centroids.row(c as usize);
        let row = features.row_mut(v);
        for (x, &m) in row.iter_mut().zip(centroid) {
            *x = (m + rng.gen_range(-noise..noise)).clamp(0.0, 1.0);
        }
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_present_in_paper_order() {
        let names: Vec<_> = DatasetSpec::all().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["cora", "pubmed", "reddit", "products", "papers"]);
    }

    #[test]
    fn cora_replica_matches_paper_stats() {
        let s = DatasetSpec::cora();
        assert_eq!(s.default_vertices, s.paper_vertices);
        assert_eq!(s.feature_dim, 1433);
        assert_eq!(s.num_classes, 7);
    }

    #[test]
    fn scale_factors_are_sane() {
        assert_eq!(DatasetSpec::cora().scale_factor(), 1.0);
        assert!(DatasetSpec::papers().scale_factor() < 1e-3);
    }

    #[test]
    fn tiny_instantiation_validates() {
        let g = DatasetSpec::cora().instantiate_with(200, 32, 1);
        assert!(g.validate().is_ok());
        assert_eq!(g.num_vertices(), 200);
        assert_eq!(g.feature_dim(), 32);
    }

    #[test]
    fn instantiation_is_deterministic() {
        let a = DatasetSpec::pubmed().instantiate_with(100, 16, 3);
        let b = DatasetSpec::pubmed().instantiate_with(100, 16, 3);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.features, b.features);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn replica_degree_tracks_spec() {
        let s = DatasetSpec::products();
        let n = 2000usize;
        let g = s.instantiate_with(n, 16, 5);
        let d = g.graph.avg_degree();
        // Small instantiations clamp to the structural degree ceiling.
        let ceiling = n as f64 / (s.num_classes as f64 * s.homophily) * 0.8;
        let expected = s.avg_degree.min(ceiling);
        assert!((d - expected).abs() / expected < 0.15, "avg degree {d} too far from {expected}");
    }

    #[test]
    fn dense_replica_degree_clamps_to_structural_ceiling() {
        // Reddit at tiny scale cannot host degree 492 with 41 homophilous
        // classes; the clamp must keep the graph learnable instead of
        // saturating into label-random mixing.
        let s = DatasetSpec::reddit();
        let g = s.instantiate_with(1000, 16, 5);
        assert!(g.graph.avg_degree() < 40.0, "degree {} not clamped", g.graph.avg_degree());
        assert!(g.edge_homophily() > 0.5, "homophily {} collapsed", g.edge_homophily());
    }

    #[test]
    fn replica_features_are_standardized() {
        let g = DatasetSpec::cora().instantiate_with(500, 32, 3);
        for c in 0..4 {
            let col: Vec<f32> = (0..500).map(|r| g.features.get(r, c)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 500.0;
            let var: f32 = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 500.0;
            assert!(mean.abs() < 1e-4, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "col {c} var {var}");
        }
    }

    #[test]
    fn replica_is_homophilous() {
        let g = DatasetSpec::cora().instantiate_with(1000, 16, 7);
        assert!(g.edge_homophily() > 0.5);
    }

    #[test]
    fn class_features_are_clamped_and_class_correlated() {
        let labels = vec![0, 0, 1, 1];
        let f = class_features(&labels, 2, 64, 0.2, 9);
        assert!(f.as_slice().iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Same-class rows are closer than cross-class rows on average.
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum() };
        let same = dist(f.row(0), f.row(1)) + dist(f.row(2), f.row(3));
        let cross = dist(f.row(0), f.row(2)) + dist(f.row(1), f.row(3));
        assert!(same < cross, "same-class distance {same} >= cross {cross}");
    }

    #[test]
    fn labels_cover_multiple_classes() {
        let g = DatasetSpec::reddit().instantiate_with(500, 8, 11);
        let distinct: std::collections::BTreeSet<_> = g.labels.iter().collect();
        assert!(distinct.len() > 10);
    }
}
