//! Undirected graph in compressed-sparse-row form.
//!
//! EC-Graph's Graph Engine stores each worker's subgraph as adjacency lists;
//! this is the global structure those subgraphs are sliced from. Edges are
//! stored symmetrically (both `(u,v)` and `(v,u)` appear), matching the
//! undirected GCN setting of the paper's evaluation.

use serde::{Deserialize, Serialize};

/// An undirected graph with vertices `0..n` in CSR form.
///
/// ```
/// use ec_graph_data::Graph;
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0)]);
/// assert_eq!(g.degree(2), 2);
/// assert!(g.has_edge(0, 1) && !g.has_edge(0, 3));
/// ```
///
/// Invariants:
/// * `offsets.len() == n + 1`, non-decreasing, `offsets[0] == 0`;
/// * neighbour lists are sorted, deduplicated and contain no self-loops;
/// * the adjacency is symmetric: `v ∈ N(u) ⇔ u ∈ N(v)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an undirected edge list.
    ///
    /// Each `(u, v)` pair is inserted in both directions; duplicates and
    /// self-loops are dropped.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of bounds");
            if u == v {
                continue;
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Self { offsets, neighbors }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (each edge counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Number of stored directed arcs (twice [`Self::num_edges`]).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Average degree over all vertices.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Sorted neighbour list of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// True when `u` and `v` are adjacent (binary search).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Iterator over every undirected edge `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u).iter().filter(move |&&v| (u as u32) < v).map(move |&v| (u as u32, v))
        })
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Checks structural invariants; used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        for v in 0..n {
            let nb = self.neighbors(v);
            for w in nb.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("neighbours of {v} not strictly sorted"));
                }
            }
            for &u in nb {
                if u as usize >= n {
                    return Err(format!("neighbour {u} of {v} out of bounds"));
                }
                if u as usize == v {
                    return Err(format!("self-loop at {v}"));
                }
                if !self.has_edge(u as usize, v) {
                    return Err(format!("asymmetric edge ({v},{u})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 2-0, 2-3
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn counts_are_correct() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle_plus_tail();
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn duplicates_and_self_loops_dropped() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle_plus_tail();
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn avg_and_max_degree() {
        let g = triangle_plus_tail();
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(triangle_plus_tail().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_edges_rejects_bad_endpoint() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.validate().is_ok());
    }
}
