//! Plain-text persistence for graphs and labels.
//!
//! EC-Graph's workers load their subgraphs from a shared file system (NFS in
//! the paper). The reproduction's simulated cluster keeps everything in
//! memory, but the same on-disk formats are provided so users can feed their
//! own edge lists into the examples.

use crate::csr::Graph;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Why a graph or label file failed to load.
#[derive(Debug)]
pub enum GraphIoError {
    /// The underlying file could not be read.
    Io(io::Error),
    /// A line was malformed; `line` is 1-based.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            GraphIoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Writes a graph as `u<TAB>v` lines, one per undirected edge, preceded by a
/// `# vertices <n>` header.
pub fn save_edge_list(g: &Graph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# vertices {}", g.num_vertices())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Reads a graph written by [`save_edge_list`]. Lines starting with `#`
/// other than the header are ignored; blank lines are skipped.
///
/// # Errors
/// [`GraphIoError::Io`] when the file cannot be read,
/// [`GraphIoError::Parse`] when an edge line is malformed.
pub fn load_edge_list(path: &Path) -> Result<Graph, GraphIoError> {
    let r = BufReader::new(File::open(path)?);
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    let mut max_seen = 0u32;
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if it.next() == Some("vertices") {
                n = it.next().and_then(|t| t.parse().ok());
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |t: Option<&str>| -> Result<u32, GraphIoError> {
            let tok = t.ok_or(GraphIoError::Parse {
                line: idx + 1,
                msg: "missing endpoint".to_string(),
            })?;
            tok.parse().map_err(|e| GraphIoError::Parse {
                line: idx + 1,
                msg: format!("bad vertex id {tok:?}: {e}"),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_seen = max_seen.max(u).max(v);
        edges.push((u, v));
    }
    let n = n.unwrap_or(max_seen as usize + 1);
    Ok(Graph::from_edges(n, &edges))
}

/// Writes one label per line.
pub fn save_labels(labels: &[u32], path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for l in labels {
        writeln!(w, "{l}")?;
    }
    w.flush()
}

/// Reads labels written by [`save_labels`].
///
/// # Errors
/// [`GraphIoError::Io`] when the file cannot be read,
/// [`GraphIoError::Parse`] when a line is not an unsigned label.
pub fn load_labels(path: &Path) -> Result<Vec<u32>, GraphIoError> {
    let r = BufReader::new(File::open(path)?);
    r.lines()
        .enumerate()
        .filter(|(_, l)| !matches!(l, Ok(s) if s.trim().is_empty()))
        .map(|(idx, l)| {
            let s = l?;
            s.trim().parse().map_err(|e| GraphIoError::Parse {
                line: idx + 1,
                msg: format!("bad label {:?}: {e}", s.trim()),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ecgraph-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn edge_list_round_trip() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let path = tmp("edges.tsv");
        save_edge_list(&g, &path).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded, g);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn edge_list_round_trip_preserves_isolated_vertices() {
        // vertex 9 has no edges; the header keeps the vertex count.
        let g = Graph::from_edges(10, &[(0, 1)]);
        let path = tmp("iso.tsv");
        save_edge_list(&g, &path).unwrap();
        assert_eq!(load_edge_list(&path).unwrap().num_vertices(), 10);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_infers_vertex_count_without_header() {
        let path = tmp("nohdr.tsv");
        std::fs::write(&path, "0\t3\n1\t2\n").unwrap();
        let g = load_edge_list(&path).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("bad.tsv");
        std::fs::write(&path, "zero\tone\n").unwrap();
        assert!(load_edge_list(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn labels_round_trip() {
        let labels = vec![0, 3, 1, 2, 2];
        let path = tmp("labels.txt");
        save_labels(&labels, &path).unwrap();
        assert_eq!(load_labels(&path).unwrap(), labels);
        std::fs::remove_file(path).ok();
    }
}
