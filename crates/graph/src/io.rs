//! Plain-text persistence for graphs and labels.
//!
//! EC-Graph's workers load their subgraphs from a shared file system (NFS in
//! the paper). The reproduction's simulated cluster keeps everything in
//! memory, but the same on-disk formats are provided so users can feed their
//! own edge lists into the examples.

use crate::csr::Graph;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a graph as `u<TAB>v` lines, one per undirected edge, preceded by a
/// `# vertices <n>` header.
pub fn save_edge_list(g: &Graph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# vertices {}", g.num_vertices())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Reads a graph written by [`save_edge_list`]. Lines starting with `#`
/// other than the header are ignored; blank lines are skipped.
pub fn load_edge_list(path: &Path) -> io::Result<Graph> {
    let r = BufReader::new(File::open(path)?);
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    let mut max_seen = 0u32;
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if it.next() == Some("vertices") {
                n = it.next().and_then(|t| t.parse().ok());
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |t: Option<&str>| -> io::Result<u32> {
            t.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing endpoint"))?
                .parse()
                .map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad vertex id: {e}"))
                })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_seen = max_seen.max(u).max(v);
        edges.push((u, v));
    }
    let n = n.unwrap_or(max_seen as usize + 1);
    Ok(Graph::from_edges(n, &edges))
}

/// Writes one label per line.
pub fn save_labels(labels: &[u32], path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for l in labels {
        writeln!(w, "{l}")?;
    }
    w.flush()
}

/// Reads labels written by [`save_labels`].
pub fn load_labels(path: &Path) -> io::Result<Vec<u32>> {
    let r = BufReader::new(File::open(path)?);
    r.lines()
        .filter(|l| !matches!(l, Ok(s) if s.trim().is_empty()))
        .map(|l| {
            l?.trim()
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad label: {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ecgraph-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn edge_list_round_trip() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let path = tmp("edges.tsv");
        save_edge_list(&g, &path).unwrap();
        let loaded = load_edge_list(&path).unwrap();
        assert_eq!(loaded, g);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn edge_list_round_trip_preserves_isolated_vertices() {
        // vertex 9 has no edges; the header keeps the vertex count.
        let g = Graph::from_edges(10, &[(0, 1)]);
        let path = tmp("iso.tsv");
        save_edge_list(&g, &path).unwrap();
        assert_eq!(load_edge_list(&path).unwrap().num_vertices(), 10);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_infers_vertex_count_without_header() {
        let path = tmp("nohdr.tsv");
        std::fs::write(&path, "0\t3\n1\t2\n").unwrap();
        let g = load_edge_list(&path).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("bad.tsv");
        std::fs::write(&path, "zero\tone\n").unwrap();
        assert!(load_edge_list(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn labels_round_trip() {
        let labels = vec![0, 3, 1, 2, 2];
        let path = tmp("labels.txt");
        save_labels(&labels, &path).unwrap();
        assert_eq!(load_labels(&path).unwrap(), labels);
        std::fs::remove_file(path).ok();
    }
}
