//! # `ec-graph-data` — graph storage and datasets for the EC-Graph reproduction
//!
//! The paper trains full-batch GCNs over five public graphs (Cora, Pubmed,
//! Reddit, OGBN-Products, OGBN-Papers100M). Those datasets cannot be shipped
//! with this reproduction, so this crate provides:
//!
//! * [`Graph`] — an undirected CSR adjacency structure with validated
//!   invariants,
//! * [`AttributedGraph`] — graph + vertex features + labels + the
//!   train/val/test split used for semi-supervised vertex classification,
//! * [`normalize`] — the GCN-normalized adjacency
//!   `Â = D^{-1/2}(A + I)D^{-1/2}`,
//! * [`generators`] — seeded synthetic graph generators (Erdős–Rényi,
//!   Barabási–Albert, R-MAT, stochastic block model, planted-partition
//!   homophilous graphs),
//! * [`datasets`] — **synthetic replicas** of the paper's five datasets,
//!   matched on average degree, feature dimension, class count and label
//!   homophily (vertex counts of the two OGBN graphs are scaled down; the
//!   scale is recorded per replica), and
//! * [`io`] — plain-text edge-list and label persistence.

pub mod attributed;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod io;
pub mod normalize;

pub use attributed::{AttributedGraph, Split};
pub use csr::Graph;
pub use datasets::DatasetSpec;
