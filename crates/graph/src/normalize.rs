//! GCN adjacency normalization.
//!
//! Kipf & Welling's GCN (and the paper's Eq. 2) propagates through
//! `Â = D̃^{-1/2}(A + I)D̃^{-1/2}` where `D̃` is the degree matrix of
//! `A + I`. For an undirected graph `Â` is symmetric, so `Âᵀ = Â` and the
//! forward (Eq. 2) and backward (Eq. 5) flows use the same matrix.

use crate::csr::Graph;
use ec_tensor::CsrMatrix;

/// Builds the symmetric GCN-normalized adjacency `D̃^{-1/2}(A+I)D̃^{-1/2}`
/// (self-loops included).
pub fn gcn_normalized_adjacency(g: &Graph) -> CsrMatrix {
    let n = g.num_vertices();
    // Degree of A + I.
    let inv_sqrt: Vec<f32> = (0..n).map(|v| 1.0 / ((g.degree(v) + 1) as f32).sqrt()).collect();
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices: Vec<u32> = Vec::with_capacity(g.num_arcs() + n);
    let mut values: Vec<f32> = Vec::with_capacity(g.num_arcs() + n);
    indptr.push(0);
    for v in 0..n {
        let mut inserted_self = false;
        for &u in g.neighbors(v) {
            let u = u as usize;
            if !inserted_self && u > v {
                indices.push(v as u32);
                values.push(inv_sqrt[v] * inv_sqrt[v]);
                inserted_self = true;
            }
            indices.push(u as u32);
            values.push(inv_sqrt[v] * inv_sqrt[u]);
        }
        if !inserted_self {
            indices.push(v as u32);
            values.push(inv_sqrt[v] * inv_sqrt[v]);
        }
        indptr.push(indices.len());
    }
    CsrMatrix::new(n, n, indptr, indices, values)
}

/// Builds the row-stochastic mean-aggregation matrix `D̃^{-1}(A + I)`
/// used by GraphSAGE-style mean aggregation.
pub fn row_normalized_adjacency(g: &Graph) -> CsrMatrix {
    let n = g.num_vertices();
    let mut triples = Vec::with_capacity(g.num_arcs() + n);
    for v in 0..n {
        let inv = 1.0 / ((g.degree(v) + 1) as f32);
        triples.push((v, v, inv));
        for &u in g.neighbors(v) {
            triples.push((v, u as usize, inv));
        }
    }
    CsrMatrix::from_triples(n, n, &triples)
}

/// Column-standardizes a feature matrix in place: each feature gets zero
/// mean and unit variance (constant columns become zero).
///
/// This mirrors the preprocessing the public datasets ship with (Reddit's
/// and OGBN's features are z-scored embeddings). It matters for GNN
/// optimization: with all-positive features and high average degree, the
/// aggregation `Â·X` is dominated by a shared positive component and GCN
/// training collapses into predicting the class prior.
pub fn standardize_columns(features: &mut ec_tensor::Matrix) {
    let (rows, cols) = features.shape();
    if rows == 0 || cols == 0 {
        return;
    }
    let mut mean = vec![0.0f64; cols];
    for r in 0..rows {
        for (m, &x) in mean.iter_mut().zip(features.row(r)) {
            *m += x as f64;
        }
    }
    for m in &mut mean {
        *m /= rows as f64;
    }
    let mut var = vec![0.0f64; cols];
    for r in 0..rows {
        for (v, (&x, &m)) in var.iter_mut().zip(features.row(r).iter().zip(&mean)) {
            let d = x as f64 - m;
            *v += d * d;
        }
    }
    let inv_std: Vec<f32> = var
        .iter()
        .map(|&v| {
            let std = (v / rows as f64).sqrt();
            if std > 1e-12 {
                (1.0 / std) as f32
            } else {
                0.0
            }
        })
        .collect();
    for r in 0..rows {
        for ((x, &m), &is) in features.row_mut(r).iter_mut().zip(&mean).zip(&inv_std) {
            *x = (*x - m as f32) * is;
        }
    }
}

/// Row-normalizes a feature matrix in place so each row sums to 1
/// (zero rows untouched) — the standard preprocessing for citation graphs.
pub fn row_normalize_features(features: &mut ec_tensor::Matrix) {
    for r in 0..features.rows() {
        let row = features.row_mut(r);
        let sum: f32 = row.iter().map(|x| x.abs()).sum();
        if sum > 0.0 {
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_adjacency_is_symmetric() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let a = gcn_normalized_adjacency(&g).to_dense();
        for r in 0..4 {
            for c in 0..4 {
                assert!((a.get(r, c) - a.get(c, r)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn normalized_adjacency_known_values() {
        // path 0-1: degrees with self-loop are 2 and 2.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let a = gcn_normalized_adjacency(&g).to_dense();
        assert!((a.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((a.get(0, 1) - 0.5).abs() < 1e-6);
        assert!((a.get(1, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn self_loops_present_for_isolated_vertices() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let a = gcn_normalized_adjacency(&g).to_dense();
        assert!((a.get(2, 2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_adjacency_nnz_counts_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let a = gcn_normalized_adjacency(&g);
        assert_eq!(a.nnz(), g.num_arcs() + 3);
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let a = row_normalized_adjacency(&g).to_dense();
        for r in 0..4 {
            let sum: f32 = a.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn feature_row_normalization() {
        let mut f = ec_tensor::Matrix::from_rows(&[vec![2., 2.], vec![0., 0.]]);
        row_normalize_features(&mut f);
        assert_eq!(f.row(0), &[0.5, 0.5]);
        assert_eq!(f.row(1), &[0., 0.]);
    }
}

#[cfg(test)]
mod standardize_tests {
    use super::*;

    #[test]
    fn standardize_columns_zero_mean_unit_var() {
        let mut f = ec_tensor::Matrix::from_rows(&[vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]]);
        standardize_columns(&mut f);
        // column 0: mean 3, std sqrt(8/3)
        let col0: Vec<f32> = (0..3).map(|r| f.get(r, 0)).collect();
        let mean: f32 = col0.iter().sum::<f32>() / 3.0;
        assert!(mean.abs() < 1e-6);
        let var: f32 = col0.iter().map(|x| x * x).sum::<f32>() / 3.0;
        assert!((var - 1.0).abs() < 1e-5);
        // constant column becomes zero
        assert!((0..3).all(|r| f.get(r, 1) == 0.0));
    }

    #[test]
    fn standardize_empty_is_noop() {
        let mut f = ec_tensor::Matrix::zeros(0, 3);
        standardize_columns(&mut f);
        assert_eq!(f.shape(), (0, 3));
    }
}
