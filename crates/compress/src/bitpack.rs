//! Dense bit packing of fixed-width codes.
//!
//! Bucket ids produced by quantization are `B`-bit integers (`B ∈ 1..=16`).
//! They are packed LSB-first into a contiguous byte buffer — the Rust
//! equivalent of the paper's Fig. 3 step that concatenates 2-bit codes into
//! 32-bit unsigned integers.
//!
//! The codecs stream through a `u64` accumulator in whole-word lanes
//! rather than shuffling individual bits or bytes. Widths that divide 64
//! (1, 2, 4, 8, 16, 32 — every width the Bit-Tuner actually picks) pack
//! `64/bits` codes per `u64` and emit/refill eight little-endian bytes at
//! a time; other widths flush four bytes per drain. Both paths produce
//! byte-for-byte the layout of the original byte-at-a-time loops (LSB-first
//! emission of the accumulator *is* little-endian order), and the streaming
//! entry points [`pack_iter`] / [`unpack_iter`] let quantization fuse
//! bucketing with packing so no intermediate code vector is ever allocated.

/// Packs `codes` (each `< 2^bits`) into a byte buffer, LSB-first.
///
/// # Panics
/// Panics if `bits` is 0 or greater than 32, or if any code needs more than
/// `bits` bits.
pub fn pack(codes: &[u32], bits: u8) -> Vec<u8> {
    let mask = code_mask(bits);
    pack_iter(
        codes.iter().map(|&code| {
            assert!(code <= mask, "code {code} does not fit in {bits} bits");
            code
        }),
        codes.len(),
        bits,
    )
}

/// Packs exactly `count` codes produced by `codes`, LSB-first.
///
/// The caller guarantees every yielded code fits in `bits` bits; oversized
/// codes would bleed into their neighbours. [`pack`] is the checked wrapper
/// for untrusted input.
///
/// # Panics
/// Panics if `bits ∉ 1..=32` or the iterator yields fewer than `count`
/// codes (excess codes are ignored).
pub fn pack_iter(codes: impl IntoIterator<Item = u32>, count: usize, bits: u8) -> Vec<u8> {
    assert!((1..=32).contains(&bits), "bit width {bits} out of range");
    let mut out = Vec::with_capacity(packed_len(count, bits));
    let mut iter = codes.into_iter();
    let mut taken = 0usize;
    if 64 % bits as u32 == 0 {
        // Whole-word lane: `per_word` codes fill a u64 exactly, and
        // LSB-first emission of a full accumulator is its little-endian
        // byte order, so the layout matches the byte-at-a-time path.
        let per_word = (64 / bits as u32) as usize;
        'words: for _ in 0..count / per_word {
            let mut word = 0u64;
            let mut shift = 0u32;
            for _ in 0..per_word {
                // A short iterator falls through to the final count check.
                let Some(code) = iter.next() else { break 'words };
                word |= (code as u64) << shift;
                shift += bits as u32;
                taken += 1;
            }
            out.extend_from_slice(&word.to_le_bytes());
        }
    }
    // Generic path and the sub-word tail: drain four bytes per flush (the
    // accumulator peaks at 31 + 32 bits in flight, so it cannot overflow).
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for code in iter.take(count - taken) {
        acc |= (code as u64) << nbits;
        nbits += bits as u32;
        if nbits >= 32 {
            out.extend_from_slice(&(acc as u32).to_le_bytes());
            acc >>= 32;
            nbits -= 32;
        }
        taken += 1;
    }
    assert_eq!(taken, count, "iterator yielded {taken} codes, expected {count}");
    while nbits >= 8 {
        out.push(acc as u8);
        acc >>= 8;
        nbits -= 8;
    }
    if nbits > 0 {
        out.push(acc as u8);
    }
    out
}

/// Unpacks `count` codes of width `bits` from a buffer produced by [`pack`].
///
/// # Panics
/// Panics if the buffer is too short for `count` codes.
pub fn unpack(bytes: &[u8], bits: u8, count: usize) -> Vec<u32> {
    unpack_iter(bytes, bits, count).collect()
}

/// Streaming variant of [`unpack`]: yields the `count` codes without
/// allocating, so reconstruction can map codes straight into its output.
///
/// # Panics
/// Panics if `bits ∉ 1..=32` or the buffer is too short for `count` codes.
pub fn unpack_iter(bytes: &[u8], bits: u8, count: usize) -> Unpacker<'_> {
    assert!((1..=32).contains(&bits), "bit width {bits} out of range");
    let total_bits = count * bits as usize;
    assert!(
        bytes.len() * 8 >= total_bits,
        "buffer of {} bytes too short for {count} codes of {bits} bits",
        bytes.len()
    );
    Unpacker {
        bytes,
        pos: 0,
        acc: 0,
        nbits: 0,
        bits: bits as u32,
        mask: code_mask(bits),
        remaining: count,
    }
}

/// Iterator over the codes of a packed buffer; see [`unpack_iter`].
pub struct Unpacker<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
    bits: u32,
    mask: u32,
    remaining: usize,
}

impl Iterator for Unpacker<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.nbits == 0 && self.pos + 8 <= self.bytes.len() {
            // Whole-word refill. The accumulator holds exactly `nbits`
            // valid bits at all times, so at zero it is empty and absorbs a
            // full little-endian u64 — one load instead of eight shifts.
            let b = &self.bytes[self.pos..self.pos + 8];
            self.acc = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
            self.pos += 8;
            self.nbits = 64;
        }
        while self.nbits < self.bits {
            // In-bounds by the `unpack_iter` length check.
            self.acc |= (self.bytes[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
        let code = (self.acc as u32) & self.mask;
        self.acc >>= self.bits;
        self.nbits -= self.bits;
        Some(code)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Unpacker<'_> {}

/// Number of bytes [`pack`] produces for `count` codes of width `bits`.
pub fn packed_len(count: usize, bits: u8) -> usize {
    (count * bits as usize).div_ceil(8)
}

fn code_mask(bits: u8) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The original bit-by-bit packer, kept as the reference the
    /// word-at-a-time implementation must match byte for byte.
    fn pack_reference(codes: &[u32], bits: u8) -> Vec<u8> {
        let total_bits = codes.len() * bits as usize;
        let mut out = vec![0u8; total_bits.div_ceil(8)];
        let mut bitpos = 0usize;
        for &code in codes {
            let mut remaining = bits as usize;
            let mut value = code as u64;
            while remaining > 0 {
                let byte = bitpos / 8;
                let offset = bitpos % 8;
                let take = (8 - offset).min(remaining);
                out[byte] |= ((value & ((1u64 << take) - 1)) as u8) << offset;
                value >>= take;
                bitpos += take;
                remaining -= take;
            }
        }
        out
    }

    /// The original bit-by-bit unpacker (reference).
    fn unpack_reference(bytes: &[u8], bits: u8, count: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(count);
        let mut bitpos = 0usize;
        for _ in 0..count {
            let mut value = 0u64;
            let mut got = 0usize;
            while got < bits as usize {
                let byte = bitpos / 8;
                let offset = bitpos % 8;
                let take = (8 - offset).min(bits as usize - got);
                let chunk = ((bytes[byte] >> offset) as u64) & ((1u64 << take) - 1);
                value |= chunk << got;
                got += take;
                bitpos += take;
            }
            out.push(value as u32);
        }
        out
    }

    #[test]
    fn pack_two_bit_example_from_paper() {
        // Fig. 3 packs 8 two-bit codes into 16 bits.
        let codes = [2u32, 1, 0, 3, 2, 2, 1, 0];
        let packed = pack(&codes, 2);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack(&packed, 2, 8), codes);
    }

    #[test]
    fn pack_single_bit() {
        let codes = [1u32, 0, 1, 1, 0, 0, 0, 1, 1];
        let packed = pack(&codes, 1);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack(&packed, 1, 9), codes);
    }

    #[test]
    fn pack_crossing_byte_boundaries() {
        // 3-bit codes straddle byte boundaries.
        let codes = [7u32, 0, 5, 3, 6, 1, 2, 4];
        let packed = pack(&codes, 3);
        assert_eq!(packed.len(), 3);
        assert_eq!(unpack(&packed, 3, 8), codes);
    }

    #[test]
    fn pack_sixteen_bit() {
        let codes = [0xFFFFu32, 0, 0xABCD, 0x1234];
        assert_eq!(unpack(&pack(&codes, 16), 16, 4), codes);
    }

    #[test]
    fn pack_thirty_two_bit() {
        let codes = [u32::MAX, 0, 0xDEAD_BEEF, 1];
        assert_eq!(unpack(&pack(&codes, 32), 32, 4), codes);
    }

    #[test]
    fn pack_empty_slice() {
        assert!(pack(&[], 4).is_empty());
        assert!(unpack(&[], 4, 0).is_empty());
    }

    #[test]
    fn packed_len_matches_pack_output() {
        for bits in [1u8, 2, 3, 4, 5, 7, 8, 11, 16] {
            let codes: Vec<u32> = (0..13).map(|i| i % (1 << bits.min(16))).collect();
            assert_eq!(pack(&codes, bits).len(), packed_len(13, bits), "bits={bits}");
        }
    }

    #[test]
    fn matches_reference_on_ragged_lengths() {
        // Every bucket width the Bit-Tuner can pick, at lengths that leave
        // 0–7 trailing bits in the final byte.
        for bits in [1u8, 2, 4, 8, 16] {
            let mask = code_mask(bits);
            for len in 0..=17usize {
                let codes: Vec<u32> =
                    (0..len).map(|i| (i as u32).wrapping_mul(2_654_435_761) & mask).collect();
                let new = pack(&codes, bits);
                let old = pack_reference(&codes, bits);
                assert_eq!(new, old, "bits={bits} len={len}");
                assert_eq!(unpack(&new, bits, len), unpack_reference(&old, bits, len));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pack_rejects_oversized_code() {
        let _ = pack(&[4], 2);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_rejects_short_buffer() {
        let _ = unpack(&[0u8], 8, 2);
    }

    #[test]
    #[should_panic(expected = "yielded")]
    fn pack_iter_rejects_short_iterator() {
        let _ = pack_iter([1u32, 2], 3, 4);
    }

    proptest! {
        #[test]
        fn pack_unpack_round_trip(
            bits in 1u8..=16,
            raw in proptest::collection::vec(any::<u32>(), 0..200),
        ) {
            let mask = (1u32 << bits) - 1;
            let codes: Vec<u32> = raw.iter().map(|&x| x & mask).collect();
            let packed = pack(&codes, bits);
            prop_assert_eq!(packed.len(), packed_len(codes.len(), bits));
            prop_assert_eq!(unpack(&packed, bits, codes.len()), codes);
        }

        /// The word-at-a-time codecs must be byte-for-byte and
        /// code-for-code interchangeable with the old bit-by-bit loops —
        /// packed buffers are on the (simulated) wire, so a format drift
        /// would silently change every traffic ledger.
        #[test]
        fn word_at_a_time_matches_bit_by_bit_reference(
            bits_idx in 0usize..5,
            raw in proptest::collection::vec(any::<u32>(), 0..200),
        ) {
            let bits = [1u8, 2, 4, 8, 16][bits_idx];
            let mask = code_mask(bits);
            let codes: Vec<u32> = raw.iter().map(|&x| x & mask).collect();
            let new = pack(&codes, bits);
            let old = pack_reference(&codes, bits);
            prop_assert_eq!(&new, &old, "packed bytes diverge at bits={}", bits);
            prop_assert_eq!(
                unpack(&old, bits, codes.len()),
                unpack_reference(&old, bits, codes.len())
            );
        }
    }
}
