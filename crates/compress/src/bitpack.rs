//! Dense bit packing of fixed-width codes.
//!
//! Bucket ids produced by quantization are `B`-bit integers (`B ∈ 1..=16`).
//! They are packed LSB-first into a contiguous byte buffer — the Rust
//! equivalent of the paper's Fig. 3 step that concatenates 2-bit codes into
//! 32-bit unsigned integers.

/// Packs `codes` (each `< 2^bits`) into a byte buffer, LSB-first.
///
/// # Panics
/// Panics if `bits` is 0 or greater than 32, or if any code needs more than
/// `bits` bits.
pub fn pack(codes: &[u32], bits: u8) -> Vec<u8> {
    assert!((1..=32).contains(&bits), "bit width {bits} out of range");
    let mask = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
    let total_bits = codes.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    let mut bitpos = 0usize;
    for &code in codes {
        assert!(code <= mask, "code {code} does not fit in {bits} bits");
        let mut remaining = bits as usize;
        let mut value = code as u64;
        while remaining > 0 {
            let byte = bitpos / 8;
            let offset = bitpos % 8;
            let take = (8 - offset).min(remaining);
            out[byte] |= ((value & ((1u64 << take) - 1)) as u8) << offset;
            value >>= take;
            bitpos += take;
            remaining -= take;
        }
    }
    out
}

/// Unpacks `count` codes of width `bits` from a buffer produced by [`pack`].
///
/// # Panics
/// Panics if the buffer is too short for `count` codes.
pub fn unpack(bytes: &[u8], bits: u8, count: usize) -> Vec<u32> {
    assert!((1..=32).contains(&bits), "bit width {bits} out of range");
    let total_bits = count * bits as usize;
    assert!(
        bytes.len() * 8 >= total_bits,
        "buffer of {} bytes too short for {count} codes of {bits} bits",
        bytes.len()
    );
    let mut out = Vec::with_capacity(count);
    let mut bitpos = 0usize;
    for _ in 0..count {
        let mut value = 0u64;
        let mut got = 0usize;
        while got < bits as usize {
            let byte = bitpos / 8;
            let offset = bitpos % 8;
            let take = (8 - offset).min(bits as usize - got);
            let chunk = ((bytes[byte] >> offset) as u64) & ((1u64 << take) - 1);
            value |= chunk << got;
            got += take;
            bitpos += take;
        }
        out.push(value as u32);
    }
    out
}

/// Number of bytes [`pack`] produces for `count` codes of width `bits`.
pub fn packed_len(count: usize, bits: u8) -> usize {
    (count * bits as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_two_bit_example_from_paper() {
        // Fig. 3 packs 8 two-bit codes into 16 bits.
        let codes = [2u32, 1, 0, 3, 2, 2, 1, 0];
        let packed = pack(&codes, 2);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack(&packed, 2, 8), codes);
    }

    #[test]
    fn pack_single_bit() {
        let codes = [1u32, 0, 1, 1, 0, 0, 0, 1, 1];
        let packed = pack(&codes, 1);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack(&packed, 1, 9), codes);
    }

    #[test]
    fn pack_crossing_byte_boundaries() {
        // 3-bit codes straddle byte boundaries.
        let codes = [7u32, 0, 5, 3, 6, 1, 2, 4];
        let packed = pack(&codes, 3);
        assert_eq!(packed.len(), 3);
        assert_eq!(unpack(&packed, 3, 8), codes);
    }

    #[test]
    fn pack_sixteen_bit() {
        let codes = [0xFFFFu32, 0, 0xABCD, 0x1234];
        assert_eq!(unpack(&pack(&codes, 16), 16, 4), codes);
    }

    #[test]
    fn pack_empty_slice() {
        assert!(pack(&[], 4).is_empty());
        assert!(unpack(&[], 4, 0).is_empty());
    }

    #[test]
    fn packed_len_matches_pack_output() {
        for bits in [1u8, 2, 3, 4, 5, 7, 8, 11, 16] {
            let codes: Vec<u32> = (0..13).map(|i| i % (1 << bits.min(16))).collect();
            assert_eq!(pack(&codes, bits).len(), packed_len(13, bits), "bits={bits}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pack_rejects_oversized_code() {
        let _ = pack(&[4], 2);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_rejects_short_buffer() {
        let _ = unpack(&[0u8], 8, 2);
    }

    proptest! {
        #[test]
        fn pack_unpack_round_trip(
            bits in 1u8..=16,
            raw in proptest::collection::vec(any::<u32>(), 0..200),
        ) {
            let mask = (1u32 << bits) - 1;
            let codes: Vec<u32> = raw.iter().map(|&x| x & mask).collect();
            let packed = pack(&codes, bits);
            prop_assert_eq!(packed.len(), packed_len(codes.len(), bits));
            prop_assert_eq!(unpack(&packed, bits, codes.len()), codes);
        }
    }
}
