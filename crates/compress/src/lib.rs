//! # `ec-compress` — B-bit bucket quantization for vertex messages
//!
//! Section IV-A of the paper compresses every embedding / embedding-gradient
//! matrix crossing the network by mapping each `f32` coordinate into one of
//! `2^B` equal-width buckets and transmitting the `B`-bit bucket id instead
//! of the 32-bit float; the receiver reconstructs each coordinate as the
//! bucket's midpoint (the "average value of both bounds" in the paper's
//! Fig. 3).
//!
//! * [`bitpack`] — dense LSB-first packing of `B`-bit codes into bytes,
//! * [`quantize`] — [`quantize::Quantized`], the compressed-matrix type with
//!   compression, reconstruction and wire-format round-trips,
//! * [`error`] — residuals and error bounds used by the compensation
//!   algorithms (ReqEC-FP's Selector, ResEC-BP's error feedback, Thm. 1),
//! * [`topk`] — Top-k sparsification, the related-work comparator
//!   (the paper's [32]); `compressor_comparison` in the bench crate pits
//!   it against bucket quantization at equal byte budgets.
//!
//! ## Wire-size accounting
//!
//! The paper's message cost per embedding is `d·B + 2^B·b` bits, the second
//! term being the bucket-value table. Because the buckets are equal-width,
//! the whole table is derivable from `(min, max, B)`, so this implementation
//! transmits just those two floats — an equivalent reconstruction at
//! strictly smaller size (the paper itself notes the table cost "will be
//! amortized"; here it is 8 bytes regardless of `B`). For the forward pass
//! the paper fixes the data domain to `[0, 1]`; for the backward pass it
//! computes min/max per message (Alg. 6 line 4). Both modes are supported.

pub mod bitpack;
pub mod error;
pub mod quantize;
pub mod topk;

pub use quantize::{Quantized, MAX_BITS};
pub use topk::TopK;
