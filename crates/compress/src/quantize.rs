//! Bucket quantization of dense matrices (`C_bits` in the paper).
//!
//! A matrix is compressed by splitting the value range `[min, max]` into
//! `2^B` equal buckets and replacing every coordinate with its bucket id;
//! reconstruction uses the bucket midpoint. [`Quantized::compress`] derives
//! the range per message (the paper's Alg. 6 line 4 behaviour — the engine
//! uses it for both directions, see DESIGN.md);
//! [`Quantized::compress_with_range`] supports an externally fixed domain
//! such as the paper's `[0, 1]` feature cube.

use crate::bitpack;
use ec_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Largest supported bit width. The paper's Bit-Tuner chooses from
/// `{1, 2, 4, 8, 16}`.
pub const MAX_BITS: u8 = 16;

/// A quantized dense matrix plus everything needed to reconstruct it.
///
/// ```
/// use ec_compress::Quantized;
/// use ec_tensor::Matrix;
/// let h = Matrix::from_vec(1, 4, vec![0.7, 0.3, 0.05, 0.95]);
/// let q = Quantized::compress_with_range(&h, 2, 0.0, 1.0);
/// // 2 bits per coordinate instead of 32, reconstructed at bucket midpoints.
/// assert_eq!(q.decompress().as_slice(), &[0.625, 0.375, 0.125, 0.875]);
/// assert!(q.wire_size() < 4 * 4 + 17);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Quantized {
    rows: usize,
    cols: usize,
    bits: u8,
    min: f32,
    max: f32,
    packed: Vec<u8>,
}

impl Quantized {
    /// Compresses `m` with `bits` bits per coordinate, computing the value
    /// range from the matrix itself (the backward-pass mode).
    ///
    /// This is the per-message hot path (every FP/BP exchange runs it), so
    /// it makes exactly two passes over the data — one fused min/max scan
    /// and one fused quantize-and-pack pass that writes codes straight into
    /// the packed buffer — with no intermediate code vector.
    pub fn compress(m: &Matrix, bits: u8) -> Self {
        let (min, max) = ec_tensor::stats::min_max(m);
        Self::compress_with_range(m, bits, min, max)
    }

    /// Compresses `m` against an externally fixed range, clamping values
    /// that fall outside (the forward-pass mode with domain `[0, 1]`).
    ///
    /// # Panics
    /// Panics if `bits ∉ 1..=16` or `min > max`.
    pub fn compress_with_range(m: &Matrix, bits: u8, min: f32, max: f32) -> Self {
        assert!((1..=MAX_BITS).contains(&bits), "bits {bits} out of range 1..=16");
        assert!(min <= max, "invalid range [{min}, {max}]");
        let buckets = 1u32 << bits;
        let range = max - min;
        let packed = if range <= 0.0 {
            // Every code is 0 → every packed byte is 0.
            vec![0u8; bitpack::packed_len(m.len(), bits)]
        } else {
            let scale = buckets as f32 / range;
            let top = (buckets - 1) as i64;
            bitpack::pack_iter(
                m.as_slice().iter().map(|&x| {
                    let t = ((x - min) * scale) as i64;
                    t.clamp(0, top) as u32
                }),
                m.len(),
                bits,
            )
        };
        Self { rows: m.rows(), cols: m.cols(), bits, min, max, packed }
    }

    /// Reconstructs the matrix, each coordinate becoming the midpoint of its
    /// bucket. Codes stream out of the packed buffer straight into the
    /// output — no intermediate code vector.
    pub fn decompress(&self) -> Matrix {
        let count = self.rows * self.cols;
        let range = self.max - self.min;
        if range <= 0.0 {
            return Matrix::filled(self.rows, self.cols, self.min);
        }
        let width = range / (1u32 << self.bits) as f32;
        let data: Vec<f32> = bitpack::unpack_iter(&self.packed, self.bits, count)
            .map(|c| self.min + (c as f32 + 0.5) * width)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// `(rows, cols)` of the original matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Bit width used for this message.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Value range the codes are relative to.
    pub fn range(&self) -> (f32, f32) {
        (self.min, self.max)
    }

    /// Bytes this message occupies on the (simulated) wire:
    /// header (rows, cols: u32 each; bits: u8; min, max: f32 each) + packed
    /// codes.
    pub fn wire_size(&self) -> usize {
        4 + 4 + 1 + 4 + 4 + self.packed.len()
    }

    /// Compression ratio versus raw `f32` transmission.
    pub fn compression_ratio(&self) -> f64 {
        let raw = (self.rows * self.cols * 4) as f64;
        if raw == 0.0 {
            1.0
        } else {
            raw / self.wire_size() as f64
        }
    }

    /// Serializes to the wire format described by [`Self::wire_size`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        out.extend_from_slice(&(self.rows as u32).to_le_bytes());
        out.extend_from_slice(&(self.cols as u32).to_le_bytes());
        out.push(self.bits);
        out.extend_from_slice(&self.min.to_le_bytes());
        out.extend_from_slice(&self.max.to_le_bytes());
        out.extend_from_slice(&self.packed);
        out
    }

    /// Deserializes a buffer produced by [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, String> {
        if buf.len() < 17 {
            return Err(format!("buffer too short: {} bytes", buf.len()));
        }
        // Length checked above; fixed-width reads below cannot slip, and
        // spelled as array constructions they cannot panic either (this
        // path decodes every compressed message of every superstep).
        let le_u32 = |b: &[u8]| u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        let le_f32 = |b: &[u8]| f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        let rows = le_u32(&buf[0..4]) as usize;
        let cols = le_u32(&buf[4..8]) as usize;
        let bits = buf[8];
        if !(1..=MAX_BITS).contains(&bits) {
            return Err(format!("invalid bit width {bits}"));
        }
        let min = le_f32(&buf[9..13]);
        let max = le_f32(&buf[13..17]);
        // Checked arithmetic: a hostile header can claim u32::MAX × u32::MAX
        // entries, whose bit count overflows usize.
        let expected = rows
            .checked_mul(cols)
            .and_then(|count| count.checked_mul(bits as usize))
            .map(|total_bits| total_bits.div_ceil(8))
            .ok_or_else(|| format!("claimed size {rows}x{cols} overflows"))?;
        if buf.len() - 17 != expected {
            return Err(format!("payload length {} != expected {expected}", buf.len() - 17));
        }
        Ok(Self { rows, cols, bits, min, max, packed: buf[17..].to_vec() })
    }

    /// The worst-case absolute reconstruction error for in-range values:
    /// half the bucket width.
    pub fn max_error(&self) -> f32 {
        (self.max - self.min) / (1u32 << self.bits) as f32 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_fig3_example() {
        // Fig. 3: domain [0,1], B=2 → buckets with midpoints 0.125, 0.375,
        // 0.625, 0.875 (the paper rounds these to 0.2/0.5/0.8 for display).
        let h = Matrix::from_vec(1, 4, vec![0.7, 0.3, 0.05, 0.95]);
        let q = Quantized::compress_with_range(&h, 2, 0.0, 1.0);
        let d = q.decompress();
        assert_eq!(d.as_slice(), &[0.625, 0.375, 0.125, 0.875]);
    }

    #[test]
    fn error_bounded_by_half_bucket() {
        let m = Matrix::from_fn(8, 8, |r, c| ((r * 8 + c) as f32) / 64.0);
        for bits in [1u8, 2, 4, 8] {
            let q = Quantized::compress(&m, bits);
            let d = q.decompress();
            let bound = q.max_error() + 1e-6;
            for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
                assert!((a - b).abs() <= bound, "bits={bits}: |{a}-{b}| > {bound}");
            }
        }
    }

    #[test]
    fn constant_matrix_reconstructs_exactly() {
        let m = Matrix::filled(3, 3, 2.5);
        let q = Quantized::compress(&m, 4);
        assert!(q.decompress().approx_eq(&m, 1e-6));
    }

    #[test]
    fn out_of_range_values_clamp() {
        let m = Matrix::from_vec(1, 2, vec![-5.0, 5.0]);
        let q = Quantized::compress_with_range(&m, 2, 0.0, 1.0);
        let d = q.decompress();
        assert_eq!(d.as_slice(), &[0.125, 0.875]);
    }

    #[test]
    fn wire_size_shrinks_with_fewer_bits() {
        let m = Matrix::zeros(64, 64);
        let s2 = Quantized::compress(&m, 2).wire_size();
        let s8 = Quantized::compress(&m, 8).wire_size();
        assert!(s2 < s8);
        // 2-bit: 64*64*2/8 = 1024 bytes payload + 17 header.
        assert_eq!(s2, 1024 + 17);
    }

    #[test]
    fn compression_ratio_roughly_32_over_b() {
        let m = Matrix::zeros(128, 128);
        for bits in [1u8, 2, 4, 8, 16] {
            let r = Quantized::compress(&m, bits).compression_ratio();
            let ideal = 32.0 / bits as f64;
            assert!((r - ideal).abs() / ideal < 0.02, "bits={bits}: ratio {r} vs ideal {ideal}");
        }
    }

    #[test]
    fn bytes_round_trip() {
        let m = Matrix::from_fn(5, 7, |r, c| (r as f32 - c as f32) * 0.3);
        let q = Quantized::compress(&m, 6);
        let back = Quantized::from_bytes(&q.to_bytes()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let m = Matrix::zeros(4, 4);
        let mut buf = Quantized::compress(&m, 8).to_bytes();
        buf.pop();
        assert!(Quantized::from_bytes(&buf).is_err());
        assert!(Quantized::from_bytes(&buf[..5]).is_err());
    }

    #[test]
    fn from_bytes_rejects_bad_bits() {
        let m = Matrix::zeros(2, 2);
        let mut buf = Quantized::compress(&m, 8).to_bytes();
        buf[8] = 33;
        assert!(Quantized::from_bytes(&buf).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn compress_rejects_zero_bits() {
        let _ = Quantized::compress(&Matrix::zeros(1, 1), 0);
    }

    /// The old `compress_with_range`: bucket into an intermediate
    /// `Vec<u32>`, then pack. Kept as the semantic reference for the fused
    /// implementation.
    fn compress_reference(m: &Matrix, bits: u8, min: f32, max: f32) -> Vec<u8> {
        let buckets = 1u32 << bits;
        let range = max - min;
        let codes: Vec<u32> = if range <= 0.0 {
            vec![0; m.len()]
        } else {
            let scale = buckets as f32 / range;
            m.as_slice()
                .iter()
                .map(|&x| {
                    let t = ((x - min) * scale) as i64;
                    t.clamp(0, (buckets - 1) as i64) as u32
                })
                .collect()
        };
        bitpack::pack(&codes, bits)
    }

    #[test]
    fn fused_compress_matches_unfused_reference() {
        let m = Matrix::from_fn(13, 9, |r, c| ((r * 9 + c) as f32 * 0.37).sin() * 3.0);
        for bits in [1u8, 2, 4, 8, 16] {
            let q = Quantized::compress(&m, bits);
            let (min, max) = q.range();
            let mut expected = Vec::new();
            expected.extend_from_slice(&(m.rows() as u32).to_le_bytes());
            expected.extend_from_slice(&(m.cols() as u32).to_le_bytes());
            expected.push(bits);
            expected.extend_from_slice(&min.to_le_bytes());
            expected.extend_from_slice(&max.to_le_bytes());
            expected.extend_from_slice(&compress_reference(&m, bits, min, max));
            assert_eq!(q.to_bytes(), expected, "bits={bits}");
        }
        // Degenerate range: all codes must pack to zero bytes.
        let flat = Matrix::filled(4, 5, 1.25);
        let q = Quantized::compress(&flat, 3);
        assert_eq!(q.to_bytes()[17..], compress_reference(&flat, 3, 1.25, 1.25)[..]);
    }

    proptest! {
        #[test]
        fn quantization_error_bound_holds(
            bits in 1u8..=8,
            vals in proptest::collection::vec(-100.0f32..100.0, 1..100),
        ) {
            let m = Matrix::from_vec(1, vals.len(), vals);
            let q = Quantized::compress(&m, bits);
            let d = q.decompress();
            let bound = q.max_error() + (q.range().1 - q.range().0).abs() * 1e-5 + 1e-6;
            for (a, b) in m.as_slice().iter().zip(d.as_slice()) {
                prop_assert!((a - b).abs() <= bound);
            }
        }

        #[test]
        fn serialization_round_trip(
            bits in 1u8..=16,
            rows in 1usize..8,
            cols in 1usize..8,
            seedv in any::<u64>(),
        ) {
            let m = Matrix::from_fn(rows, cols, |r, c| {
                ((seedv.wrapping_mul((r * 31 + c + 1) as u64) % 1000) as f32) / 500.0 - 1.0
            });
            let q = Quantized::compress(&m, bits);
            prop_assert_eq!(q.to_bytes().len(), q.wire_size());
            prop_assert_eq!(Quantized::from_bytes(&q.to_bytes()).unwrap(), q);
        }
    }
}
