//! Top-k sparsification — the alternative compressor from the paper's
//! related work (Stich et al., "Sparsified SGD with Memory", NeurIPS 2018,
//! the paper's [32]).
//!
//! Instead of quantizing every coordinate, Top-k keeps only the `k` largest
//! magnitudes per message and their indices. It is the natural comparison
//! point for bucket quantization: quantization spends bits uniformly,
//! sparsification concentrates them on the heavy coordinates. Like
//! ResEC-BP, Top-k is classically combined with error feedback — the same
//! [`crate::error`] residual machinery applies unchanged.

use ec_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A top-k sparsified matrix: the `k` largest-magnitude entries with their
/// flat indices, plus the shape.
///
/// ```
/// use ec_compress::TopK;
/// use ec_tensor::Matrix;
/// let g = Matrix::from_vec(1, 4, vec![0.1, -5.0, 0.2, 3.0]);
/// let t = TopK::compress(&g, 2);
/// assert_eq!(t.decompress().as_slice(), &[0.0, -5.0, 0.0, 3.0]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopK {
    rows: usize,
    cols: usize,
    /// Flat indices of the kept entries, strictly increasing.
    indices: Vec<u32>,
    /// Values of the kept entries, aligned with `indices`.
    values: Vec<f32>,
}

impl TopK {
    /// Keeps the `k` largest-magnitude entries of `m` (all entries when
    /// `k >= m.len()`).
    ///
    /// # Panics
    /// Panics if `k == 0` and the matrix is non-empty.
    pub fn compress(m: &Matrix, k: usize) -> Self {
        let len = m.len();
        assert!(k > 0 || len == 0, "k must be positive for non-empty matrices");
        let k = k.min(len);
        // Select the k largest |values| without a full sort.
        let mut order: Vec<u32> = (0..len as u32).collect();
        let data = m.as_slice();
        if k < len {
            order.select_nth_unstable_by(k, |&a, &b| {
                data[b as usize]
                    .abs()
                    .partial_cmp(&data[a as usize].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            order.truncate(k);
        }
        order.sort_unstable();
        let values = order.iter().map(|&i| data[i as usize]).collect();
        Self { rows: m.rows(), cols: m.cols(), indices: order, values }
    }

    /// Reconstructs the dense matrix (non-kept entries are zero).
    pub fn decompress(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        let data = m.as_mut_slice();
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            data[i as usize] = v;
        }
        m
    }

    /// Number of kept entries.
    pub fn k(&self) -> usize {
        self.indices.len()
    }

    /// Bytes on the wire: header + 4-byte index + 4-byte value per entry.
    pub fn wire_size(&self) -> usize {
        4 + 4 + 4 + self.indices.len() * 8
    }

    /// The `k` that makes Top-k's wire size match `B`-bit quantization of
    /// the same matrix: quantization spends `len·B` bits, each kept entry
    /// costs 64 bits, so `k = len·B/64`.
    pub fn budget_matched_k(len: usize, bits: u8) -> usize {
        (len * bits as usize / 64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_tensor::{ops, stats};

    #[test]
    fn keeps_the_largest_magnitudes() {
        let m = Matrix::from_vec(1, 5, vec![0.1, -5.0, 0.2, 3.0, -0.05]);
        let t = TopK::compress(&m, 2);
        let d = t.decompress();
        assert_eq!(d.as_slice(), &[0.0, -5.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn k_larger_than_len_is_lossless() {
        let m = Matrix::from_fn(3, 3, |r, c| (r as f32 - c as f32) * 0.7);
        let t = TopK::compress(&m, 100);
        assert_eq!(t.decompress(), m);
        assert_eq!(t.k(), 9);
    }

    #[test]
    fn indices_are_sorted_and_unique() {
        let m = Matrix::from_fn(4, 4, |r, c| ((r * 4 + c) as f32).sin());
        let t = TopK::compress(&m, 7);
        for w in t.indices.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn reconstruction_error_decreases_with_k() {
        let m = Matrix::from_fn(8, 8, |r, c| ((r * 8 + c) as f32 * 0.37).sin());
        let err = |k: usize| {
            let t = TopK::compress(&m, k);
            stats::l2_norm(&ops::sub(&t.decompress(), &m))
        };
        assert!(err(32) < err(8));
        assert!(err(64) < 1e-6);
    }

    #[test]
    fn topk_is_the_best_k_term_approximation() {
        // No other k-entry subset can have lower L2 error.
        let m = Matrix::from_vec(1, 6, vec![5.0, -4.0, 3.0, -2.0, 1.0, 0.5]);
        let t = TopK::compress(&m, 3);
        let err = stats::l2_norm_sq(&ops::sub(&t.decompress(), &m));
        // Dropping the three smallest: 2² + 1² + 0.5² = 5.25.
        assert!((err - 5.25).abs() < 1e-5);
    }

    #[test]
    fn wire_size_and_budget_match() {
        let len = 1024usize;
        let k = TopK::budget_matched_k(len, 2);
        assert_eq!(k, 32); // 1024·2/64
        let m = Matrix::from_fn(32, 32, |r, c| (r + c) as f32);
        let t = TopK::compress(&m, k);
        // 32 entries × 8 bytes + 12 header = 268 ≈ the 2-bit quantizer's
        // 1024·2/8 = 256 payload bytes.
        assert_eq!(t.wire_size(), 12 + 32 * 8);
    }

    #[test]
    fn error_feedback_composes_with_topk() {
        // Same bias-removal property ResEC-BP relies on, with Top-k as the
        // compressor: the running average of fed-back compressions converges
        // to the true value.
        let g = Matrix::from_vec(1, 8, vec![0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let mut residual = Matrix::zeros(1, 8);
        let mut sum = Matrix::zeros(1, 8);
        let iters = 400;
        for _ in 0..iters {
            let compensated = ops::add(&g, &residual);
            let t = TopK::compress(&compensated, 2);
            let sent = t.decompress();
            residual = ops::sub(&compensated, &sent);
            ops::add_assign(&mut sum, &sent);
        }
        let avg = ops::scale(&sum, 1.0 / iters as f32);
        let bias = stats::l1_norm(&ops::sub(&avg, &g));
        assert!(bias < 0.05, "error feedback failed to debias top-k: {bias}");
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = Matrix::zeros(0, 4);
        let t = TopK::compress(&m, 1);
        assert_eq!(t.k(), 0);
        assert_eq!(t.decompress().shape(), (0, 4));
    }
}
