//! Compression residuals and error accounting.
//!
//! Both compensation algorithms are built on the residual
//! `δ = X - C_bits(X)`:
//!
//! * ReqEC-FP's Selector ranks candidate approximations by per-vertex L1
//!   residual (Eq. 10);
//! * ResEC-BP carries the residual forward as error-feedback memory
//!   (Eqs. 11–12), whose squared L2 norm Theorem 1 bounds.

use crate::quantize::Quantized;
use ec_tensor::{ops, stats, Matrix};

/// `X - decompress(compress(X))`, the residual a single compression step
/// leaves behind.
pub fn residual(original: &Matrix, q: &Quantized) -> Matrix {
    ops::sub(original, &q.decompress())
}

/// Convenience: compresses and returns `(compressed, residual)` in one step.
pub fn compress_with_residual(m: &Matrix, bits: u8) -> (Quantized, Matrix) {
    let q = Quantized::compress(m, bits);
    let r = residual(m, &q);
    (q, r)
}

/// Relative compression error `‖X - C(X)‖₂ / ‖X‖₂` (the `α` of the paper's
/// Eq. 13 when measured empirically).
pub fn relative_error(original: &Matrix, q: &Quantized) -> f32 {
    let denom = stats::l2_norm(original);
    if denom == 0.0 {
        0.0
    } else {
        stats::l2_norm(&residual(original, q)) / denom
    }
}

/// Mean absolute error of reconstruction.
pub fn mean_abs_error(original: &Matrix, q: &Quantized) -> f32 {
    if original.is_empty() {
        return 0.0;
    }
    stats::l1_norm(&residual(original, q)) / original.len() as f32
}

/// The Theorem-1 upper bound on `E‖δ_{t,l}‖²`:
/// `(1+α)^{L-l} · G² / (1 - α²(1 + 1/ρ))`.
///
/// Returns `None` when the bound's precondition `α² (1 + 1/ρ) < 1` fails.
pub fn theorem1_bound(
    alpha: f64,
    rho: f64,
    grad_norm_sq: f64,
    num_layers: usize,
    layer: usize,
) -> Option<f64> {
    assert!(layer >= 1 && layer <= num_layers, "layer out of range");
    let denom = 1.0 - alpha * alpha * (1.0 + 1.0 / rho);
    if denom <= 0.0 || rho <= 0.0 {
        return None;
    }
    Some((1.0 + alpha).powi((num_layers - layer) as i32) * grad_norm_sq / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn residual_is_zero_for_exact_reconstruction() {
        let m = Matrix::filled(2, 2, 1.0);
        let (_, r) = compress_with_residual(&m, 4);
        assert!(stats::l2_norm(&r) < 1e-6);
    }

    #[test]
    fn residual_shrinks_with_more_bits() {
        let m = Matrix::from_fn(16, 16, |r, c| ((r * 16 + c) as f32).sin());
        let (_, r2) = compress_with_residual(&m, 2);
        let (_, r8) = compress_with_residual(&m, 8);
        assert!(stats::l2_norm(&r8) < stats::l2_norm(&r2) / 10.0);
    }

    #[test]
    fn relative_error_of_zero_matrix_is_zero() {
        let m = Matrix::zeros(3, 3);
        let q = Quantized::compress(&m, 2);
        assert_eq!(relative_error(&m, &q), 0.0);
    }

    #[test]
    fn mean_abs_error_matches_hand_computation() {
        let m = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        // B=1, range [0,1]: midpoints 0.25 / 0.75 → errors 0.25 each.
        let q = Quantized::compress_with_range(&m, 1, 0.0, 1.0);
        assert!((mean_abs_error(&m, &q) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn theorem1_bound_monotone_in_layer_depth() {
        // Shallower layers (smaller l) accumulate more error.
        let b1 = theorem1_bound(0.3, 2.0, 1.0, 3, 1).unwrap();
        let b3 = theorem1_bound(0.3, 2.0, 1.0, 3, 3).unwrap();
        assert!(b1 > b3);
    }

    #[test]
    fn theorem1_bound_requires_small_alpha() {
        // α²(1+1/ρ) ≥ 1 → no bound.
        assert!(theorem1_bound(1.0, 1.0, 1.0, 2, 1).is_none());
        assert!(theorem1_bound(0.5, 2.0, 1.0, 2, 1).is_some());
    }

    proptest! {
        #[test]
        fn relative_error_below_one_for_nonzero(
            vals in proptest::collection::vec(0.01f32..1.0, 4..64),
            bits in 2u8..=8,
        ) {
            let m = Matrix::from_vec(1, vals.len(), vals);
            let q = Quantized::compress(&m, bits);
            prop_assert!(relative_error(&m, &q) < 1.0);
        }
    }
}
