//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] declares *what can go wrong* — per-link message drop,
//! duplication and corruption probabilities, per-node straggler slowdowns,
//! transient link outages over superstep windows, and whole-worker crashes
//! at given epochs. A [`FaultInjector`] turns the plan into per-message
//! decisions.
//!
//! Decisions are **stateless hashes** of `(seed, superstep, from, to,
//! message index)`: the same plan over the same traffic always produces the
//! same faults, independent of how many other links are sending — which
//! keeps every experiment reproducible and lets `FaultPlan::none()` stay
//! bit-identical to a fault-free run (no generator state is threaded
//! through the send path at all).
//!
//! The crate is policy-free: it only answers "what happens to this
//! message". Retry accounting lives in `ec-comm` and recovery policy
//! (retry, EC-degrade, checkpoint/restore) in `ec-graph`.

use serde::{Deserialize, Serialize};

/// What the network does with one transmitted message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// The message arrives intact.
    Deliver,
    /// The message is lost in transit (sender pays, receiver times out).
    Drop,
    /// The message arrives twice (one redundant copy of the payload).
    Duplicate,
    /// The message arrives but fails its checksum — observable garbage,
    /// handled like a drop by the receiver but paid for on both NICs.
    Corrupt,
}

/// Per-link fault probabilities. All default to `0.0` (a perfect link).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability a message is silently lost.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability a message arrives corrupted (checksum failure).
    pub corrupt_p: f64,
}

impl LinkFaults {
    /// A perfect link.
    pub fn none() -> Self {
        Self::default()
    }

    /// A link dropping messages with probability `p`.
    pub fn dropping(p: f64) -> Self {
        Self { drop_p: p, ..Self::default() }
    }

    /// True when every probability is zero.
    pub fn is_none(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.corrupt_p == 0.0
    }

    fn validate(&self) -> Result<(), String> {
        for (name, p) in
            [("drop_p", self.drop_p), ("dup_p", self.dup_p), ("corrupt_p", self.corrupt_p)]
        {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} = {p} out of [0, 1]"));
            }
        }
        if self.drop_p + self.dup_p + self.corrupt_p > 1.0 {
            return Err("fault probabilities sum above 1".into());
        }
        Ok(())
    }
}

/// A transient link outage: every message on the matching links is dropped
/// while `start <= superstep < end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// Sending node, or `None` for "any sender".
    pub from: Option<usize>,
    /// Receiving node, or `None` for "any receiver".
    pub to: Option<usize>,
    /// First affected superstep (inclusive).
    pub start: u64,
    /// First superstep after the outage (exclusive).
    pub end: u64,
}

impl Outage {
    /// True when the outage covers `(superstep, from, to)`.
    pub fn covers(&self, superstep: u64, from: usize, to: usize) -> bool {
        (self.start..self.end).contains(&superstep)
            && self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
    }
}

/// A whole-worker crash: the worker dies while executing epoch `epoch`,
/// losing all in-memory state. The trainer restores from the latest
/// checkpoint and replays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// The crashing worker.
    pub worker: usize,
    /// The epoch during which the crash strikes (0-based).
    pub epoch: usize,
}

/// The complete fault schedule of one simulated run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the stateless per-message hashes.
    pub seed: u64,
    /// Fault probabilities applied to every link without an override.
    pub link: LinkFaults,
    /// Per-link `(from, to)` overrides of [`FaultPlan::link`].
    pub link_overrides: Vec<((usize, usize), LinkFaults)>,
    /// `(node, factor)` slowdowns: the node's compute and NIC time are
    /// multiplied by `factor` (≥ 1).
    pub stragglers: Vec<(usize, f64)>,
    /// Transient link outages.
    pub outages: Vec<Outage>,
    /// Worker crashes, handled by the trainer via checkpoint/restore.
    pub crashes: Vec<CrashEvent>,
    /// Timeout-detection cost of one failed delivery, in units of the
    /// network model's latency (charged to both endpoints).
    pub timeout_latencies: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults of any kind. A network built with this
    /// plan behaves bit-identically to one built without fault support.
    pub fn none() -> Self {
        Self {
            seed: 0,
            link: LinkFaults::none(),
            link_overrides: Vec::new(),
            stragglers: Vec::new(),
            outages: Vec::new(),
            crashes: Vec::new(),
            timeout_latencies: 4.0,
        }
    }

    /// A plan dropping every message with probability `p` on every link.
    pub fn uniform_drop(seed: u64, p: f64) -> Self {
        Self { seed, link: LinkFaults::dropping(p), ..Self::none() }
    }

    /// Adds a straggler: `node`'s compute and NIC times are scaled by
    /// `factor`.
    pub fn with_straggler(mut self, node: usize, factor: f64) -> Self {
        self.stragglers.push((node, factor));
        self
    }

    /// Adds a link outage over `[start, end)` supersteps; `None` endpoints
    /// are wildcards.
    pub fn with_outage(
        mut self,
        from: Option<usize>,
        to: Option<usize>,
        start: u64,
        end: u64,
    ) -> Self {
        self.outages.push(Outage { from, to, start, end });
        self
    }

    /// Adds a worker crash at the given epoch.
    pub fn with_crash(mut self, worker: usize, epoch: usize) -> Self {
        self.crashes.push(CrashEvent { worker, epoch });
        self
    }

    /// True when the plan can never produce a fault (stragglers at factor 1
    /// included), so fault machinery can be skipped entirely.
    pub fn is_none(&self) -> bool {
        self.link.is_none()
            && self.link_overrides.iter().all(|(_, l)| l.is_none())
            && self.stragglers.iter().all(|&(_, f)| f == 1.0)
            && self.outages.iter().all(|o| o.start >= o.end)
            && self.crashes.is_empty()
    }

    /// Checks internal consistency (probability ranges, straggler factors).
    pub fn validate(&self) -> Result<(), String> {
        self.link.validate()?;
        for ((from, to), link) in &self.link_overrides {
            link.validate().map_err(|e| format!("link ({from}, {to}): {e}"))?;
        }
        for &(node, factor) in &self.stragglers {
            if !factor.is_finite() || factor < 1.0 {
                return Err(format!("straggler factor {factor} for node {node} not >= 1"));
            }
        }
        if self.timeout_latencies.is_nan() || self.timeout_latencies < 0.0 {
            return Err(format!("timeout_latencies {} negative", self.timeout_latencies));
        }
        Ok(())
    }
}

/// Turns a [`FaultPlan`] into deterministic per-message decisions.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Builds the injector.
    ///
    /// # Panics
    /// Panics when the plan fails [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate().expect("invalid fault plan");
        Self { plan }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault probabilities for the link `from → to`.
    pub fn link_faults(&self, from: usize, to: usize) -> LinkFaults {
        self.plan
            .link_overrides
            .iter()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|&(_, l)| l)
            .unwrap_or(self.plan.link)
    }

    /// True when an outage covers `(superstep, from, to)`.
    pub fn link_out(&self, superstep: u64, from: usize, to: usize) -> bool {
        self.plan.outages.iter().any(|o| o.covers(superstep, from, to))
    }

    /// The fate of message number `msg_index` (within the superstep) on
    /// link `from → to`. Pure: identical arguments always yield identical
    /// decisions.
    pub fn decide(&self, superstep: u64, from: usize, to: usize, msg_index: u64) -> FaultDecision {
        if self.link_out(superstep, from, to) {
            return FaultDecision::Drop;
        }
        let faults = self.link_faults(from, to);
        if faults.is_none() {
            return FaultDecision::Deliver;
        }
        let u = unit_f64(mix(self.plan.seed, superstep, from as u64, to as u64, msg_index));
        if u < faults.drop_p {
            FaultDecision::Drop
        } else if u < faults.drop_p + faults.corrupt_p {
            FaultDecision::Corrupt
        } else if u < faults.drop_p + faults.corrupt_p + faults.dup_p {
            FaultDecision::Duplicate
        } else {
            FaultDecision::Deliver
        }
    }

    /// The straggler slowdown of `node` (1.0 when none).
    pub fn straggler_factor(&self, node: usize) -> f64 {
        self.plan.stragglers.iter().find(|&&(n, _)| n == node).map_or(1.0, |&(_, f)| f)
    }

    /// The timeout-detection cost of one failed delivery, given the
    /// network's per-message latency.
    pub fn timeout_cost(&self, latency: f64) -> f64 {
        self.plan.timeout_latencies * latency
    }
}

/// SplitMix64-style stateless mixer over the five key components.
fn mix(seed: u64, superstep: u64, from: u64, to: u64, msg: u64) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for x in [superstep, from, to, msg] {
        h ^= x.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31);
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 29;
    }
    h ^= h >> 32;
    h.wrapping_mul(0xD6E8_FEB8_6659_FD93)
}

fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_always_delivers() {
        let inj = FaultInjector::new(FaultPlan::none());
        for s in 0..20 {
            for m in 0..50 {
                assert_eq!(inj.decide(s, 0, 1, m), FaultDecision::Deliver);
            }
        }
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::uniform_drop(42, 0.3);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        for s in 0..10 {
            for m in 0..100 {
                assert_eq!(a.decide(s, 1, 2, m), b.decide(s, 1, 2, m));
            }
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let inj = FaultInjector::new(FaultPlan::uniform_drop(7, 0.2));
        let n = 20_000;
        let drops = (0..n).filter(|&m| inj.decide(0, 0, 1, m) == FaultDecision::Drop).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn mixed_faults_partition_the_unit_interval() {
        let plan = FaultPlan {
            seed: 3,
            link: LinkFaults { drop_p: 0.1, dup_p: 0.1, corrupt_p: 0.1 },
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan);
        let n = 30_000u64;
        let mut counts = [0usize; 4];
        for m in 0..n {
            match inj.decide(1, 2, 3, m) {
                FaultDecision::Deliver => counts[0] += 1,
                FaultDecision::Drop => counts[1] += 1,
                FaultDecision::Duplicate => counts[2] += 1,
                FaultDecision::Corrupt => counts[3] += 1,
            }
        }
        for &faulty in &counts[1..] {
            let rate = faulty as f64 / n as f64;
            assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
        }
        assert!(counts[0] as f64 / n as f64 > 0.65);
    }

    #[test]
    fn link_overrides_take_precedence() {
        let plan = FaultPlan {
            seed: 1,
            link: LinkFaults::dropping(1.0),
            link_overrides: vec![((0, 1), LinkFaults::none())],
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(0, 0, 1, 0), FaultDecision::Deliver);
        assert_eq!(inj.decide(0, 1, 0, 0), FaultDecision::Drop);
    }

    #[test]
    fn outage_drops_everything_in_window() {
        let plan = FaultPlan::none().with_outage(Some(0), Some(1), 5, 8);
        let inj = FaultInjector::new(plan);
        for s in 5..8 {
            assert_eq!(inj.decide(s, 0, 1, 0), FaultDecision::Drop);
        }
        assert_eq!(inj.decide(4, 0, 1, 0), FaultDecision::Deliver);
        assert_eq!(inj.decide(8, 0, 1, 0), FaultDecision::Deliver);
        // Other links are unaffected.
        assert_eq!(inj.decide(6, 1, 0, 0), FaultDecision::Deliver);
    }

    #[test]
    fn wildcard_outage_covers_all_links() {
        let plan = FaultPlan::none().with_outage(None, None, 2, 3);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(2, 3, 4, 9), FaultDecision::Drop);
        assert_eq!(inj.decide(3, 3, 4, 9), FaultDecision::Deliver);
    }

    #[test]
    fn straggler_factors_resolve_per_node() {
        let plan = FaultPlan::none().with_straggler(2, 4.0);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.straggler_factor(2), 4.0);
        assert_eq!(inj.straggler_factor(0), 1.0);
    }

    #[test]
    fn crash_schedule_is_carried() {
        let plan = FaultPlan::none().with_crash(1, 10);
        assert_eq!(plan.crashes, vec![CrashEvent { worker: 1, epoch: 10 }]);
        assert!(!plan.is_none());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::uniform_drop(0, 1.5).validate().is_err());
        assert!(FaultPlan::uniform_drop(0, -0.1).validate().is_err());
        let sum_over = FaultPlan {
            link: LinkFaults { drop_p: 0.6, dup_p: 0.3, corrupt_p: 0.3 },
            ..FaultPlan::none()
        };
        assert!(sum_over.validate().is_err());
        assert!(FaultPlan::none().with_straggler(0, 0.5).validate().is_err());
        assert!(FaultPlan::none().validate().is_ok());
    }

    #[test]
    fn different_seeds_give_different_fault_patterns() {
        let a = FaultInjector::new(FaultPlan::uniform_drop(1, 0.5));
        let b = FaultInjector::new(FaultPlan::uniform_drop(2, 0.5));
        let pattern = |inj: &FaultInjector| -> Vec<FaultDecision> {
            (0..64).map(|m| inj.decide(0, 0, 1, m)).collect()
        };
        assert_ne!(pattern(&a), pattern(&b));
    }
}
