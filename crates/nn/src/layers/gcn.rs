//! Full-batch graph convolutional network (Kipf & Welling).
//!
//! Per layer: `H^{l} = σ(Â (H^{l-1} W^{l-1}) + b^{l-1})` with ReLU between
//! layers and raw logits at the output. Following the paper's DGL-style
//! "message-aggregating optimization", the feature transform `H·W` runs
//! before the aggregation `Â·(HW)` — for `in-dim > out-dim` this is the
//! cheaper association order, and for a symmetric `Â` it is exactly Eq. 2.
//!
//! This type is the single-machine reference trainer (the paper's DGL/PyG
//! baselines) and the ground truth the distributed engine's manual
//! gradients are tested against.

use crate::loss::masked_softmax_cross_entropy;
use crate::optim::Adam;
use crate::tape::Tape;
use ec_tensor::{init, CsrMatrix, Matrix};
use std::sync::Arc;

/// A trainable GCN with an arbitrary number of layers.
#[derive(Clone, Debug)]
pub struct GcnNetwork {
    weights: Vec<Matrix>,
    biases: Vec<Matrix>, // each 1 × d_out
    adam: Adam,
}

impl GcnNetwork {
    /// Creates a GCN with layer dimensions `dims = [d₀, h₁, …, C]`
    /// (so `dims.len() - 1` layers), Xavier-initialized from `seed`.
    ///
    /// # Panics
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], lr: f32, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let weights: Vec<Matrix> = dims
            .windows(2)
            .enumerate()
            .map(|(l, w)| init::xavier_uniform(w[0], w[1], seed.wrapping_add(l as u64)))
            .collect();
        let biases: Vec<Matrix> = dims[1..].iter().map(|&d| Matrix::zeros(1, d)).collect();
        let mut shapes: Vec<(usize, usize)> = weights.iter().map(|w| w.shape()).collect();
        shapes.extend(biases.iter().map(|b| b.shape()));
        let adam = Adam::new(&shapes, lr);
        Self { weights, biases, adam }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Borrow the current weights (layer-major).
    pub fn weights(&self) -> &[Matrix] {
        &self.weights
    }

    /// Borrow the current biases (each `1 × d_out`).
    pub fn biases(&self) -> &[Matrix] {
        &self.biases
    }

    /// Overwrites parameters — used to start baselines from identical
    /// initial states.
    pub fn set_params(&mut self, weights: &[Matrix], biases: &[Matrix]) {
        assert_eq!(weights.len(), self.weights.len(), "layer count mismatch");
        assert_eq!(biases.len(), self.biases.len(), "layer count mismatch");
        for (dst, src) in self.weights.iter_mut().zip(weights) {
            assert_eq!(dst.shape(), src.shape(), "weight shape mismatch");
            *dst = src.clone();
        }
        for (dst, src) in self.biases.iter_mut().zip(biases) {
            assert_eq!(dst.shape(), src.shape(), "bias shape mismatch");
            *dst = src.clone();
        }
    }

    /// Inference-only forward pass: returns the logits.
    pub fn forward(&self, adj: &Arc<CsrMatrix>, features: &Matrix) -> Matrix {
        let mut h = features.clone();
        for l in 0..self.num_layers() {
            let xw = ec_tensor::ops::matmul(&h, &self.weights[l]);
            let mut z = adj.spmm(&xw);
            z = ec_tensor::ops::add_bias(&z, self.biases[l].row(0));
            h = if l + 1 < self.num_layers() { ec_tensor::activations::relu(&z) } else { z };
        }
        h
    }

    /// One full-batch training epoch: forward, masked loss, backward, Adam.
    /// Returns the training loss.
    pub fn train_epoch(
        &mut self,
        adj: &Arc<CsrMatrix>,
        features: &Matrix,
        labels: &[u32],
        train_mask: &[usize],
    ) -> f32 {
        let mut tape = Tape::new();
        let x = tape.constant(features.clone());
        let w_ids: Vec<_> = self.weights.iter().map(|w| tape.parameter(w.clone())).collect();
        let b_ids: Vec<_> = self.biases.iter().map(|b| tape.parameter(b.clone())).collect();
        let mut h = x;
        for l in 0..self.num_layers() {
            let xw = tape.matmul(h, w_ids[l]);
            let agg = tape.spmm(Arc::clone(adj), xw);
            let z = tape.add_bias(agg, b_ids[l]);
            h = if l + 1 < self.num_layers() { tape.relu(z) } else { z };
        }
        let (loss, grad) = masked_softmax_cross_entropy(tape.value(h), labels, train_mask);
        tape.backward(h, grad);

        let mut params: Vec<Matrix> = Vec::with_capacity(self.weights.len() * 2);
        params.extend(self.weights.iter().cloned());
        params.extend(self.biases.iter().cloned());
        let grads: Vec<Matrix> = w_ids
            .iter()
            .chain(&b_ids)
            .map(|&id| tape.grad(id).expect("parameter missing gradient").clone())
            .collect();
        self.adam.step(&mut params, &grads);
        let nl = self.weights.len();
        self.weights = params[..nl].to_vec();
        self.biases = params[nl..].to_vec();
        loss
    }

    /// Gradients only (no update) — used by tests to compare against the
    /// distributed engine's manual backward pass.
    pub fn compute_gradients(
        &self,
        adj: &Arc<CsrMatrix>,
        features: &Matrix,
        labels: &[u32],
        train_mask: &[usize],
    ) -> (f32, Vec<Matrix>, Vec<Matrix>) {
        let mut tape = Tape::new();
        let x = tape.constant(features.clone());
        let w_ids: Vec<_> = self.weights.iter().map(|w| tape.parameter(w.clone())).collect();
        let b_ids: Vec<_> = self.biases.iter().map(|b| tape.parameter(b.clone())).collect();
        let mut h = x;
        for l in 0..self.num_layers() {
            let xw = tape.matmul(h, w_ids[l]);
            let agg = tape.spmm(Arc::clone(adj), xw);
            let z = tape.add_bias(agg, b_ids[l]);
            h = if l + 1 < self.num_layers() { tape.relu(z) } else { z };
        }
        let (loss, grad) = masked_softmax_cross_entropy(tape.value(h), labels, train_mask);
        tape.backward(h, grad);
        let gw = w_ids.iter().map(|&id| tape.grad(id).unwrap().clone()).collect();
        let gb = b_ids.iter().map(|&id| tape.grad(id).unwrap().clone()).collect();
        (loss, gw, gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use ec_graph_data::{generators, normalize};

    fn toy_problem() -> (Arc<CsrMatrix>, Matrix, Vec<u32>, Vec<usize>, Vec<usize>) {
        let (g, labels) = generators::sbm(60, 3, 0.4, 0.02, 11);
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&g));
        let features = ec_graph_data::datasets::class_features(&labels, 3, 8, 0.3, 5);
        let train: Vec<usize> = (0..30).collect();
        let test: Vec<usize> = (30..60).collect();
        (adj, features, labels, train, test)
    }

    #[test]
    fn construction_shapes() {
        let net = GcnNetwork::new(&[8, 16, 3], 0.01, 1);
        assert_eq!(net.num_layers(), 2);
        assert_eq!(net.weights()[0].shape(), (8, 16));
        assert_eq!(net.weights()[1].shape(), (16, 3));
        assert_eq!(net.biases()[1].shape(), (1, 3));
    }

    #[test]
    fn forward_output_shape() {
        let (adj, x, _, _, _) = toy_problem();
        let net = GcnNetwork::new(&[8, 16, 3], 0.01, 1);
        let logits = net.forward(&adj, &x);
        assert_eq!(logits.shape(), (60, 3));
    }

    #[test]
    fn loss_decreases_during_training() {
        let (adj, x, labels, train, _) = toy_problem();
        let mut net = GcnNetwork::new(&[8, 16, 3], 0.02, 2);
        let first = net.train_epoch(&adj, &x, &labels, &train);
        let mut last = first;
        for _ in 0..40 {
            last = net.train_epoch(&adj, &x, &labels, &train);
        }
        assert!(last < first * 0.5, "loss {first} → {last} did not halve");
    }

    #[test]
    fn learns_the_planted_classes() {
        let (adj, x, labels, train, test) = toy_problem();
        let mut net = GcnNetwork::new(&[8, 16, 3], 0.02, 3);
        for _ in 0..100 {
            net.train_epoch(&adj, &x, &labels, &train);
        }
        let logits = net.forward(&adj, &x);
        let acc = accuracy(&logits, &labels, &test);
        assert!(acc > 0.85, "test accuracy {acc} too low");
    }

    #[test]
    fn compute_gradients_matches_train_direction() {
        let (adj, x, labels, train, _) = toy_problem();
        let net = GcnNetwork::new(&[8, 16, 3], 0.02, 4);
        let (loss, gw, gb) = net.compute_gradients(&adj, &x, &labels, &train);
        assert!(loss > 0.0);
        assert_eq!(gw.len(), 2);
        assert_eq!(gb.len(), 2);
        assert!(ec_tensor::stats::l2_norm(&gw[0]) > 0.0);
    }

    #[test]
    fn set_params_round_trips() {
        let a = GcnNetwork::new(&[4, 8, 2], 0.01, 5);
        let mut b = GcnNetwork::new(&[4, 8, 2], 0.01, 6);
        b.set_params(a.weights(), a.biases());
        assert_eq!(a.weights()[0], b.weights()[0]);
    }

    #[test]
    fn three_layer_network_trains() {
        let (adj, x, labels, train, _) = toy_problem();
        let mut net = GcnNetwork::new(&[8, 16, 16, 3], 0.02, 7);
        let first = net.train_epoch(&adj, &x, &labels, &train);
        for _ in 0..60 {
            net.train_epoch(&adj, &x, &labels, &train);
        }
        let last = net.train_epoch(&adj, &x, &labels, &train);
        assert!(last < first, "3-layer loss did not decrease");
    }
}
