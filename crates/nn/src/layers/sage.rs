//! GraphSAGE with mean aggregation.
//!
//! Per layer: `H^{l} = σ(D̃^{-1}(A+I) H^{l-1} W_n + H^{l-1} W_s + b)` — a
//! mean over the closed neighbourhood transformed by `W_n`, plus a separate
//! self/root transform `W_s`. The paper states GraphSAGE "enjoys similar
//! performance improvements" from EC-Graph's optimizations; this network
//! lets the reproduction verify that claim.

use crate::loss::masked_softmax_cross_entropy;
use crate::optim::Adam;
use crate::tape::Tape;
use ec_tensor::{init, CsrMatrix, Matrix};
use std::sync::Arc;

/// A trainable mean-aggregator GraphSAGE network.
#[derive(Clone, Debug)]
pub struct SageNetwork {
    w_neigh: Vec<Matrix>,
    w_self: Vec<Matrix>,
    biases: Vec<Matrix>,
    adam: Adam,
}

impl SageNetwork {
    /// Creates a SAGE network with layer dimensions `dims = [d₀, h₁, …, C]`.
    pub fn new(dims: &[usize], lr: f32, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let w_neigh: Vec<Matrix> = dims
            .windows(2)
            .enumerate()
            .map(|(l, w)| init::xavier_uniform(w[0], w[1], seed.wrapping_add(2 * l as u64)))
            .collect();
        let w_self: Vec<Matrix> = dims
            .windows(2)
            .enumerate()
            .map(|(l, w)| init::xavier_uniform(w[0], w[1], seed.wrapping_add(2 * l as u64 + 1)))
            .collect();
        let biases: Vec<Matrix> = dims[1..].iter().map(|&d| Matrix::zeros(1, d)).collect();
        let mut shapes: Vec<(usize, usize)> = w_neigh.iter().map(|w| w.shape()).collect();
        shapes.extend(w_self.iter().map(|w| w.shape()));
        shapes.extend(biases.iter().map(|b| b.shape()));
        let adam = Adam::new(&shapes, lr);
        Self { w_neigh, w_self, biases, adam }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.w_neigh.len()
    }

    /// Inference-only forward pass over the mean-aggregation matrix
    /// (`ec_graph_data::normalize::row_normalized_adjacency`).
    pub fn forward(&self, mean_adj: &Arc<CsrMatrix>, features: &Matrix) -> Matrix {
        let mut h = features.clone();
        for l in 0..self.num_layers() {
            let hn = mean_adj.spmm(&ec_tensor::ops::matmul(&h, &self.w_neigh[l]));
            let hs = ec_tensor::ops::matmul(&h, &self.w_self[l]);
            let mut z = ec_tensor::ops::add(&hn, &hs);
            z = ec_tensor::ops::add_bias(&z, self.biases[l].row(0));
            h = if l + 1 < self.num_layers() { ec_tensor::activations::relu(&z) } else { z };
        }
        h
    }

    /// One full-batch training epoch; returns the training loss.
    pub fn train_epoch(
        &mut self,
        mean_adj: &Arc<CsrMatrix>,
        features: &Matrix,
        labels: &[u32],
        train_mask: &[usize],
    ) -> f32 {
        let mut tape = Tape::new();
        let x = tape.constant(features.clone());
        let wn_ids: Vec<_> = self.w_neigh.iter().map(|w| tape.parameter(w.clone())).collect();
        let ws_ids: Vec<_> = self.w_self.iter().map(|w| tape.parameter(w.clone())).collect();
        let b_ids: Vec<_> = self.biases.iter().map(|b| tape.parameter(b.clone())).collect();
        let mut h = x;
        for l in 0..self.num_layers() {
            let hw = tape.matmul(h, wn_ids[l]);
            let hn = tape.spmm(Arc::clone(mean_adj), hw);
            let hs = tape.matmul(h, ws_ids[l]);
            let sum = tape.add(hn, hs);
            let z = tape.add_bias(sum, b_ids[l]);
            h = if l + 1 < self.num_layers() { tape.relu(z) } else { z };
        }
        let (loss, grad) = masked_softmax_cross_entropy(tape.value(h), labels, train_mask);
        tape.backward(h, grad);

        let nl = self.num_layers();
        let mut params: Vec<Matrix> = Vec::with_capacity(nl * 3);
        params.extend(self.w_neigh.iter().cloned());
        params.extend(self.w_self.iter().cloned());
        params.extend(self.biases.iter().cloned());
        let grads: Vec<Matrix> = wn_ids
            .iter()
            .chain(&ws_ids)
            .chain(&b_ids)
            .map(|&id| tape.grad(id).expect("parameter missing gradient").clone())
            .collect();
        self.adam.step(&mut params, &grads);
        self.w_neigh = params[..nl].to_vec();
        self.w_self = params[nl..2 * nl].to_vec();
        self.biases = params[2 * nl..].to_vec();
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use ec_graph_data::{generators, normalize};

    #[test]
    fn sage_learns_planted_classes() {
        let (g, labels) = generators::sbm(60, 3, 0.4, 0.02, 21);
        let adj = Arc::new(normalize::row_normalized_adjacency(&g));
        let features = ec_graph_data::datasets::class_features(&labels, 3, 8, 0.3, 6);
        let train: Vec<usize> = (0..30).collect();
        let test: Vec<usize> = (30..60).collect();
        let mut net = SageNetwork::new(&[8, 16, 3], 0.02, 1);
        let first = net.train_epoch(&adj, &features, &labels, &train);
        for _ in 0..100 {
            net.train_epoch(&adj, &features, &labels, &train);
        }
        let last = net.train_epoch(&adj, &features, &labels, &train);
        assert!(last < first);
        let acc = accuracy(&net.forward(&adj, &features), &labels, &test);
        assert!(acc > 0.8, "test accuracy {acc}");
    }

    #[test]
    fn forward_shape() {
        let (g, labels) = generators::sbm(20, 2, 0.4, 0.05, 3);
        let adj = Arc::new(normalize::row_normalized_adjacency(&g));
        let features = ec_graph_data::datasets::class_features(&labels, 2, 4, 0.2, 2);
        let net = SageNetwork::new(&[4, 8, 2], 0.01, 2);
        assert_eq!(net.forward(&adj, &features).shape(), (20, 2));
    }
}
