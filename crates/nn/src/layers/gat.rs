//! Graph attention network (GAT) layer with hand-derived gradients.
//!
//! The paper names GAT as the third model EC-Graph supports: "Graph
//! Attention Networks (GAT) fetches embeddings from in-neighbors in FP and
//! embedding gradients from out-neighbors in BP" — i.e. it exchanges the
//! same two message types as GCN, over projected embeddings `P = H·W`.
//! This module provides the single-machine reference implementation
//! (single attention head, the Veličković et al. formulation):
//!
//! ```text
//! P   = H W
//! e_vu = LeakyReLU(P_v·a_s + P_u·a_n)        u ∈ N(v) ∪ {v}
//! α_v· = softmax_u(e_vu)
//! Z_v  = Σ_u α_vu P_u + b
//! ```
//!
//! Every gradient is validated against central finite differences in the
//! tests — the same methodology that pinned down the engine's manual
//! GCN/SAGE backward passes.

#![allow(clippy::needless_range_loop)] // vertex ids are semantic, not positions

use crate::loss::masked_softmax_cross_entropy;
use crate::optim::Adam;
use ec_graph_data::Graph;
use ec_tensor::{init, ops, Matrix};

const LEAKY_SLOPE: f32 = 0.2;

#[inline]
fn leaky(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        LEAKY_SLOPE * x
    }
}

#[inline]
fn leaky_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        LEAKY_SLOPE
    }
}

/// One single-head GAT layer's parameters.
#[derive(Clone, Debug)]
pub struct GatLayer {
    /// Feature projection `W` (`d_in × d_out`).
    pub w: Matrix,
    /// Attention vector for the *target* role (`1 × d_out`).
    pub a_self: Matrix,
    /// Attention vector for the *neighbour* role (`1 × d_out`).
    pub a_neigh: Matrix,
    /// Output bias (`1 × d_out`).
    pub bias: Matrix,
}

/// Intermediate state the backward pass needs.
pub struct GatCache {
    h: Matrix,
    p: Matrix,
    s: Vec<f32>,
    t: Vec<f32>,
    /// Attention weights per vertex over its closed neighbourhood, aligned
    /// with [`closed_neighbors`] order (self first, then `Graph::neighbors`).
    alpha: Vec<Vec<f32>>,
}

/// Gradients for one layer.
pub struct GatGrads {
    /// `∂L/∂W`.
    pub w: Matrix,
    /// `∂L/∂a_self`.
    pub a_self: Matrix,
    /// `∂L/∂a_neigh`.
    pub a_neigh: Matrix,
    /// `∂L/∂b`.
    pub bias: Matrix,
    /// `∂L/∂H` (for stacking layers).
    pub h: Matrix,
}

fn closed_neighbors(g: &Graph, v: usize) -> impl Iterator<Item = usize> + '_ {
    std::iter::once(v).chain(g.neighbors(v).iter().map(|&u| u as usize))
}

impl GatLayer {
    /// Xavier-initialized layer.
    pub fn new(d_in: usize, d_out: usize, seed: u64) -> Self {
        Self {
            w: init::xavier_uniform(d_in, d_out, seed),
            a_self: init::xavier_uniform(1, d_out, seed.wrapping_add(1)),
            a_neigh: init::xavier_uniform(1, d_out, seed.wrapping_add(2)),
            bias: Matrix::zeros(1, d_out),
        }
    }

    /// Forward pass: returns the pre-activation `Z` and the cache for
    /// [`Self::backward`].
    pub fn forward(&self, g: &Graph, h: &Matrix) -> (Matrix, GatCache) {
        let n = g.num_vertices();
        assert_eq!(h.rows(), n, "feature rows must match the vertex count");
        let p = ops::matmul(h, &self.w);
        let d_out = p.cols();
        let dot =
            |row: &[f32], a: &Matrix| -> f32 { row.iter().zip(a.row(0)).map(|(x, y)| x * y).sum() };
        let s: Vec<f32> = (0..n).map(|v| dot(p.row(v), &self.a_self)).collect();
        let t: Vec<f32> = (0..n).map(|v| dot(p.row(v), &self.a_neigh)).collect();

        let mut z = Matrix::zeros(n, d_out);
        let mut alpha = Vec::with_capacity(n);
        for v in 0..n {
            // Numerically stable softmax over the closed neighbourhood.
            let logits: Vec<f32> = closed_neighbors(g, v).map(|u| leaky(s[v] + t[u])).collect();
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut weights: Vec<f32> = logits.iter().map(|&e| (e - max).exp()).collect();
            let sum: f32 = weights.iter().sum();
            for w in &mut weights {
                *w /= sum;
            }
            let zrow = z.row_mut(v);
            for (&a_vu, u) in weights.iter().zip(closed_neighbors(g, v)) {
                for (zc, &pc) in zrow.iter_mut().zip(p.row(u)) {
                    *zc += a_vu * pc;
                }
            }
            for (zc, &bc) in zrow.iter_mut().zip(self.bias.row(0)) {
                *zc += bc;
            }
            alpha.push(weights);
        }
        (z, GatCache { h: h.clone(), p, s, t, alpha })
    }

    /// Backward pass from `dz = ∂L/∂Z`.
    pub fn backward(&self, g: &Graph, cache: &GatCache, dz: &Matrix) -> GatGrads {
        let n = g.num_vertices();
        let d_out = cache.p.cols();
        let mut dp = Matrix::zeros(n, d_out);
        let mut ds = vec![0.0f32; n];
        let mut dt = vec![0.0f32; n];

        for v in 0..n {
            let gv = dz.row(v);
            let weights = &cache.alpha[v];
            // dα_vu = G_v · P_u, then softmax backward:
            // de_vu = α_vu (dα_vu − Σ_w α_vw dα_vw).
            let dalpha: Vec<f32> = closed_neighbors(g, v)
                .map(|u| gv.iter().zip(cache.p.row(u)).map(|(x, y)| x * y).sum())
                .collect();
            let mean: f32 = weights.iter().zip(&dalpha).map(|(a, d)| a * d).sum();
            for ((&a_vu, &da), u) in weights.iter().zip(&dalpha).zip(closed_neighbors(g, v)) {
                // Attention-weighted aggregation: dP_u += α_vu · G_v.
                for (pc, &gc) in dp.row_mut(u).iter_mut().zip(gv) {
                    *pc += a_vu * gc;
                }
                let de = a_vu * (da - mean);
                let dx = de * leaky_grad(cache.s[v] + cache.t[u]);
                ds[v] += dx;
                dt[u] += dx;
            }
        }

        // P also feeds the attention scores: dP_v += ds_v·a_s + dt_v·a_n.
        for v in 0..n {
            let row = dp.row_mut(v);
            for ((pc, &asc), &anc) in
                row.iter_mut().zip(self.a_self.row(0)).zip(self.a_neigh.row(0))
            {
                *pc += ds[v] * asc + dt[v] * anc;
            }
        }

        // da_s = Σ_v ds_v·P_v ; da_n = Σ_v dt_v·P_v.
        let mut da_self = Matrix::zeros(1, d_out);
        let mut da_neigh = Matrix::zeros(1, d_out);
        for v in 0..n {
            let prow = cache.p.row(v);
            for (c, &pc) in prow.iter().enumerate() {
                da_self.set(0, c, da_self.get(0, c) + ds[v] * pc);
                da_neigh.set(0, c, da_neigh.get(0, c) + dt[v] * pc);
            }
        }

        let dbias = Matrix::from_vec(1, d_out, ops::column_sums(dz));
        let dw = ops::matmul_at_b(&cache.h, &dp);
        let dh = ops::matmul_a_bt(&dp, &self.w);
        GatGrads { w: dw, a_self: da_self, a_neigh: da_neigh, bias: dbias, h: dh }
    }
}

/// A trainable multi-layer GAT (ReLU between layers, raw logits out).
#[derive(Clone, Debug)]
pub struct GatNetwork {
    layers: Vec<GatLayer>,
    adam: Adam,
}

impl GatNetwork {
    /// Builds a GAT with layer dimensions `dims = [d₀, …, C]`.
    pub fn new(dims: &[usize], lr: f32, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let layers: Vec<GatLayer> = dims
            .windows(2)
            .enumerate()
            .map(|(l, w)| GatLayer::new(w[0], w[1], seed.wrapping_add(10 * l as u64)))
            .collect();
        let mut shapes = Vec::new();
        for l in &layers {
            shapes.push(l.w.shape());
            shapes.push(l.a_self.shape());
            shapes.push(l.a_neigh.shape());
            shapes.push(l.bias.shape());
        }
        let adam = Adam::new(&shapes, lr);
        Self { layers, adam }
    }

    /// Inference forward pass.
    pub fn forward(&self, g: &Graph, features: &Matrix) -> Matrix {
        let mut h = features.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let (z, _) = layer.forward(g, &h);
            h = if i + 1 < self.layers.len() { ec_tensor::activations::relu(&z) } else { z };
        }
        h
    }

    /// One full-batch training epoch; returns the loss.
    pub fn train_epoch(
        &mut self,
        g: &Graph,
        features: &Matrix,
        labels: &[u32],
        train_mask: &[usize],
    ) -> f32 {
        // Forward, keeping caches.
        let mut h = features.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut zs = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let (z, cache) = layer.forward(g, &h);
            caches.push(cache);
            h = if i + 1 < self.layers.len() {
                ec_tensor::activations::relu(&z)
            } else {
                z.clone()
            };
            zs.push(z);
        }
        let (loss, mut dz) = masked_softmax_cross_entropy(&h, labels, train_mask);

        // Backward through the stack.
        let mut grads_rev: Vec<GatGrads> = Vec::with_capacity(self.layers.len());
        for i in (0..self.layers.len()).rev() {
            if i + 1 < self.layers.len() {
                // dz currently holds ∂L/∂H^{i+1}; apply ReLU mask at Z^i? No:
                // grads from layer i+1 gave ∂L/∂H_in = ∂L/∂(ReLU(Z^i)).
                let mask = ec_tensor::activations::relu_grad(&zs[i]);
                dz = ops::hadamard(&dz, &mask);
            }
            let g_layer = self.layers[i].backward(g, &caches[i], &dz);
            dz = g_layer.h.clone();
            grads_rev.push(g_layer);
        }
        grads_rev.reverse();

        // Adam over the flattened parameter list.
        let mut params = Vec::new();
        let mut grads = Vec::new();
        for (layer, gr) in self.layers.iter().zip(&grads_rev) {
            params.extend([
                layer.w.clone(),
                layer.a_self.clone(),
                layer.a_neigh.clone(),
                layer.bias.clone(),
            ]);
            grads.extend([gr.w.clone(), gr.a_self.clone(), gr.a_neigh.clone(), gr.bias.clone()]);
        }
        self.adam.step(&mut params, &grads);
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.w = params[4 * i].clone();
            layer.a_self = params[4 * i + 1].clone();
            layer.a_neigh = params[4 * i + 2].clone();
            layer.bias = params[4 * i + 3].clone();
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph_data::generators;

    fn tiny_graph() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)])
    }

    /// Scalar objective for finite differences: sum of Z entries weighted
    /// by a fixed matrix (so every output coordinate contributes).
    fn objective(layer: &GatLayer, g: &Graph, h: &Matrix, weights: &Matrix) -> f32 {
        let (z, _) = layer.forward(g, h);
        z.as_slice().iter().zip(weights.as_slice()).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn forward_shapes_and_attention_normalization() {
        let g = tiny_graph();
        let h = init::uniform(5, 4, -1.0, 1.0, 1);
        let layer = GatLayer::new(4, 3, 7);
        let (z, cache) = layer.forward(&g, &h);
        assert_eq!(z.shape(), (5, 3));
        for (v, weights) in cache.alpha.iter().enumerate() {
            let sum: f32 = weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "vertex {v} attention sums to {sum}");
            assert_eq!(weights.len(), g.degree(v) + 1);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let g = tiny_graph();
        let h0 = init::uniform(5, 3, -1.0, 1.0, 2);
        let layer = GatLayer::new(3, 2, 5);
        let dz = init::uniform(5, 2, -1.0, 1.0, 9);
        let (_, cache) = layer.forward(&g, &h0);
        let grads = layer.backward(&g, &cache, &dz);

        let eps = 1e-3f32;
        let tol = 2e-2f32;
        // W
        for r in 0..3 {
            for c in 0..2 {
                let mut lp = layer.clone();
                lp.w.set(r, c, lp.w.get(r, c) + eps);
                let mut lm = layer.clone();
                lm.w.set(r, c, lm.w.get(r, c) - eps);
                let num =
                    (objective(&lp, &g, &h0, &dz) - objective(&lm, &g, &h0, &dz)) / (2.0 * eps);
                let ana = grads.w.get(r, c);
                assert!((num - ana).abs() <= tol * (1.0 + num.abs()), "W[{r},{c}]: {ana} vs {num}");
            }
        }
        // attention vectors
        for c in 0..2 {
            for (which, ana) in [(0, grads.a_self.get(0, c)), (1, grads.a_neigh.get(0, c))] {
                let bump = |delta: f32| {
                    let mut l = layer.clone();
                    if which == 0 {
                        l.a_self.set(0, c, l.a_self.get(0, c) + delta);
                    } else {
                        l.a_neigh.set(0, c, l.a_neigh.get(0, c) + delta);
                    }
                    objective(&l, &g, &h0, &dz)
                };
                let num = (bump(eps) - bump(-eps)) / (2.0 * eps);
                assert!(
                    (num - ana).abs() <= tol * (1.0 + num.abs()),
                    "a[{which}][{c}]: {ana} vs {num}"
                );
            }
        }
        // input H
        for v in 0..5 {
            for c in 0..3 {
                let mut hp = h0.clone();
                hp.set(v, c, hp.get(v, c) + eps);
                let mut hm = h0.clone();
                hm.set(v, c, hm.get(v, c) - eps);
                let num = (objective(&layer, &g, &hp, &dz) - objective(&layer, &g, &hm, &dz))
                    / (2.0 * eps);
                let ana = grads.h.get(v, c);
                assert!((num - ana).abs() <= tol * (1.0 + num.abs()), "H[{v},{c}]: {ana} vs {num}");
            }
        }
        // bias
        for c in 0..2 {
            let col: f32 = (0..5).map(|v| dz.get(v, c)).sum();
            assert!((grads.bias.get(0, c) - col).abs() < 1e-5);
        }
    }

    #[test]
    fn gat_learns_planted_classes() {
        let (g, labels) = generators::sbm(60, 3, 0.4, 0.02, 31);
        let features = ec_graph_data::datasets::class_features(&labels, 3, 8, 0.3, 8);
        let train: Vec<usize> = (0..30).collect();
        let test: Vec<usize> = (30..60).collect();
        let mut net = GatNetwork::new(&[8, 16, 3], 0.02, 4);
        let first = net.train_epoch(&g, &features, &labels, &train);
        for _ in 0..120 {
            net.train_epoch(&g, &features, &labels, &train);
        }
        let last = net.train_epoch(&g, &features, &labels, &train);
        assert!(last < first * 0.6, "GAT loss {first} → {last}");
        let acc = crate::metrics::accuracy(&net.forward(&g, &features), &labels, &test);
        assert!(acc > 0.8, "GAT test accuracy {acc}");
    }

    #[test]
    fn isolated_vertex_attends_only_to_itself() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let h = init::uniform(3, 2, -1.0, 1.0, 3);
        let layer = GatLayer::new(2, 2, 1);
        let (z, cache) = layer.forward(&g, &h);
        assert_eq!(cache.alpha[2], vec![1.0]);
        // Z_2 = P_2 + b exactly.
        let p = ops::matmul(&h, &layer.w);
        for c in 0..2 {
            assert!((z.get(2, c) - p.get(2, c) - layer.bias.get(0, c)).abs() < 1e-6);
        }
    }
}
