//! Classification metrics for Table V.

use ec_tensor::Matrix;

/// Row-wise argmax: the predicted class per vertex.
pub fn argmax_rows(logits: &Matrix) -> Vec<u32> {
    logits
        .rows_iter()
        .map(|row| {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate().skip(1) {
                if v > row[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect()
}

/// Fraction of `indices` whose argmax prediction matches the label.
pub fn accuracy(logits: &Matrix, labels: &[u32], indices: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "logits/labels mismatch");
    if indices.is_empty() {
        return 0.0;
    }
    let preds = argmax_rows(logits);
    let correct = indices.iter().filter(|&&v| preds[v] == labels[v]).count();
    correct as f64 / indices.len() as f64
}

/// Macro-averaged F1 over the classes present in `indices`.
pub fn macro_f1(logits: &Matrix, labels: &[u32], indices: &[usize], num_classes: usize) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let preds = argmax_rows(logits);
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fne = vec![0usize; num_classes];
    for &v in indices {
        let (p, y) = (preds[v] as usize, labels[v] as usize);
        if p == y {
            tp[y] += 1;
        } else {
            fp[p] += 1;
            fne[y] += 1;
        }
    }
    let mut sum = 0.0;
    let mut present = 0usize;
    for c in 0..num_classes {
        let support = tp[c] + fne[c];
        if support == 0 && fp[c] == 0 {
            continue; // class absent from both predictions and labels
        }
        present += 1;
        let denom = 2 * tp[c] + fp[c] + fne[c];
        if denom > 0 {
            sum += 2.0 * tp[c] as f64 / denom as f64;
        }
    }
    if present == 0 {
        0.0
    } else {
        sum / present as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_picks_largest() {
        let m = Matrix::from_rows(&[vec![0.1, 0.9], vec![2.0, -1.0]]);
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    #[test]
    fn argmax_ties_break_to_first() {
        let m = Matrix::from_rows(&[vec![0.5, 0.5]]);
        assert_eq!(argmax_rows(&m), vec![0]);
    }

    #[test]
    fn accuracy_counts_subset_only() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        let labels = [0u32, 1, 1];
        assert_eq!(accuracy(&m, &labels, &[0, 1, 2]), 2.0 / 3.0);
        assert_eq!(accuracy(&m, &labels, &[0]), 1.0);
        assert_eq!(accuracy(&m, &labels, &[1]), 0.0);
    }

    #[test]
    fn accuracy_of_empty_mask_is_zero() {
        let m = Matrix::zeros(1, 2);
        assert_eq!(accuracy(&m, &[0], &[]), 0.0);
    }

    #[test]
    fn perfect_macro_f1() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!((macro_f1(&m, &[0, 1], &[0, 1], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalizes_minority_errors_more_than_accuracy() {
        // 3 of class 0 predicted right, 1 of class 1 predicted wrong.
        let m =
            Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0]]);
        let labels = [0u32, 0, 0, 1];
        let idx = [0usize, 1, 2, 3];
        let acc = accuracy(&m, &labels, &idx);
        let f1 = macro_f1(&m, &labels, &idx, 2);
        assert!(f1 < acc, "macro-F1 {f1} should be below accuracy {acc}");
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0, 0.0]]);
        // Class 2 never appears; perfect on class 0.
        assert!((macro_f1(&m, &[0], &[0], 3) - 1.0).abs() < 1e-12);
    }
}
