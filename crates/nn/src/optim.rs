//! Optimizers over parameter sets.
//!
//! The single-machine baselines own their parameters directly (no parameter
//! servers), so they need a local optimizer. [`Adam`] matches the paper's
//! choice; [`Sgd`] exists for ablations and tests.
//!
//! A "parameter set" is a `Vec<Matrix>`; the GNN networks flatten their
//! weights and biases into one such list.

use ec_tensor::Matrix;

/// Adam optimizer state over a list of parameter tensors.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates Adam state for parameters with the given shapes.
    pub fn new(shapes: &[(usize, usize)], lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect(),
            v: shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect(),
        }
    }

    /// Creates Adam state matching an existing parameter list.
    pub fn for_params(params: &[Matrix], lr: f32) -> Self {
        let shapes: Vec<_> = params.iter().map(|p| p.shape()).collect();
        Self::new(&shapes, lr)
    }

    /// Applies one update step: `params[i] -= lr · m̂ / (√v̂ + ε)`.
    ///
    /// # Panics
    /// Panics if `params`/`grads` lengths or shapes disagree with the state.
    pub fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), self.m.len(), "parameter count mismatch");
        assert_eq!(grads.len(), self.m.len(), "gradient count mismatch");
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for ((p, g), (m, v)) in
            params.iter_mut().zip(grads).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.shape(), g.shape(), "parameter/gradient shape mismatch");
            let (ps, gs) = (p.as_mut_slice(), g.as_slice());
            let (ms, vs) = (m.as_mut_slice(), v.as_mut_slice());
            for i in 0..ps.len() {
                ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * gs[i];
                vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * gs[i] * gs[i];
                let m_hat = ms[i] / bc1;
                let v_hat = vs[i] / bc2;
                ps[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates SGD state; `momentum = 0` gives vanilla gradient descent.
    pub fn new(shapes: &[(usize, usize)], lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: shapes.iter().map(|&(r, c)| Matrix::zeros(r, c)).collect() }
    }

    /// Applies one update step.
    pub fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), self.velocity.len(), "parameter count mismatch");
        for ((p, g), vel) in params.iter_mut().zip(grads).zip(self.velocity.iter_mut()) {
            assert_eq!(p.shape(), g.shape(), "parameter/gradient shape mismatch");
            let (ps, gs, vs) = (p.as_mut_slice(), g.as_slice(), vel.as_mut_slice());
            for i in 0..ps.len() {
                vs[i] = self.momentum * vs[i] + gs[i];
                ps[i] -= self.lr * vs[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(opt: &mut dyn FnMut(&mut [Matrix], &[Matrix]), steps: usize) -> f32 {
        // Minimize f(w) = ½‖w‖² from w = (3, -2).
        let mut params = vec![Matrix::from_vec(1, 2, vec![3.0, -2.0])];
        for _ in 0..steps {
            let grads = vec![params[0].clone()]; // ∇f = w
            opt(&mut params, &grads);
        }
        ec_tensor::stats::l2_norm(&params[0])
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(&[(1, 2)], 0.1);
        let norm = quadratic_descent(&mut |p, g| adam.step(p, g), 300);
        assert!(norm < 0.05, "‖w‖ = {norm}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(&[(1, 2)], 0.1, 0.0);
        let norm = quadratic_descent(&mut |p, g| sgd.step(p, g), 200);
        assert!(norm < 1e-3, "‖w‖ = {norm}");
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let mut plain = Sgd::new(&[(1, 2)], 0.01, 0.0);
        let mut heavy = Sgd::new(&[(1, 2)], 0.01, 0.9);
        let slow = quadratic_descent(&mut |p, g| plain.step(p, g), 50);
        let fast = quadratic_descent(&mut |p, g| heavy.step(p, g), 50);
        assert!(fast < slow, "momentum {fast} not faster than plain {slow}");
    }

    #[test]
    fn first_adam_step_is_lr_sized() {
        let mut adam = Adam::new(&[(1, 1)], 0.01);
        let mut params = vec![Matrix::from_vec(1, 1, vec![1.0])];
        adam.step(&mut params, &[Matrix::from_vec(1, 1, vec![0.5])]);
        // Bias correction makes the first step ≈ lr regardless of |g|.
        assert!((params[0].get(0, 0) - (1.0 - 0.01)).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn adam_rejects_wrong_arity() {
        let mut adam = Adam::new(&[(1, 1)], 0.01);
        let mut params = vec![Matrix::zeros(1, 1), Matrix::zeros(1, 1)];
        let grads = vec![Matrix::zeros(1, 1), Matrix::zeros(1, 1)];
        adam.step(&mut params, &grads);
    }
}
