//! Reverse-mode automatic differentiation over dense matrices.
//!
//! A [`Tape`] records a DAG of matrix operations during the forward pass;
//! [`Tape::backward`] then propagates gradients from any node back to every
//! leaf in one reverse sweep over the recording order (which is already a
//! topological order).
//!
//! The op set is exactly what full-batch GNN training needs: dense matmul,
//! sparse aggregation (`Â · H`), bias broadcast, ReLU, elementwise add and
//! scale. Ops that need constants (the adjacency) share them via `Arc` so a
//! tape can be rebuilt every epoch without copying the graph structure.

use ec_tensor::{activations, ops, parallel, CsrMatrix, Matrix};
use std::sync::Arc;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarId(usize);

enum Op {
    /// Input or parameter; no inputs.
    Leaf,
    /// `C = A · B`.
    MatMul(usize, usize),
    /// `Y = S · X` for a constant sparse `S`.
    Spmm(Arc<CsrMatrix>, usize),
    /// `Y = X + 1·bᵀ` (bias is a `1 × d` node, broadcast over rows).
    AddBias(usize, usize),
    /// `Y = max(X, 0)`.
    Relu(usize),
    /// `Y = A + B`.
    Add(usize, usize),
    /// `Y = s·X`.
    Scale(usize, f32),
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
    needs_grad: bool,
}

/// A gradient tape.
pub struct Tape {
    nodes: Vec<Node>,
    threads: usize,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape with sequential (single-threaded) kernels.
    pub fn new() -> Self {
        Self { nodes: Vec::new(), threads: 1 }
    }

    /// Creates an empty tape whose dense kernels (`matmul` and its two
    /// transpose-gradient forms, plus `spmm`) use up to `threads`-way
    /// band parallelism on the process-wide persistent
    /// [`ec_tensor::pool`]. `0` means auto; any explicit count is capped
    /// at the physical parallelism the pool reported at construction, so
    /// kernels never oversubscribe the host. Results are bit-identical to
    /// the sequential tape for any thread count; only `spmm_t` (a column
    /// scatter, not band-parallelizable) stays sequential.
    pub fn with_threads(threads: usize) -> Self {
        Self { nodes: Vec::new(), threads }
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> VarId {
        self.nodes.push(Node { value, grad: None, op, needs_grad });
        VarId(self.nodes.len() - 1)
    }

    /// Registers a constant (no gradient will be accumulated for it).
    pub fn constant(&mut self, value: Matrix) -> VarId {
        self.push(value, Op::Leaf, false)
    }

    /// Registers a trainable parameter (gradient accumulated on backward).
    pub fn parameter(&mut self, value: Matrix) -> VarId {
        self.push(value, Op::Leaf, true)
    }

    /// The current value of a node.
    pub fn value(&self, id: VarId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The accumulated gradient of a node (`None` before `backward`, or for
    /// constants).
    pub fn grad(&self, id: VarId) -> Option<&Matrix> {
        self.nodes[id.0].grad.as_ref()
    }

    fn child_needs(&self, inputs: &[usize]) -> bool {
        inputs.iter().any(|&i| self.nodes[i].needs_grad)
    }

    /// `C = A · B`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let value = parallel::matmul(&self.nodes[a.0].value, &self.nodes[b.0].value, self.threads);
        let needs = self.child_needs(&[a.0, b.0]);
        self.push(value, Op::MatMul(a.0, b.0), needs)
    }

    /// `Y = S · X` for the constant sparse matrix `S` (the graph
    /// aggregation `Â · H`).
    pub fn spmm(&mut self, s: Arc<CsrMatrix>, x: VarId) -> VarId {
        let value = parallel::spmm(&s, &self.nodes[x.0].value, self.threads);
        let needs = self.nodes[x.0].needs_grad;
        self.push(value, Op::Spmm(s, x.0), needs)
    }

    /// `Y = X + bias` where `bias` is a `1 × d` node broadcast over rows.
    ///
    /// # Panics
    /// Panics if `bias` is not `1 × X.cols()`.
    pub fn add_bias(&mut self, x: VarId, bias: VarId) -> VarId {
        let b = &self.nodes[bias.0].value;
        assert_eq!(b.rows(), 1, "bias must be a single row");
        assert_eq!(b.cols(), self.nodes[x.0].value.cols(), "bias width mismatch");
        let value = ops::add_bias(&self.nodes[x.0].value, b.row(0));
        let needs = self.child_needs(&[x.0, bias.0]);
        self.push(value, Op::AddBias(x.0, bias.0), needs)
    }

    /// `Y = ReLU(X)`.
    pub fn relu(&mut self, x: VarId) -> VarId {
        let value = activations::relu(&self.nodes[x.0].value);
        let needs = self.nodes[x.0].needs_grad;
        self.push(value, Op::Relu(x.0), needs)
    }

    /// `Y = A + B` (shapes must match).
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let value = ops::add(&self.nodes[a.0].value, &self.nodes[b.0].value);
        let needs = self.child_needs(&[a.0, b.0]);
        self.push(value, Op::Add(a.0, b.0), needs)
    }

    /// `Y = s · X`.
    pub fn scale(&mut self, x: VarId, s: f32) -> VarId {
        let value = ops::scale(&self.nodes[x.0].value, s);
        let needs = self.nodes[x.0].needs_grad;
        self.push(value, Op::Scale(x.0, s), needs)
    }

    /// Runs the reverse sweep, seeding node `root` with `seed` (typically
    /// `∂loss/∂root` computed by the loss function).
    ///
    /// # Panics
    /// Panics if `seed`'s shape differs from `root`'s value.
    pub fn backward(&mut self, root: VarId, seed: Matrix) {
        assert_eq!(seed.shape(), self.nodes[root.0].value.shape(), "seed gradient shape mismatch");
        for n in &mut self.nodes {
            n.grad = None;
        }
        self.nodes[root.0].grad = Some(seed);
        for i in (0..=root.0).rev() {
            if self.nodes[i].grad.is_none() || !self.nodes[i].needs_grad {
                continue;
            }
            let g = self.nodes[i].grad.as_ref().unwrap().clone();
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.nodes[a].needs_grad {
                        let ga = parallel::matmul_a_bt(&g, &self.nodes[b].value, self.threads);
                        self.accumulate(a, ga);
                    }
                    if self.nodes[b].needs_grad {
                        let gb = parallel::matmul_at_b(&self.nodes[a].value, &g, self.threads);
                        self.accumulate(b, gb);
                    }
                }
                Op::Spmm(s, x) => {
                    let x = *x;
                    if self.nodes[x].needs_grad {
                        let gx = s.spmm_t(&g);
                        self.accumulate(x, gx);
                    }
                }
                Op::AddBias(x, bias) => {
                    let (x, bias) = (*x, *bias);
                    if self.nodes[x].needs_grad {
                        self.accumulate(x, g.clone());
                    }
                    if self.nodes[bias].needs_grad {
                        let sums = ops::column_sums(&g);
                        let gb = Matrix::from_vec(1, sums.len(), sums);
                        self.accumulate(bias, gb);
                    }
                }
                Op::Relu(x) => {
                    let x = *x;
                    if self.nodes[x].needs_grad {
                        let mask = activations::relu_grad(&self.nodes[x].value);
                        self.accumulate(x, ops::hadamard(&g, &mask));
                    }
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    if self.nodes[a].needs_grad {
                        self.accumulate(a, g.clone());
                    }
                    if self.nodes[b].needs_grad {
                        self.accumulate(b, g.clone());
                    }
                }
                Op::Scale(x, s) => {
                    let (x, s) = (*x, *s);
                    if self.nodes[x].needs_grad {
                        self.accumulate(x, ops::scale(&g, s));
                    }
                }
            }
        }
    }

    fn accumulate(&mut self, id: usize, g: Matrix) {
        match &mut self.nodes[id].grad {
            Some(existing) => ops::add_assign(existing, &g),
            slot @ None => *slot = Some(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_tensor::stats;

    /// Finite-difference check of `d(sum f(X)) / dX` against the tape.
    fn check_grad(build: impl Fn(&mut Tape, VarId) -> VarId, x0: Matrix, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.parameter(x0.clone());
        let y = build(&mut tape, x);
        let seed = Matrix::filled(tape.value(y).rows(), tape.value(y).cols(), 1.0);
        tape.backward(y, seed);
        let analytic = tape.grad(x).unwrap().clone();

        let eps = 1e-3f32;
        for r in 0..x0.rows() {
            for c in 0..x0.cols() {
                let mut xp = x0.clone();
                xp.set(r, c, xp.get(r, c) + eps);
                let mut xm = x0.clone();
                xm.set(r, c, xm.get(r, c) - eps);
                let f = |m: Matrix| {
                    let mut t = Tape::new();
                    let v = t.parameter(m);
                    let out = build(&mut t, v);
                    t.value(out).as_slice().iter().sum::<f32>()
                };
                let numeric = (f(xp) - f(xm)) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                    "({r},{c}): analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn matmul_gradients_match_finite_differences() {
        let w = Matrix::from_fn(3, 2, |r, c| 0.3 * r as f32 - 0.2 * c as f32 + 0.1);
        check_grad(
            move |t, x| {
                let w = t.constant(w.clone());
                t.matmul(x, w)
            },
            Matrix::from_fn(2, 3, |r, c| 0.5 * (r + c) as f32 - 0.4),
            1e-2,
        );
    }

    #[test]
    fn matmul_weight_gradient_matches() {
        let x = Matrix::from_fn(4, 3, |r, c| (r as f32 * 0.2) - (c as f32 * 0.1));
        check_grad(
            move |t, w| {
                let x = t.constant(x.clone());
                t.matmul(x, w)
            },
            Matrix::from_fn(3, 2, |r, c| 0.05 * (r * 2 + c) as f32),
            1e-2,
        );
    }

    #[test]
    fn relu_gradient_matches() {
        check_grad(
            |t, x| t.relu(x),
            Matrix::from_fn(3, 3, |r, c| (r as f32 - 1.2) * (c as f32 + 0.7) - 0.5),
            1e-2,
        );
    }

    #[test]
    fn spmm_gradient_matches() {
        let s = Arc::new(CsrMatrix::from_triples(
            3,
            3,
            &[(0, 0, 0.5), (0, 1, 0.5), (1, 1, 1.0), (2, 0, 0.3), (2, 2, 0.7)],
        ));
        check_grad(
            move |t, x| t.spmm(Arc::clone(&s), x),
            Matrix::from_fn(3, 2, |r, c| (r + c) as f32 * 0.25),
            1e-2,
        );
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32));
        let b = tape.parameter(Matrix::zeros(1, 3));
        let y = tape.add_bias(x, b);
        tape.backward(y, Matrix::filled(4, 3, 1.0));
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[4.0, 4.0, 4.0]);
    }

    #[test]
    fn chained_ops_compose() {
        // y = ReLU(X·W + b) · W2: a 1-layer MLP — gradient flows to all.
        let mut tape = Tape::new();
        let x = tape.constant(Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.3));
        let w1 = tape.parameter(Matrix::from_fn(3, 4, |r, c| 0.1 * (r as f32 - c as f32)));
        let b1 = tape.parameter(Matrix::zeros(1, 4));
        let w2 = tape.parameter(Matrix::from_fn(4, 2, |r, c| 0.2 * (r + c) as f32));
        let h = tape.matmul(x, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.relu(h);
        let y = tape.matmul(h, w2);
        tape.backward(y, Matrix::filled(2, 2, 1.0));
        assert!(tape.grad(w1).is_some());
        assert!(tape.grad(b1).is_some());
        assert!(tape.grad(w2).is_some());
        assert!(tape.grad(x).is_none(), "constants receive no gradient");
    }

    #[test]
    fn fanout_accumulates_gradients() {
        // y = x + x ⇒ dy/dx = 2.
        let mut tape = Tape::new();
        let x = tape.parameter(Matrix::filled(2, 2, 3.0));
        let y = tape.add(x, x);
        tape.backward(y, Matrix::filled(2, 2, 1.0));
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[2.0; 4]);
    }

    #[test]
    fn scale_gradient() {
        let mut tape = Tape::new();
        let x = tape.parameter(Matrix::filled(1, 2, 1.0));
        let y = tape.scale(x, -2.5);
        tape.backward(y, Matrix::filled(1, 2, 1.0));
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[-2.5, -2.5]);
    }

    #[test]
    fn backward_resets_previous_grads() {
        let mut tape = Tape::new();
        let x = tape.parameter(Matrix::filled(1, 1, 1.0));
        let y = tape.scale(x, 2.0);
        tape.backward(y, Matrix::filled(1, 1, 1.0));
        tape.backward(y, Matrix::filled(1, 1, 1.0));
        assert_eq!(
            tape.grad(x).unwrap().get(0, 0),
            2.0,
            "grads must not accumulate across backwards"
        );
    }

    #[test]
    fn threaded_tape_is_bit_identical_to_sequential() {
        let run = |threads: usize| {
            let mut tape = Tape::with_threads(threads);
            let s = Arc::new(CsrMatrix::from_triples(
                5,
                5,
                &[(0, 1, 0.5), (1, 0, 0.5), (2, 3, 1.0), (3, 2, 1.0), (4, 4, 1.0), (0, 4, 0.25)],
            ));
            let x = tape.constant(Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) as f32 * 0.37).sin()));
            let w1 = tape.parameter(Matrix::from_fn(3, 4, |r, c| 0.1 * (r as f32 - c as f32)));
            let w2 = tape.parameter(Matrix::from_fn(4, 2, |r, c| 0.2 * (r + c) as f32 - 0.3));
            let h = tape.matmul(x, w1);
            let h = tape.spmm(Arc::clone(&s), h);
            let h = tape.relu(h);
            let y = tape.matmul(h, w2);
            let (rows, cols) = tape.value(y).shape();
            tape.backward(y, Matrix::filled(rows, cols, 1.0));
            (
                tape.value(y).as_slice().to_vec(),
                tape.grad(w1).unwrap().as_slice().to_vec(),
                tape.grad(w2).unwrap().as_slice().to_vec(),
            )
        };
        let base = run(1);
        for threads in [2usize, 3, 8] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn gradient_norm_is_finite_on_deep_chains() {
        let mut tape = Tape::new();
        let x = tape.parameter(Matrix::from_fn(4, 4, |r, c| ((r * 4 + c) as f32).sin()));
        let mut h = x;
        for _ in 0..16 {
            h = tape.relu(h);
            h = tape.scale(h, 0.9);
        }
        let shape = tape.value(h).shape();
        tape.backward(h, Matrix::filled(shape.0, shape.1, 1.0));
        assert!(stats::l2_norm(tape.grad(x).unwrap()).is_finite());
    }
}
