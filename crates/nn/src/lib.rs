//! # `ec-nn` — hand-rolled neural-network substrate
//!
//! The paper's EC-Graph implementation delegates model definition and
//! forward/backward computation to PyTorch. This crate replaces that
//! dependency with a from-scratch stack:
//!
//! * [`tape`] — a reverse-mode automatic-differentiation tape over dense
//!   matrices and sparse aggregations. The single-machine baselines (the
//!   paper's DGL/PyG columns) train through this tape, and the distributed
//!   engine's manually derived gradients (Eqs. 4–6) are cross-checked
//!   against it in tests;
//! * [`layers`] — full-batch GCN and GraphSAGE networks built on the tape;
//! * [`loss`] — masked softmax cross-entropy (the `softmax` +
//!   `entropyloss` of Alg. 1), exposed standalone because the distributed
//!   engine computes the output-layer gradient manually;
//! * [`optim`] — Adam (the paper's optimizer) and SGD over parameter sets;
//! * [`metrics`] — accuracy and macro-F1 for Table V.

pub mod layers;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod tape;

pub use layers::gat::GatNetwork;
pub use layers::gcn::GcnNetwork;
pub use layers::sage::SageNetwork;
pub use tape::{Tape, VarId};
