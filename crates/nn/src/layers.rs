//! Full-batch GNN networks built on the autodiff tape.
//!
//! * [`gcn`] — Kipf–Welling graph convolutional network, the model the
//!   paper evaluates throughout Section V;
//! * [`sage`] — GraphSAGE with mean aggregation, which the paper reports
//!   "enjoys similar performance improvements" (results omitted there for
//!   conciseness, included here for completeness);
//! * [`gat`] — graph attention, the third model the paper names as
//!   EC-Graph-compatible, with hand-derived (finite-difference-checked)
//!   gradients.

pub mod gat;
pub mod gcn;
pub mod sage;
