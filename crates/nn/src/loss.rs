//! Masked softmax cross-entropy — the `softmax` + `etropyloss` of Alg. 1.
//!
//! Semi-supervised vertex classification computes the loss only over the
//! labelled training vertices (`mask`), averaging so the gradient magnitude
//! is independent of the training-set size. The gradient w.r.t. the logits
//! is the classic `softmax(z) - onehot(y)` on masked rows, zero elsewhere —
//! exactly the seed EC-Graph's backward pass starts from (`∇_{H^L} ℒ` in
//! Eq. 4, with the identity activation at the output layer).

use ec_tensor::{activations, Matrix};

/// Computes `(mean loss, ∂loss/∂logits)` over the rows listed in `mask`.
///
/// # Panics
/// Panics if `labels.len() != logits.rows()`, a masked row is out of
/// bounds, or a masked label is `>= logits.cols()`.
pub fn masked_softmax_cross_entropy(
    logits: &Matrix,
    labels: &[u32],
    mask: &[usize],
) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "labels/logits row mismatch");
    assert!(!mask.is_empty(), "empty training mask");
    let probs = activations::softmax_rows(logits);
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let inv = 1.0 / mask.len() as f32;
    let mut loss = 0.0f32;
    for &v in mask {
        assert!(v < logits.rows(), "masked vertex {v} out of bounds");
        let y = labels[v] as usize;
        assert!(y < logits.cols(), "label {y} exceeds class count {}", logits.cols());
        let p = probs.get(v, y).max(1e-12);
        loss -= p.ln();
        let grow = grad.row_mut(v);
        for (c, g) in grow.iter_mut().enumerate() {
            let indicator = if c == y { 1.0 } else { 0.0 };
            *g = (probs.get(v, c) - indicator) * inv;
        }
    }
    (loss * inv, grad)
}

/// Mean loss only (no gradient), for validation-curve tracking.
pub fn masked_cross_entropy_loss(logits: &Matrix, labels: &[u32], mask: &[usize]) -> f32 {
    assert_eq!(labels.len(), logits.rows(), "labels/logits row mismatch");
    if mask.is_empty() {
        return 0.0;
    }
    let log_probs = activations::log_softmax_rows(logits);
    let mut loss = 0.0f32;
    for &v in mask {
        loss -= log_probs.get(v, labels[v] as usize);
    }
    loss / mask.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        // Huge logit on the true class.
        let logits = Matrix::from_rows(&[vec![20.0, 0.0], vec![0.0, 20.0]]);
        let (loss, grad) = masked_softmax_cross_entropy(&logits, &[0, 1], &[0, 1]);
        assert!(loss < 1e-6, "loss {loss}");
        assert!(grad.as_slice().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Matrix::zeros(1, 4);
        let (loss, _) = masked_softmax_cross_entropy(&logits, &[2], &[0]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot_scaled() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 0.5]]);
        let (_, grad) = masked_softmax_cross_entropy(&logits, &[1], &[0]);
        let p = activations::softmax_rows(&logits);
        assert!((grad.get(0, 0) - p.get(0, 0)).abs() < 1e-6);
        assert!((grad.get(0, 1) - (p.get(0, 1) - 1.0)).abs() < 1e-6);
        // Gradient rows sum to zero.
        let sum: f32 = grad.row(0).iter().sum();
        assert!(sum.abs() < 1e-6);
    }

    #[test]
    fn unmasked_rows_receive_zero_gradient() {
        let logits = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![3.0, -1.0]]);
        let (_, grad) = masked_softmax_cross_entropy(&logits, &[0, 1, 0], &[1]);
        assert!(grad.row(0).iter().all(|&g| g == 0.0));
        assert!(grad.row(2).iter().all(|&g| g == 0.0));
        assert!(grad.row(1).iter().any(|&g| g != 0.0));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[vec![0.3, -0.7, 1.1], vec![0.0, 0.4, -0.2]]);
        let labels = [2u32, 0];
        let mask = [0usize, 1];
        let (_, grad) = masked_softmax_cross_entropy(&logits, &labels, &mask);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                lp.set(r, c, lp.get(r, c) + eps);
                let mut lm = logits.clone();
                lm.set(r, c, lm.get(r, c) - eps);
                let fp = masked_cross_entropy_loss(&lp, &labels, &mask);
                let fm = masked_cross_entropy_loss(&lm, &labels, &mask);
                let numeric = (fp - fm) / (2.0 * eps);
                assert!(
                    (grad.get(r, c) - numeric).abs() < 1e-3,
                    "({r},{c}): {} vs {numeric}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn loss_only_variant_agrees() {
        let logits = Matrix::from_rows(&[vec![0.1, 0.9], vec![-0.5, 0.2]]);
        let labels = [1u32, 0];
        let mask = [0usize, 1];
        let (full, _) = masked_softmax_cross_entropy(&logits, &labels, &mask);
        let only = masked_cross_entropy_loss(&logits, &labels, &mask);
        assert!((full - only).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "empty training mask")]
    fn rejects_empty_mask() {
        let _ = masked_softmax_cross_entropy(&Matrix::zeros(1, 2), &[0], &[]);
    }
}
