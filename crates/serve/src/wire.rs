//! Wire formats for the serving-time embedding-fetch protocol.
//!
//! A cache miss on worker `w` for a vertex owned by worker `o` turns into a
//! [`ServeRequest`] `w → o` (control channel) answered by a [`ServeReply`]
//! `o → w` (forward channel). As in [`ec_graph::wire`], the simulation
//! charges byte counts analytically; these types keep those charges honest
//! — every message can be serialized, deserialized and measured, and the
//! round-trip tests assert `to_bytes().len() == wire_size()`.
//!
//! Both messages carry the embedding-store *version* so a reply computed
//! against a stale checkpoint can never be installed into a cache that has
//! already moved on (the coherence rule of DESIGN.md §10).

use ec_comm::codec;
use ec_compress::Quantized;
use ec_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A batched embedding-fetch request: "send me the layer-`L−1` rows of
/// these global vertex ids, at store version `version`".
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Embedding-store version the requester is serving at.
    pub version: u32,
    /// Global vertex ids, ascending.
    pub ids: Vec<u32>,
}

impl ServeRequest {
    /// Serialized size in bytes (must equal `to_bytes().len()`).
    pub fn wire_size(&self) -> usize {
        1 + 4 + codec::u32s_wire_size(&self.ids)
    }

    /// Serializes the request.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_size());
        buf.push(TAG_REQUEST);
        buf.extend_from_slice(&self.version.to_le_bytes());
        codec::put_u32s(&mut buf, &self.ids);
        buf
    }

    /// Deserializes a buffer produced by [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, String> {
        let (&tag, mut rest) = buf.split_first().ok_or("empty serve request")?;
        if tag != TAG_REQUEST {
            return Err(format!("unknown serve request tag {tag}"));
        }
        if rest.len() < 4 {
            return Err("serve request version truncated".into());
        }
        let version = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        rest = &rest[4..];
        let ids = codec::get_u32s(&mut rest)?;
        Ok(Self { version, ids })
    }
}

/// The owning worker's answer: the requested rows, in request order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServeReply {
    /// Uncompressed rows, stacked into one matrix.
    Exact {
        /// Store version the rows were read at.
        version: u32,
        /// One row per requested id, in request order.
        rows: Matrix,
    },
    /// Per-row bucket quantization: one [`Quantized`] per requested row,
    /// each with its own value range. Per-*row* (rather than per-message)
    /// ranges make reconstruction independent of which other ids happened
    /// to share the request — the property the embedding cache needs for
    /// cached and freshly fetched answers to agree byte-for-byte.
    RowQuantized {
        /// Store version the rows were read at.
        version: u32,
        /// One independently compressed row per requested id.
        rows: Vec<Quantized>,
    },
}

const TAG_REQUEST: u8 = 0x10;
const TAG_EXACT: u8 = 0x11;
const TAG_ROW_QUANTIZED: u8 = 0x12;

impl ServeReply {
    /// Store version the reply was computed at.
    pub fn version(&self) -> u32 {
        match self {
            ServeReply::Exact { version, .. } | ServeReply::RowQuantized { version, .. } => {
                *version
            }
        }
    }

    /// Number of rows carried.
    pub fn num_rows(&self) -> usize {
        match self {
            ServeReply::Exact { rows, .. } => rows.rows(),
            ServeReply::RowQuantized { rows, .. } => rows.len(),
        }
    }

    /// Serialized size in bytes (must equal `to_bytes().len()`).
    pub fn wire_size(&self) -> usize {
        1 + 4
            + match self {
                ServeReply::Exact { rows, .. } => codec::matrix_wire_size(rows),
                ServeReply::RowQuantized { rows, .. } => {
                    // One u32 length prefix per row: `Quantized::from_bytes`
                    // wants an exact slice.
                    4 + rows.iter().map(|q| 4 + q.wire_size()).sum::<usize>()
                }
            }
    }

    /// Serializes the reply.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_size());
        match self {
            ServeReply::Exact { version, rows } => {
                buf.push(TAG_EXACT);
                buf.extend_from_slice(&version.to_le_bytes());
                codec::put_matrix(&mut buf, rows);
            }
            ServeReply::RowQuantized { version, rows } => {
                buf.push(TAG_ROW_QUANTIZED);
                buf.extend_from_slice(&version.to_le_bytes());
                buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for q in rows {
                    let qb = q.to_bytes();
                    buf.extend_from_slice(&(qb.len() as u32).to_le_bytes());
                    buf.extend_from_slice(&qb);
                }
            }
        }
        buf
    }

    /// Deserializes a buffer produced by [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, String> {
        let (&tag, rest) = buf.split_first().ok_or("empty serve reply")?;
        if rest.len() < 4 {
            return Err("serve reply version truncated".into());
        }
        let version = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let mut rest = &rest[4..];
        match tag {
            TAG_EXACT => Ok(ServeReply::Exact { version, rows: codec::get_matrix(&mut rest)? }),
            TAG_ROW_QUANTIZED => {
                if rest.len() < 4 {
                    return Err("serve reply row count truncated".into());
                }
                let n = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                rest = &rest[4..];
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    if rest.len() < 4 {
                        return Err("serve reply row length truncated".into());
                    }
                    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                    rest = &rest[4..];
                    if rest.len() < len {
                        return Err("serve reply row truncated".into());
                    }
                    rows.push(Quantized::from_bytes(&rest[..len])?);
                    rest = &rest[len..];
                }
                Ok(ServeReply::RowQuantized { version, rows })
            }
            other => Err(format!("unknown serve reply tag {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_tensor::init;

    #[test]
    fn serve_request_round_trips_and_sizes_match() {
        let msg = ServeRequest { version: 3, ids: vec![1, 5, 9, 200] };
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.wire_size());
        assert_eq!(ServeRequest::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn exact_reply_round_trips_and_sizes_match() {
        let msg = ServeReply::Exact { version: 7, rows: init::uniform(4, 6, -1.0, 1.0, 11) };
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.wire_size());
        assert_eq!(ServeReply::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn row_quantized_reply_round_trips_and_sizes_match() {
        let rows: Vec<Quantized> = (0..3)
            .map(|i| Quantized::compress(&init::uniform(1, 6, -1.0, 1.0, 20 + i), 4))
            .collect();
        let msg = ServeReply::RowQuantized { version: 2, rows };
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.wire_size());
        assert_eq!(ServeReply::from_bytes(&bytes).unwrap(), msg);
        assert_eq!(msg.num_rows(), 3);
        assert_eq!(msg.version(), 2);
    }

    #[test]
    fn empty_reply_round_trips() {
        let msg = ServeReply::RowQuantized { version: 0, rows: Vec::new() };
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.wire_size());
        assert_eq!(ServeReply::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn fuzzed_inputs_error_cleanly() {
        for len in [0usize, 1, 3, 9, 33] {
            let junk: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let _ = ServeRequest::from_bytes(&junk);
            let _ = ServeReply::from_bytes(&junk);
        }
        assert!(ServeRequest::from_bytes(&[0xFF, 0, 0, 0, 0]).is_err());
        assert!(ServeReply::from_bytes(&[0xFF, 0, 0, 0, 0]).is_err());
    }
}
