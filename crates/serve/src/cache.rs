//! Per-worker embedding cache: a deterministic LRU over fetched remote
//! rows plus a pinned hot set that eviction never touches.
//!
//! Determinism: recency is a monotone logical counter bumped per lookup,
//! and both directions of the LRU mapping live in `BTreeMap`s, so two runs
//! that issue the same lookups evict the same rows in the same order — no
//! wall clock, no hash-order iteration.
//!
//! Coherence: every entry is implicitly tagged with the store version the
//! whole cache is at; [`EmbeddingCache::reset_to_version`] drops everything
//! when the checkpoint refreshes. There is no per-entry staleness — a cache
//! either serves one version or is empty (DESIGN.md §10).

use std::collections::BTreeMap;

/// LRU + pinned-hot-set cache of layer-`L−1` embedding rows.
#[derive(Clone, Debug)]
pub struct EmbeddingCache {
    /// Max resident LRU rows (pinned rows do not count). 0 disables the
    /// LRU part entirely; pinning still works.
    capacity: usize,
    /// Store version the resident rows belong to.
    version: u32,
    /// Rows eviction never touches (re-populated on refresh).
    pinned: BTreeMap<u32, Vec<f32>>,
    /// id → (recency stamp, row).
    rows: BTreeMap<u32, (u64, Vec<f32>)>,
    /// recency stamp → id (the eviction order).
    lru: BTreeMap<u64, u32>,
    /// Logical clock; strictly increases per touch.
    tick: u64,
    /// Lookups answered from `pinned` or `rows`.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Rows evicted to make room.
    pub evictions: u64,
}

impl EmbeddingCache {
    /// A cache holding at most `capacity` LRU rows.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            version: 0,
            pinned: BTreeMap::new(),
            rows: BTreeMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Store version the resident rows belong to.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Resident LRU rows (excluding pinned).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no LRU rows are resident.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of pinned rows.
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// Invalidates *everything* — LRU rows and pinned rows — and moves the
    /// cache to `version`. Called on checkpoint refresh; the caller re-pins
    /// the hot set afterwards (and pays the fetch traffic for it).
    pub fn reset_to_version(&mut self, version: u32) {
        self.version = version;
        self.pinned.clear();
        self.rows.clear();
        self.lru.clear();
    }

    /// Pins `row` for `id`: always resident, never evicted, not counted
    /// against `capacity`. A pinned id shadows any LRU entry.
    pub fn pin(&mut self, id: u32, row: Vec<f32>) {
        if let Some((stamp, _)) = self.rows.remove(&id) {
            self.lru.remove(&stamp);
        }
        self.pinned.insert(id, row);
    }

    /// Looks `id` up, bumping its recency and the hit/miss counters.
    pub fn get(&mut self, id: u32) -> Option<&[f32]> {
        if self.pinned.contains_key(&id) {
            self.hits += 1;
            return self.pinned.get(&id).map(Vec::as_slice);
        }
        let Some(entry) = self.rows.get_mut(&id) else {
            self.misses += 1;
            return None;
        };
        self.hits += 1;
        self.tick += 1;
        self.lru.remove(&entry.0);
        entry.0 = self.tick;
        self.lru.insert(self.tick, id);
        Some(entry.1.as_slice())
    }

    /// Inserts a fetched row, evicting the least-recently-used row when at
    /// capacity. A `capacity` of 0 makes this a no-op; re-inserting an id
    /// refreshes its payload and recency.
    pub fn insert(&mut self, id: u32, row: Vec<f32>) {
        if self.capacity == 0 || self.pinned.contains_key(&id) {
            return;
        }
        self.tick += 1;
        if let Some((stamp, _)) = self.rows.remove(&id) {
            self.lru.remove(&stamp);
        } else if self.rows.len() >= self.capacity {
            // Oldest stamp = first key in the recency map.
            if let Some((&stamp, &victim)) = self.lru.iter().next() {
                self.lru.remove(&stamp);
                self.rows.remove(&victim);
                self.evictions += 1;
            }
        }
        self.rows.insert(id, (self.tick, row));
        self.lru.insert(self.tick, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f32) -> Vec<f32> {
        vec![v; 3]
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = EmbeddingCache::new(2);
        c.insert(1, row(1.0));
        c.insert(2, row(2.0));
        assert!(c.get(1).is_some()); // 1 is now the most recent
        c.insert(3, row(3.0)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pinned_rows_survive_eviction_pressure() {
        let mut c = EmbeddingCache::new(1);
        c.pin(7, row(7.0));
        for i in 0..10 {
            c.insert(i, row(i as f32));
        }
        assert!(c.get(7).is_some(), "pinned row must never be evicted");
        assert_eq!(c.len(), 1, "LRU part stays within capacity");
    }

    #[test]
    fn zero_capacity_disables_the_lru_but_not_pinning() {
        let mut c = EmbeddingCache::new(0);
        c.insert(1, row(1.0));
        assert!(c.get(1).is_none());
        c.pin(2, row(2.0));
        assert!(c.get(2).is_some());
    }

    #[test]
    fn reset_drops_everything_and_moves_the_version() {
        let mut c = EmbeddingCache::new(4);
        c.insert(1, row(1.0));
        c.pin(2, row(2.0));
        c.reset_to_version(5);
        assert_eq!(c.version(), 5);
        assert!(c.is_empty());
        assert_eq!(c.pinned_len(), 0);
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_none());
    }

    #[test]
    fn reinsert_refreshes_payload() {
        let mut c = EmbeddingCache::new(2);
        c.insert(1, row(1.0));
        c.insert(1, row(9.0));
        assert_eq!(c.get(1), Some(row(9.0).as_slice()));
        assert_eq!(c.len(), 1);
    }
}
