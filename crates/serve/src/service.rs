//! The inference service: batched per-vertex query answering over the
//! partitioned store and simulated network.
//!
//! A query for vertex `v` is routed to `v`'s owning worker. The owner
//! computes only the *final* GNN layer for `v`: it projects the
//! layer-`L−1` rows of `v`'s in-neighbors through the last weight matrix
//! and replays the SpMM/bias accumulation in the training kernels' exact
//! element order ([`ModelWeights::output_row`]). Neighbor rows come from,
//! in order: the worker's own shard, its [`EmbeddingCache`], or a
//! [`crate::wire`] fetch from the owning worker (bytes charged to the
//! [`SimNetwork`]; one network superstep per dispatched batch).
//!
//! Consistency: in exact-fetch mode every answer is bit-identical to the
//! corresponding row of the full-graph forward pass. With quantized
//! fetches, rows are compressed *per row* with a per-row range, so a
//! reconstruction is a pure function of the stored row — which is why a
//! cached copy and a fresh fetch agree byte-for-byte and the cache can be
//! toggled without changing any answer. On checkpoint refresh the store
//! version bumps and every cache resets wholesale (DESIGN.md §10).
//!
//! This file is on the serving request hot path and inside `ec-lint`'s
//! `no-panic-hot-path` scope: malformed requests are reported as values,
//! not panics.

use crate::cache::EmbeddingCache;
use crate::store::EmbeddingStore;
use crate::wire::{ServeReply, ServeRequest};
use crate::ServeConfig;
use ec_comm::stats::Channel;
use ec_comm::SimNetwork;
use ec_compress::Quantized;
use ec_graph::infer::ModelWeights;
use ec_graph_data::AttributedGraph;
use ec_partition::Partition;
use ec_tensor::{CsrMatrix, Matrix};
use ec_trace::registry::{labels, log2_bucket};
use ec_trace::{MetricId, SpanEvent, TelemetryLevel, TelemetrySink};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Simulated cost of answering one dispatched batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchCost {
    /// Modeled network seconds of the batch's fetch superstep.
    pub comm_s: f64,
    /// Modeled compute seconds of the batch's final-layer kernels
    /// (straggler-scaled).
    pub compute_s: f64,
    /// Remote rows fetched over the network.
    pub fetch_rows: u64,
    /// Reply payload bytes fetched over the network.
    pub fetch_bytes: u64,
    /// Neighbor rows answered by the cache (pinned or LRU).
    pub cache_hits: u64,
    /// Neighbor rows that missed the cache.
    pub cache_misses: u64,
}

/// Why a batch could not be answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A queried vertex id is outside the graph.
    VertexOutOfRange(u32),
    /// A query was routed to a worker that does not own the vertex.
    WrongOwner {
        /// The queried vertex.
        vertex: u32,
        /// The worker the batch was dispatched on.
        worker: usize,
        /// The vertex's actual owner.
        owner: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::VertexOutOfRange(v) => write!(f, "vertex {v} out of range"),
            ServeError::WrongOwner { vertex, worker, owner } => {
                write!(f, "vertex {vertex} dispatched on worker {worker} but owned by {owner}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// The serving cluster: one store shard + cache per worker, a parameter
/// node broadcasting checkpoints, and the simulated network between them.
pub struct InferenceService {
    model: ModelWeights,
    data: Arc<AttributedGraph>,
    adjs: Vec<Arc<CsrMatrix>>,
    store: EmbeddingStore,
    caches: Vec<EmbeddingCache>,
    network: SimNetwork,
    config: ServeConfig,
    telemetry: TelemetrySink,
    /// Per-worker pinned-hot-set candidates (remote 1-hop dependencies by
    /// descending in-degree), fixed by the graph + partition.
    hot_sets: Vec<Vec<u32>>,
    /// Modeled seconds spent installing checkpoints (broadcast + pinning).
    refresh_comm_s: f64,
    /// Bytes moved by checkpoint installs.
    refresh_bytes: u64,
    /// Checkpoints installed (including the initial one).
    refreshes: u64,
}

impl InferenceService {
    /// Builds the serving cluster for `model` over `partition` and
    /// installs the initial checkpoint (weight broadcast + hot-set
    /// pinning, charged to the network).
    ///
    /// # Panics
    /// Panics (outside the request hot path) when the configuration is
    /// inconsistent with the model or data shapes.
    pub fn new(
        model: ModelWeights,
        data: Arc<AttributedGraph>,
        adjs: Vec<Arc<CsrMatrix>>,
        partition: Arc<Partition>,
        config: ServeConfig,
    ) -> Self {
        let validated = config.validate();
        assert!(validated.is_ok(), "invalid serve config: {validated:?}");
        assert_eq!(adjs.len(), model.num_layers(), "need one adjacency per layer");
        assert_eq!(model.dims()[0], data.feature_dim(), "model/feature dim mismatch");
        assert_eq!(partition.num_vertices(), data.num_vertices(), "partition size mismatch");
        assert_eq!(partition.num_parts(), config.num_workers, "partition/worker mismatch");

        let num_workers = config.num_workers;
        // Node layout: workers 0..W, parameter node W (checkpoint source).
        let network =
            SimNetwork::with_faults(num_workers + 1, config.network, config.faults.clone());
        let telemetry = TelemetrySink::new(&config.telemetry, num_workers);
        let store =
            EmbeddingStore::build(&model, &adjs, &data, partition.clone(), config.kernel_threads);
        let hot_sets = hot_sets(&adjs[model.num_layers() - 1], &partition, &data, num_workers);
        let caches = (0..num_workers).map(|_| EmbeddingCache::new(config.cache_rows)).collect();
        let mut svc = Self {
            model,
            data,
            adjs,
            store,
            caches,
            network,
            config,
            telemetry,
            hot_sets,
            refresh_comm_s: 0.0,
            refresh_bytes: 0,
            refreshes: 0,
        };
        svc.install_checkpoint();
        svc
    }

    /// The serving configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Current store version (0 initially; +1 per [`Self::refresh`]).
    pub fn version(&self) -> u32 {
        self.store.version()
    }

    /// The worker queries for vertex `v` must be dispatched on.
    pub fn route(&self, v: usize) -> usize {
        self.store.owner(v)
    }

    /// Number of serving workers.
    pub fn num_workers(&self) -> usize {
        self.config.num_workers
    }

    /// Number of vertices in the served graph (the queryable id range).
    pub fn store_vertices(&self) -> usize {
        self.store.num_vertices()
    }

    /// Name of the dataset being served.
    pub fn dataset_name(&self) -> &str {
        &self.data.name
    }

    /// Modeled seconds spent installing checkpoints so far.
    pub fn refresh_comm_s(&self) -> f64 {
        self.refresh_comm_s
    }

    /// Bytes moved by checkpoint installs so far.
    pub fn refresh_bytes(&self) -> u64 {
        self.refresh_bytes
    }

    /// Checkpoints installed so far (≥ 1).
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Per-worker `(hits, misses, evictions, pinned)` cache counters.
    pub fn cache_stats(&self) -> Vec<(u64, u64, u64, usize)> {
        self.caches.iter().map(|c| (c.hits, c.misses, c.evictions, c.pinned_len())).collect()
    }

    /// Total traffic moved on the serving network so far.
    pub fn traffic(&self) -> ec_comm::TrafficStats {
        self.network.total_stats()
    }

    /// The telemetry recorded so far (`None` when recording is off).
    pub fn telemetry_report(&self) -> Option<ec_trace::TelemetryReport> {
        if self.telemetry.level() == ec_trace::TelemetryLevel::Off {
            None
        } else {
            Some(self.telemetry.report())
        }
    }

    /// Records the run-level latency/QPS gauges (called by the load
    /// generator once the closed loop drains).
    pub fn record_run_metrics(&mut self, p50_s: f64, p99_s: f64, qps_per_worker: &[f64]) {
        let version = self.store.version();
        self.telemetry.set(MetricId::ServeLatencyP50, labels(&[version]), p50_s);
        self.telemetry.set(MetricId::ServeLatencyP99, labels(&[version]), p99_s);
        for (w, &qps) in qps_per_worker.iter().enumerate() {
            self.telemetry.set(MetricId::ServeQps, labels(&[version, w as u32]), qps);
        }
        for (w, (hits, misses, _, _)) in self.cache_stats().into_iter().enumerate() {
            let total = hits + misses;
            if total > 0 {
                let rate = hits as f64 / total as f64;
                self.telemetry.set(MetricId::ServeCacheHitRate, labels(&[version, w as u32]), rate);
            }
        }
    }

    /// Records request-level trace data for one dispatched batch: each
    /// request's queue wait (simulated seconds between arrival and
    /// dispatch) into the `serve.queue_wait_s` histogram, the batch's
    /// fetch/compute stages into their histograms, and — at `Trace` —
    /// `serve:queue` / `serve:fetch` / `serve:compute` spans on the
    /// worker's track at the simulated dispatch time. Called by the load
    /// generator; pure observation, never feeds back into the simulation.
    pub fn note_batch_trace(
        &mut self,
        worker: usize,
        dispatch_s: f64,
        waits: &[f64],
        cost: &BatchCost,
    ) {
        if self.telemetry.level() == TelemetryLevel::Off {
            return;
        }
        let version = self.store.version();
        let wl = labels(&[version, worker as u32]);
        let mut max_wait = 0.0f64;
        for &wait in waits {
            self.telemetry.observe(MetricId::ServeQueueWaitS, wl, wait);
            max_wait = max_wait.max(wait);
        }
        self.telemetry.observe(MetricId::ServeFetchS, wl, cost.comm_s);
        self.telemetry.observe(MetricId::ServeComputeS, wl, cost.compute_s);
        if !self.telemetry.enabled(TelemetryLevel::Trace) {
            return;
        }
        let track = self.telemetry.layout().worker(worker);
        if max_wait > 0.0 {
            self.telemetry.span(
                SpanEvent::new("serve:queue", "idle", track, dispatch_s - max_wait, max_wait)
                    .at_epoch(version as usize)
                    .at_worker(worker),
            );
        }
        for (name, start, dur) in [
            ("serve:fetch", dispatch_s, cost.comm_s),
            ("serve:compute", dispatch_s + cost.comm_s, cost.compute_s),
        ] {
            if dur > 0.0 {
                self.telemetry.span(
                    SpanEvent::new(name, "serve", track, start, dur)
                        .at_epoch(version as usize)
                        .at_worker(worker),
                );
            }
        }
    }

    /// Buckets one request's end-to-end simulated latency into the
    /// deterministic `serve.latency_log2` histogram (bucket `64 + floor
    /// log2(latency)`, clamped; see [`log2_bucket`]).
    pub fn note_request_latency(&mut self, latency_s: f64) {
        let version = self.store.version();
        let bucket = log2_bucket(latency_s);
        self.telemetry.add(MetricId::ServeLatencyBucket, labels(&[version, bucket]), 1);
    }

    /// Installs refreshed weights: re-materializes the store (version + 1),
    /// resets every cache to the new version, and re-runs the install
    /// traffic. Returns the modeled seconds of the install superstep.
    ///
    /// The coherence rule: caches never hold rows of two versions — a
    /// refresh invalidates wholesale, and the hot set is re-pinned against
    /// the *new* store before the next request is answered.
    pub fn refresh(&mut self, model: ModelWeights) -> f64 {
        assert_eq!(model.dims(), self.model.dims(), "refreshed model changed shape");
        assert_eq!(model.model(), self.model.model(), "refreshed model changed kind");
        self.model = model;
        self.store.refresh(&self.model, &self.adjs, &self.data, self.config.kernel_threads);
        self.install_checkpoint()
    }

    /// Broadcasts the current weights to every worker and re-pins each
    /// worker's hot set at the current store version, charging all bytes
    /// and returning the install superstep's modeled seconds.
    fn install_checkpoint(&mut self) -> f64 {
        let version = self.store.version();
        let weight_bytes = self.model.wire_size();
        let param_node = self.config.num_workers;
        let mut bytes = 0u64;
        for w in 0..self.config.num_workers {
            self.network.send(param_node, w, Channel::Parameter, weight_bytes);
            bytes += weight_bytes;
            self.caches[w].reset_to_version(version);
        }
        // Pin the hot sets through the regular fetch codec so pinned rows
        // reconstruct exactly like an LRU fill would.
        for w in 0..self.config.num_workers {
            let pinned: Vec<u32> =
                self.hot_sets[w].iter().take(self.config.pinned_rows).copied().collect();
            let mut by_owner: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
            for &v in &pinned {
                by_owner.entry(self.store.owner(v as usize)).or_default().push(v);
            }
            for (owner, ids) in by_owner {
                let (rows, wire) = self.fetch_rows(w, owner, &ids);
                bytes += wire;
                for (v, row) in ids.iter().zip(rows) {
                    self.caches[w].pin(*v, row);
                }
            }
        }
        let t = self.network.flush_superstep();
        self.refresh_comm_s += t;
        self.refresh_bytes += bytes;
        self.refreshes += 1;
        t
    }

    /// Moves one request/reply pair `requester ↔ owner` over the network
    /// and returns the reconstructed rows (request order) plus the reply's
    /// wire bytes. Same-worker "fetches" are free by `SimNetwork` rules but
    /// never occur: callers only fetch rows they do not own.
    fn fetch_rows(&mut self, requester: usize, owner: usize, ids: &[u32]) -> (Vec<Vec<f32>>, u64) {
        let version = self.store.version();
        let request = ServeRequest { version, ids: ids.to_vec() };
        self.network.send(requester, owner, Channel::Control, request.wire_size() as u64);
        let reply = match self.config.fetch_bits {
            None => ServeReply::Exact { version, rows: self.store.gather(ids) },
            Some(bits) => ServeReply::RowQuantized {
                version,
                rows: ids
                    .iter()
                    .map(|&v| {
                        let row = self.store.row(v as usize);
                        Quantized::compress(&Matrix::from_vec(1, row.len(), row.to_vec()), bits)
                    })
                    .collect(),
            },
        };
        let wire = reply.wire_size() as u64;
        self.network.send(owner, requester, Channel::Forward, wire);
        self.telemetry.add(
            MetricId::ServeFetchBytes,
            labels(&[version, owner as u32, requester as u32]),
            wire,
        );
        let rows = match reply {
            ServeReply::Exact { rows, .. } => {
                (0..rows.rows()).map(|r| rows.row(r).to_vec()).collect()
            }
            ServeReply::RowQuantized { rows, .. } => {
                rows.iter().map(|q| q.decompress().into_vec()).collect()
            }
        };
        (rows, wire)
    }

    /// Answers one dispatched batch on `worker`: the final-layer output
    /// (logits) row for every queried vertex, in request order, plus the
    /// batch's simulated cost. The batch is one network superstep.
    ///
    /// # Errors
    /// Returns a [`ServeError`] when a vertex is out of range or not owned
    /// by `worker`; the batch is rejected before any state changes.
    pub fn answer_batch(
        &mut self,
        worker: usize,
        ids: &[u32],
    ) -> Result<(Matrix, BatchCost), ServeError> {
        let n_vertices = self.data.num_vertices();
        for &v in ids {
            if v as usize >= n_vertices {
                return Err(ServeError::VertexOutOfRange(v));
            }
            let owner = self.store.owner(v as usize);
            if owner != worker {
                return Err(ServeError::WrongOwner { vertex: v, worker, owner });
            }
        }
        // Owned `Arc` clone so the adjacency stays usable across the
        // `&mut self` cache/fetch calls below.
        let adj_last = Arc::clone(&self.adjs[self.model.num_layers() - 1]);
        let version = self.store.version();
        let mut cost = BatchCost::default();

        // 1. The batch's distinct neighbor set (ascending — deterministic).
        let mut needed: BTreeSet<u32> = BTreeSet::new();
        for &v in ids {
            needed.extend(adj_last.row_entries(v as usize).map(|(c, _)| c as u32));
        }

        // 2. Resolve each neighbor: own shard, cache, or fetch list.
        let mut remote_rows: BTreeMap<u32, Vec<f32>> = BTreeMap::new();
        let mut fetch_by_owner: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        for &c in &needed {
            let owner = self.store.owner(c as usize);
            if owner == worker {
                continue;
            }
            if let Some(row) = self.caches[worker].get(c) {
                cost.cache_hits += 1;
                remote_rows.insert(c, row.to_vec());
            } else {
                cost.cache_misses += 1;
                fetch_by_owner.entry(owner).or_default().push(c);
            }
        }

        // 3. Fetch the misses, owner by owner, and fill the cache.
        for (owner, fetch_ids) in std::mem::take(&mut fetch_by_owner) {
            let (rows, wire) = self.fetch_rows(worker, owner, &fetch_ids);
            cost.fetch_bytes += wire;
            cost.fetch_rows += fetch_ids.len() as u64;
            for (&c, row) in fetch_ids.iter().zip(rows) {
                self.caches[worker].insert(c, row.clone());
                remote_rows.insert(c, row);
            }
        }
        cost.comm_s = self.network.flush_superstep();

        // 4. Final-layer compute, replaying the training kernels' element
        //    order. Each distinct neighbor is projected once per batch.
        let k = self.store.dim();
        let out_dim = self.model.output_dim();
        let mut flops = 0u64;
        let mut xw: BTreeMap<u32, Vec<f32>> = BTreeMap::new();
        for &c in &needed {
            let h: &[f32] = if self.store.owner(c as usize) == worker {
                self.store.row(c as usize)
            } else {
                remote_rows.get(&c).map_or(&[], Vec::as_slice)
            };
            xw.insert(c, self.model.project_row(h));
            flops += 2 * (k * out_dim) as u64;
        }
        static EMPTY: &[f32] = &[];
        let mut out = Matrix::zeros(ids.len(), out_dim);
        for (i, &v) in ids.iter().enumerate() {
            let self_term = self.model.project_self_row(self.store.row(v as usize));
            if self_term.is_some() {
                flops += 2 * (k * out_dim) as u64;
            }
            let row = self.model.output_row(
                &adj_last,
                v as usize,
                |c| xw.get(&(c as u32)).map_or(EMPTY, Vec::as_slice),
                self_term.as_deref(),
            );
            flops += (2 * adj_last.row_entries(v as usize).count() * out_dim + out_dim) as u64;
            out.set_row(i, &row);
        }
        let straggle = self.network.faults().map_or(1.0, |inj| inj.straggler_factor(worker));
        cost.compute_s =
            flops as f64 * self.config.secs_per_flop * straggle + self.config.batch_overhead_s;

        // 5. Serving metrics (pure observation; never feeds back).
        let wl = labels(&[version, worker as u32]);
        self.telemetry.add(MetricId::ServeCacheHit, wl, cost.cache_hits);
        self.telemetry.add(MetricId::ServeCacheMiss, wl, cost.cache_misses);
        self.telemetry.observe(MetricId::ServeBatchOccupancy, wl, ids.len() as f64);
        Ok((out, cost))
    }

    /// Convenience wrapper: argmax class predictions for a batch.
    ///
    /// # Errors
    /// Same contract as [`Self::answer_batch`].
    pub fn predict(
        &mut self,
        worker: usize,
        ids: &[u32],
    ) -> Result<(Vec<u32>, BatchCost), ServeError> {
        let (logits, cost) = self.answer_batch(worker, ids)?;
        let classes = (0..logits.rows())
            .map(|r| {
                let row = logits.row(r);
                let mut best = 0usize;
                for (j, &x) in row.iter().enumerate() {
                    if x > row[best] {
                        best = j;
                    }
                }
                best as u32
            })
            .collect();
        Ok((classes, cost))
    }
}

/// Each worker's remote 1-hop dependencies (vertices feeding its owned
/// rows' final layer, owned elsewhere), by descending in-degree then
/// ascending id — the pinning priority.
fn hot_sets(
    adj_last: &CsrMatrix,
    partition: &Partition,
    data: &AttributedGraph,
    num_workers: usize,
) -> Vec<Vec<u32>> {
    let mut deps: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); num_workers];
    for v in 0..partition.num_vertices() {
        let w = partition.part_of(v);
        for (c, _) in adj_last.row_entries(v) {
            if partition.part_of(c) != w {
                deps[w].insert(c as u32);
            }
        }
    }
    deps.into_iter()
        .map(|set| {
            let mut ranked: Vec<u32> = set.into_iter().collect();
            ranked.sort_by_key(|&c| (std::cmp::Reverse(data.graph.degree(c as usize)), c));
            ranked
        })
        .collect()
}
