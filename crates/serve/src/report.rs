//! The serving run's result record: latency percentiles, throughput, cache
//! and traffic accounting, emitted as canonical JSON by `serve_bench`.
//!
//! Like [`ec_graph::report::RunResult`], the canonical JSON deliberately
//! excludes the attached telemetry: recording level must never change the
//! result bytes, and the determinism suite compares `to_json()` strings
//! between telemetry-off and telemetry-on runs to prove it.

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Per-worker serving outcome.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkerServeStats {
    /// Requests served by this worker.
    pub served: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean requests per dispatched batch.
    pub mean_batch: f64,
    /// Served queries per simulated second.
    pub qps: f64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
}

/// Outcome of one closed-loop serving run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeReport {
    /// Dataset served.
    pub dataset: String,
    /// Serving workers.
    pub workers: usize,
    /// Requests issued by the load generator.
    pub issued: u64,
    /// Requests completed (equals `issued` once the loop drains).
    pub served: u64,
    /// Simulated makespan of the run (first issue to last completion).
    pub sim_duration_s: f64,
    /// Median simulated request latency.
    pub latency_p50_s: f64,
    /// 99th-percentile simulated request latency.
    pub latency_p99_s: f64,
    /// Mean simulated request latency.
    pub latency_mean_s: f64,
    /// Worst simulated request latency.
    pub latency_max_s: f64,
    /// Total served queries per simulated second.
    pub qps_total: f64,
    /// Per-worker breakdown.
    pub per_worker: Vec<WorkerServeStats>,
    /// Remote rows fetched over the network while serving.
    pub fetch_rows: u64,
    /// Fetch reply bytes moved while serving.
    pub fetch_bytes: u64,
    /// Checkpoint installs (initial load + refreshes).
    pub refreshes: u64,
    /// Bytes moved by checkpoint installs.
    pub refresh_bytes: u64,
    /// Modeled seconds of checkpoint installs (outside request latency).
    pub refresh_comm_s: f64,
    /// Total bytes on the serving network (requests + replies + installs).
    pub network_bytes: u64,
    /// Store version the run finished at.
    pub version: u32,
    /// Telemetry attached when recording was on — excluded from
    /// [`Self::to_json`] by design.
    #[serde(skip)]
    pub telemetry: Option<ec_trace::TelemetryReport>,
}

impl ServeReport {
    /// Canonical JSON (telemetry excluded; see module docs).
    pub fn to_json(&self) -> Value {
        json!({
            "dataset": self.dataset,
            "workers": self.workers,
            "issued": self.issued,
            "served": self.served,
            "sim_duration_s": self.sim_duration_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "latency_mean_s": self.latency_mean_s,
            "latency_max_s": self.latency_max_s,
            "qps_total": self.qps_total,
            "per_worker": self.per_worker.iter().map(|w| json!({
                "served": w.served,
                "batches": w.batches,
                "mean_batch": w.mean_batch,
                "qps": w.qps,
                "cache_hits": w.cache_hits,
                "cache_misses": w.cache_misses,
            })).collect::<Vec<_>>(),
            "fetch_rows": self.fetch_rows,
            "fetch_bytes": self.fetch_bytes,
            "refreshes": self.refreshes,
            "refresh_bytes": self.refresh_bytes,
            "refresh_comm_s": self.refresh_comm_s,
            "network_bytes": self.network_bytes,
            "version": self.version,
        })
    }
}

/// `q`-quantile (`0 < q <= 1`) of `sorted` (ascending); 0.0 when empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_the_ceiling_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.5), 50.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn json_excludes_telemetry() {
        let r = ServeReport {
            dataset: "cora".into(),
            workers: 2,
            issued: 10,
            served: 10,
            sim_duration_s: 1.0,
            latency_p50_s: 0.1,
            latency_p99_s: 0.2,
            latency_mean_s: 0.12,
            latency_max_s: 0.3,
            qps_total: 10.0,
            per_worker: vec![WorkerServeStats::default()],
            fetch_rows: 5,
            fetch_bytes: 100,
            refreshes: 1,
            refresh_bytes: 50,
            refresh_comm_s: 0.01,
            network_bytes: 150,
            version: 0,
            telemetry: None,
        };
        let s = r.to_json().to_string();
        assert!(s.contains("\"latency_p99_s\""));
        assert!(!s.contains("telemetry"));
    }
}
