//! # `ec-serve` — checkpoint-backed inference over the partitioned store
//!
//! Training produces a checkpoint; this crate serves it. The north-star
//! workload ("serve heavy traffic from millions of users") is read-mostly,
//! latency-bound and cache-friendly — a different regime from training —
//! and EC-Graph's compressed wire machinery is exactly what keeps the
//! cross-partition embedding fetches cheap at serve time.
//!
//! The pieces, mirroring the training stack's layering:
//!
//! * [`store`] — the partitioned [`store::EmbeddingStore`]: materialized
//!   layer-`L−1` activations, version-tagged, rebuilt per checkpoint via
//!   the read-only [`ec_graph::infer::ModelWeights`] forward path;
//! * [`cache`] — per-worker deterministic LRU + pinned-hot-set
//!   [`cache::EmbeddingCache`] over fetched remote rows;
//! * [`wire`] — the fetch protocol ([`wire::ServeRequest`] /
//!   [`wire::ServeReply`]), per-row quantized so reconstruction does not
//!   depend on request batching (the cache-consistency property);
//! * [`service`] — [`service::InferenceService`]: batched per-vertex
//!   query answering over [`ec_comm::SimNetwork`], byte-identical to the
//!   full-graph forward pass in exact-fetch mode;
//! * [`loadgen`] — seeded closed-loop load generation (Zipf popularity,
//!   bursty think times) driving the service through a deterministic
//!   discrete-event loop;
//! * [`report`] — the [`report::ServeReport`] with p50/p99 latency and
//!   QPS per worker, emitted as canonical JSON by `serve_bench`.
//!
//! Everything is deterministic under `ec_comm::set_deterministic_timing`:
//! request latencies are *simulated* quantities (modeled network time +
//! modeled compute), so two runs of one config produce byte-identical
//! reports — the same discipline the training engine follows.

pub mod cache;
pub mod loadgen;
pub mod report;
pub mod service;
pub mod store;
pub mod wire;

pub use cache::EmbeddingCache;
pub use loadgen::{run_closed_loop, WorkloadConfig};
pub use report::ServeReport;
pub use service::{BatchCost, InferenceService};
pub use store::EmbeddingStore;
pub use wire::{ServeReply, ServeRequest};

use ec_comm::NetworkModel;
use ec_faults::FaultPlan;

/// Serving-side configuration: batching, cache and cost-model knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Serving workers (must equal the partition's part count).
    pub num_workers: usize,
    /// Dispatch a batch as soon as this many requests are pending.
    pub max_batch: usize,
    /// … or as soon as the oldest pending request has waited this long
    /// (simulated seconds).
    pub max_delay_s: f64,
    /// LRU capacity (rows) of each worker's embedding cache; 0 disables
    /// caching of fetched rows.
    pub cache_rows: usize,
    /// Remote rows each worker pins (prefetches) per checkpoint install,
    /// picked by descending in-edge degree.
    pub pinned_rows: usize,
    /// `None` ships exact `f32` rows (serving answers are then
    /// bit-identical to the full-graph forward pass); `Some(b)` quantizes
    /// each fetched row to `b` bits with a per-row range.
    pub fetch_bits: Option<u8>,
    /// α–β model of the serving network.
    pub network: NetworkModel,
    /// Fault plan injected into the serving network (stragglers, outages).
    pub faults: FaultPlan,
    /// Kernel threads for store (re)materialization; 0 = auto.
    pub kernel_threads: usize,
    /// Modeled seconds per floating-point operation of the final-layer
    /// per-request compute (the serving analog of the training engine's
    /// measured compute blocks — modeled so latencies are deterministic).
    pub secs_per_flop: f64,
    /// Fixed modeled overhead per dispatched batch (scheduling, kernel
    /// launch) in seconds.
    pub batch_overhead_s: f64,
    /// Telemetry recording level for serving metrics.
    pub telemetry: ec_trace::TelemetryConfig,
}

impl ServeConfig {
    /// Defaults for `num_workers` workers: batches of up to 8 requests or
    /// 2 ms, a 256-row cache with 32 pinned rows, exact fetches, a
    /// gigabit network and a 5 GFLOP/s per-worker serving budget.
    pub fn defaults(num_workers: usize) -> Self {
        Self {
            num_workers,
            max_batch: 8,
            max_delay_s: 2e-3,
            cache_rows: 256,
            pinned_rows: 32,
            fetch_bits: None,
            network: NetworkModel::gigabit_ethernet(),
            faults: FaultPlan::none(),
            kernel_threads: 0,
            secs_per_flop: 2e-10,
            batch_overhead_s: 20e-6,
            telemetry: ec_trace::TelemetryConfig::default(),
        }
    }

    /// Checks the knobs for consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_workers == 0 {
            return Err("need at least one serving worker".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be at least 1".into());
        }
        // Written positively so NaN fails the check too.
        let delay_ok = self.max_delay_s.is_finite() && self.max_delay_s >= 0.0;
        if !delay_ok {
            return Err(format!("max_delay_s {} must be finite and >= 0", self.max_delay_s));
        }
        if let Some(bits) = self.fetch_bits {
            if bits == 0 || bits > ec_compress::quantize::MAX_BITS {
                return Err(format!("fetch_bits {bits} out of range 1..=16"));
            }
        }
        let cost_ok = self.secs_per_flop > 0.0 && self.batch_overhead_s >= 0.0;
        if !cost_ok {
            return Err("serving cost model must be positive".into());
        }
        self.faults.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ServeConfig::defaults(4).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut c = ServeConfig::defaults(4);
        c.max_batch = 0;
        assert!(c.validate().is_err());
        let mut c = ServeConfig::defaults(4);
        c.fetch_bits = Some(0);
        assert!(c.validate().is_err());
        let mut c = ServeConfig::defaults(4);
        c.fetch_bits = Some(17);
        assert!(c.validate().is_err());
        let mut c = ServeConfig::defaults(0);
        assert!(c.validate().is_err());
        c.num_workers = 2;
        c.max_delay_s = f64::NAN;
        assert!(c.validate().is_err());
    }
}
