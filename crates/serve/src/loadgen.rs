//! Seeded closed-loop load generation: Zipf vertex popularity, bursty
//! arrivals, and a deterministic discrete-event loop over simulated time.
//!
//! `C` clients each keep one request in flight: issue → (queue, batch,
//! serve) → think → issue again. Vertex popularity follows a Zipf law over
//! a seeded permutation of the vertex ids (popular vertices are spread
//! across partitions, as in real traffic); think times are exponential,
//! modulated by an on/off burst phase of the simulated clock.
//!
//! Determinism: every random draw flows from the workload seed through one
//! `SmallRng` consumed in event order; the event queue is a `BTreeMap`
//! keyed by `(time bits, sequence)` — `f64::to_bits` orders non-negative
//! floats, and the monotone sequence number breaks ties by insertion.
//! Latencies are pure simulated quantities, so a run's [`ServeReport`] is
//! a function of (config, seed) alone — two identical runs are
//! byte-identical, which the determinism suite checks.

use crate::report::{percentile, ServeReport, WorkerServeStats};
use crate::service::InferenceService;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

/// Closed-loop workload description.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Total requests to issue before the clients retire.
    pub total_requests: u64,
    /// Zipf popularity exponent (0 = uniform).
    pub zipf_exponent: f64,
    /// Mean think time between a completion and the client's next issue.
    pub mean_think_s: f64,
    /// Burst cycle length in simulated seconds (0 disables bursts).
    pub burst_period_s: f64,
    /// Fraction of each cycle spent in the burst phase.
    pub burst_fraction: f64,
    /// Think-rate multiplier during the burst phase (> 1 = more traffic).
    pub burst_factor: f64,
    /// Seed for all load-generator randomness.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A small default workload: 16 clients, 1 000 requests, Zipf 0.9,
    /// 1 ms mean think time, 3× bursts for a fifth of every 50 ms cycle.
    pub fn defaults() -> Self {
        Self {
            clients: 16,
            total_requests: 1_000,
            zipf_exponent: 0.9,
            mean_think_s: 1e-3,
            burst_period_s: 50e-3,
            burst_fraction: 0.2,
            burst_factor: 3.0,
            seed: 17,
        }
    }

    /// Checks the knobs for consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.clients == 0 || self.total_requests == 0 {
            return Err("need at least one client and one request".into());
        }
        // Written positively so NaN fails every check.
        let rates_ok = self.zipf_exponent >= 0.0 && self.mean_think_s > 0.0;
        if !rates_ok {
            return Err("zipf_exponent must be >= 0 and mean_think_s > 0".into());
        }
        let burst_ok = (0.0..=1.0).contains(&self.burst_fraction) && self.burst_factor >= 1.0;
        if self.burst_period_s > 0.0 && !burst_ok {
            return Err("burst_fraction must be in [0,1] and burst_factor >= 1".into());
        }
        Ok(())
    }
}

/// Zipf sampler over a seeded permutation of `0..n`: rank `r` (0 = most
/// popular) has weight `(r+1)^-s`, and the permutation decides which
/// vertex holds which rank.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Cumulative (unnormalized) weights by rank.
    cdf: Vec<f64>,
    /// `perm[rank]` = vertex id.
    perm: Vec<u32>,
}

impl ZipfSampler {
    /// A sampler over `n` vertices with exponent `s`, permuted by `seed`.
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one vertex");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(total);
        }
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5152_9A7F);
        // Fisher–Yates off the dedicated seed stream.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        Self { cdf, perm }
    }

    /// Draws one vertex id.
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        let total = self.cdf[self.cdf.len() - 1];
        let u = rng.gen::<f64>() * total;
        let rank = self.cdf.partition_point(|&c| c < u).min(self.perm.len() - 1);
        self.perm[rank]
    }
}

/// One exponential think-time draw, burst-modulated by the simulated time
/// `now` at which the thinking starts.
fn think_time(cfg: &WorkloadConfig, rng: &mut SmallRng, now: f64) -> f64 {
    let mut mean = cfg.mean_think_s;
    if cfg.burst_period_s > 0.0 {
        let phase = (now / cfg.burst_period_s).fract();
        if phase < cfg.burst_fraction {
            mean /= cfg.burst_factor;
        }
    }
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Client `c` issues its next request.
    Issue { client: u32 },
    /// Worker `w` dispatches a batch (stale unless `gen` is current).
    Dispatch { worker: u32, gen: u64 },
}

/// A pending (queued, not yet dispatched) request.
#[derive(Clone, Copy, Debug)]
struct Pending {
    vertex: u32,
    arrival: f64,
    client: u32,
}

/// Drives `service` with the closed-loop workload until every issued
/// request completes, returning the run's [`ServeReport`].
///
/// # Panics
/// Panics on an invalid workload (validated up front, before any traffic).
pub fn run_closed_loop(service: &mut InferenceService, workload: &WorkloadConfig) -> ServeReport {
    let validated = workload.validate();
    assert!(validated.is_ok(), "invalid workload: {validated:?}");
    let num_workers = service.num_workers();
    let zipf = ZipfSampler::new(service.store_vertices(), workload.zipf_exponent, workload.seed);
    let mut rng = SmallRng::seed_from_u64(workload.seed);
    let max_batch = service.config().max_batch;
    let max_delay = service.config().max_delay_s;

    let mut events: BTreeMap<(u64, u64), Event> = BTreeMap::new();
    let mut seq = 0u64;
    let push = |events: &mut BTreeMap<(u64, u64), Event>, seq: &mut u64, t: f64, ev: Event| {
        *seq += 1;
        events.insert((t.to_bits(), *seq), ev);
    };

    let mut queues: Vec<VecDeque<Pending>> = vec![VecDeque::new(); num_workers];
    let mut free_at = vec![0.0f64; num_workers];
    // Current dispatch generation per worker; an event with an older gen
    // is stale (superseded by a re-schedule) and ignored.
    let mut gens = vec![0u64; num_workers];
    let mut scheduled_at: Vec<Option<f64>> = vec![None; num_workers];

    let mut issued = 0u64;
    let mut served = 0u64;
    let mut latencies: Vec<f64> = Vec::with_capacity(workload.total_requests as usize);
    let mut per_worker = vec![WorkerServeStats::default(); num_workers];
    let mut fetch_rows = 0u64;
    let mut fetch_bytes = 0u64;
    let mut makespan = 0.0f64;

    // Each client's first issue staggers off the think-time distribution.
    for c in 0..workload.clients as u32 {
        let t0 = think_time(workload, &mut rng, 0.0);
        push(&mut events, &mut seq, t0, Event::Issue { client: c });
    }

    // Re-schedules worker `w`'s dispatch if the queue now warrants an
    // earlier (or first) one.
    let schedule_dispatch = |events: &mut BTreeMap<(u64, u64), Event>,
                             seq: &mut u64,
                             gens: &mut [u64],
                             scheduled_at: &mut [Option<f64>],
                             queues: &[VecDeque<Pending>],
                             free_at: &[f64],
                             w: usize,
                             now: f64| {
        let queue = &queues[w];
        let Some(front) = queue.front() else { return };
        let trigger = if queue.len() >= max_batch { now } else { front.arrival + max_delay };
        let start = trigger.max(free_at[w]).max(now);
        if scheduled_at[w].is_none_or(|t| start < t) {
            gens[w] += 1;
            scheduled_at[w] = Some(start);
            *seq += 1;
            events.insert(
                (start.to_bits(), *seq),
                Event::Dispatch { worker: w as u32, gen: gens[w] },
            );
        }
    };

    while let Some((&key, &ev)) = events.iter().next() {
        events.remove(&key);
        let t = f64::from_bits(key.0);
        match ev {
            Event::Issue { client } => {
                if issued >= workload.total_requests {
                    continue; // client retires
                }
                issued += 1;
                let vertex = zipf.sample(&mut rng);
                let w = service.route(vertex as usize);
                queues[w].push_back(Pending { vertex, arrival: t, client });
                schedule_dispatch(
                    &mut events,
                    &mut seq,
                    &mut gens,
                    &mut scheduled_at,
                    &queues,
                    &free_at,
                    w,
                    t,
                );
            }
            Event::Dispatch { worker, gen } => {
                let w = worker as usize;
                if gen != gens[w] {
                    continue; // superseded by a later re-schedule
                }
                scheduled_at[w] = None;
                let take = queues[w].len().min(max_batch);
                if take == 0 {
                    continue;
                }
                let batch: Vec<Pending> = queues[w].drain(..take).collect();
                let ids: Vec<u32> = batch.iter().map(|p| p.vertex).collect();
                let cost = match service.answer_batch(w, &ids) {
                    Ok((_, cost)) => cost,
                    // Routing is by construction correct; a rejected batch
                    // would be a bug — drop it rather than abort the loop.
                    Err(_) => continue,
                };
                fetch_rows += cost.fetch_rows;
                fetch_bytes += cost.fetch_bytes;
                // Request-level trace (pure observation; the simulation
                // and the report below never read it back).
                let waits: Vec<f64> = batch.iter().map(|p| t - p.arrival).collect();
                service.note_batch_trace(w, t, &waits, &cost);
                let finish = t + cost.comm_s + cost.compute_s;
                free_at[w] = finish;
                makespan = makespan.max(finish);
                per_worker[w].batches += 1;
                for p in &batch {
                    let latency = finish - p.arrival;
                    latencies.push(latency);
                    service.note_request_latency(latency);
                    served += 1;
                    per_worker[w].served += 1;
                    let next = finish + think_time(workload, &mut rng, finish);
                    push(&mut events, &mut seq, next, Event::Issue { client: p.client });
                }
                schedule_dispatch(
                    &mut events,
                    &mut seq,
                    &mut gens,
                    &mut scheduled_at,
                    &queues,
                    &free_at,
                    w,
                    finish.max(t),
                );
            }
        }
    }

    latencies.sort_by(f64::total_cmp);
    let duration = if makespan > 0.0 { makespan } else { 1.0 };
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let max = latencies.last().copied().unwrap_or(0.0);
    for (w, stats) in per_worker.iter_mut().enumerate() {
        stats.qps = stats.served as f64 / duration;
        stats.mean_batch =
            if stats.batches > 0 { stats.served as f64 / stats.batches as f64 } else { 0.0 };
        let (hits, misses, _, _) = service.cache_stats()[w];
        stats.cache_hits = hits;
        stats.cache_misses = misses;
    }
    let qps_per_worker: Vec<f64> = per_worker.iter().map(|s| s.qps).collect();
    service.record_run_metrics(p50, p99, &qps_per_worker);

    ServeReport {
        dataset: service.dataset_name().to_string(),
        workers: num_workers,
        issued,
        served,
        sim_duration_s: makespan,
        latency_p50_s: p50,
        latency_p99_s: p99,
        latency_mean_s: mean,
        latency_max_s: max,
        qps_total: served as f64 / duration,
        per_worker,
        fetch_rows,
        fetch_bytes,
        refreshes: service.refreshes(),
        refresh_bytes: service.refresh_bytes(),
        refresh_comm_s: service.refresh_comm_s(),
        network_bytes: service.traffic().total_bytes(),
        version: service.version(),
        telemetry: service.telemetry_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let zipf = ZipfSampler::new(100, 1.1, 7);
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        let xs: Vec<u32> = (0..500).map(|_| zipf.sample(&mut a)).collect();
        let ys: Vec<u32> = (0..500).map(|_| zipf.sample(&mut b)).collect();
        assert_eq!(xs, ys, "same seed must sample the same sequence");
        // The most popular vertex must clearly dominate a uniform share.
        let mut counts = vec![0u32; 100];
        for &x in &xs {
            counts[x as usize] += 1;
        }
        let top = counts.iter().max().copied().unwrap_or(0);
        assert!(top > 25, "Zipf 1.1 should concentrate mass (top = {top}/500)");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = ZipfSampler::new(10, 0.0, 7);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = vec![0u32; 10];
        for _ in 0..2000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "uniform draw too skewed: {counts:?}");
    }

    #[test]
    fn think_times_burst() {
        let cfg = WorkloadConfig {
            burst_period_s: 1.0,
            burst_fraction: 0.5,
            burst_factor: 10.0,
            ..WorkloadConfig::defaults()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let in_burst: f64 = (0..400).map(|_| think_time(&cfg, &mut rng, 0.1)).sum();
        let off_burst: f64 = (0..400).map(|_| think_time(&cfg, &mut rng, 0.9)).sum();
        assert!(off_burst > in_burst * 3.0, "burst phase must shorten think times");
    }

    #[test]
    fn workload_validation_rejects_nonsense() {
        let mut w = WorkloadConfig::defaults();
        w.clients = 0;
        assert!(w.validate().is_err());
        let mut w = WorkloadConfig::defaults();
        w.burst_factor = 0.5;
        assert!(w.validate().is_err());
        assert!(WorkloadConfig::defaults().validate().is_ok());
    }
}
