//! The partitioned embedding store: each worker's shard of the
//! materialized layer-`L−1` activations `H^{L-1}`.
//!
//! At checkpoint (re)load the store runs the shared read-only forward pass
//! ([`ModelWeights::forward_through`]) up to the last hidden layer and
//! keeps the result, version-tagged. Per-vertex queries then only compute
//! the *final* layer — a one-row SpMM over the vertex's in-neighborhood —
//! pulling neighbor rows from the local shard, the worker's cache, or the
//! owning worker over the network.
//!
//! As everywhere in this codebase the cluster is simulated in-process: the
//! store holds the full matrix, and *ownership* is an access discipline
//! enforced by the service (a worker only reads rows it owns; everything
//! else moves through [`crate::wire`] messages whose bytes are charged to
//! the [`ec_comm::SimNetwork`]).

use ec_graph::infer::ModelWeights;
use ec_graph_data::AttributedGraph;
use ec_partition::Partition;
use ec_tensor::{CsrMatrix, Matrix};
use std::sync::Arc;

/// Version-tagged materialization of `H^{L-1}`, sharded by the partition.
#[derive(Clone, Debug)]
pub struct EmbeddingStore {
    version: u32,
    hidden: Matrix,
    partition: Arc<Partition>,
}

impl EmbeddingStore {
    /// Materializes the store for `model` at version 0.
    pub fn build(
        model: &ModelWeights,
        adjs: &[Arc<CsrMatrix>],
        data: &AttributedGraph,
        partition: Arc<Partition>,
        kernel_threads: usize,
    ) -> Self {
        let hidden =
            model.forward_through(adjs, &data.features, model.num_layers() - 1, kernel_threads);
        Self { version: 0, hidden, partition }
    }

    /// Re-materializes the store for refreshed weights, bumping the
    /// version. Every consumer holding rows of the old version must drop
    /// them (the service resets all caches).
    pub fn refresh(
        &mut self,
        model: &ModelWeights,
        adjs: &[Arc<CsrMatrix>],
        data: &AttributedGraph,
        kernel_threads: usize,
    ) {
        self.hidden =
            model.forward_through(adjs, &data.features, model.num_layers() - 1, kernel_threads);
        self.version += 1;
    }

    /// Current store version (bumped once per refresh).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Number of vertices materialized.
    pub fn num_vertices(&self) -> usize {
        self.hidden.rows()
    }

    /// Hidden dimensionality of the stored rows.
    pub fn dim(&self) -> usize {
        self.hidden.cols()
    }

    /// The worker owning vertex `v`'s row.
    pub fn owner(&self, v: usize) -> usize {
        self.partition.part_of(v)
    }

    /// The partition the shards follow.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Vertex `v`'s layer-`L−1` row. Callers uphold the ownership
    /// discipline: the service only calls this for rows the acting worker
    /// owns (or on the owner's behalf when building a reply).
    pub fn row(&self, v: usize) -> &[f32] {
        self.hidden.row(v)
    }

    /// The requested rows stacked into a reply payload, in request order.
    pub fn gather(&self, ids: &[u32]) -> Matrix {
        let idx: Vec<usize> = ids.iter().map(|&v| v as usize).collect();
        self.hidden.gather_rows(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph_data::{normalize, DatasetSpec};
    use ec_partition::{hash::HashPartitioner, Partitioner};

    fn fixture() -> (Arc<AttributedGraph>, Vec<Arc<CsrMatrix>>, ModelWeights, Arc<Partition>) {
        let data = Arc::new(DatasetSpec::cora().instantiate_with(80, 8, 1));
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
        let adjs = vec![adj; 2];
        let config = ec_graph::config::TrainingConfig {
            dims: vec![8, 6, data.num_classes],
            num_workers: 3,
            seed: 2,
            ..ec_graph::config::TrainingConfig::defaults(8, data.num_classes)
        };
        let partition = Arc::new(HashPartitioner::default().partition(&data.graph, 3));
        let engine = ec_graph::engine::DistributedEngine::new(
            data.clone(),
            adjs.clone(),
            (*partition).clone(),
            config,
        );
        let model = engine.inference_model();
        (data, adjs, model, partition)
    }

    #[test]
    fn store_matches_the_shared_forward_path() {
        let (data, adjs, model, partition) = fixture();
        let store = EmbeddingStore::build(&model, &adjs, &data, partition, 1);
        let hidden = model.forward_through(&adjs, &data.features, 1, 1);
        assert_eq!(store.version(), 0);
        assert_eq!(store.num_vertices(), data.num_vertices());
        assert_eq!(store.dim(), 6);
        for v in [0usize, 7, 79] {
            assert_eq!(store.row(v), hidden.row(v));
        }
        let g = store.gather(&[3, 1, 3]);
        assert_eq!(g.row(0), hidden.row(3));
        assert_eq!(g.row(1), hidden.row(1));
        assert_eq!(g.row(2), hidden.row(3));
    }

    #[test]
    fn refresh_bumps_the_version() {
        let (data, adjs, model, partition) = fixture();
        let mut store = EmbeddingStore::build(&model, &adjs, &data, partition, 1);
        store.refresh(&model, &adjs, &data, 1);
        assert_eq!(store.version(), 1);
    }
}
