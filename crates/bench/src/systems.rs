//! Unified runner for every system in the paper's evaluation.
//!
//! Each bench binary picks systems from [`System`] and calls [`run`];
//! configuration differences between the paper's systems (sampling
//! fan-outs, compression bits, staleness) are centralized here, including
//! the paper's own Table IV fan-out settings per dataset and layer count.

use ec_comm::ps::AdamParams;
use ec_comm::HostTimer;
use ec_comm::NetworkModel;
use ec_graph::baselines::distdgl::{train_minibatch, MiniBatchConfig};
use ec_graph::baselines::local::{train_local, LocalConfig, LocalKind};
use ec_graph::baselines::ml_centered::{train_ml_centered, MlCenteredConfig};
use ec_graph::config::{BpMode, ComputeConfig, FpMode, TrainingConfig};
use ec_graph::report::RunResult;
use ec_graph::sampling::sample_layer_graphs;
use ec_graph::trainer;
use ec_graph_data::AttributedGraph;
use ec_partition::hash::HashPartitioner;
use ec_partition::Partitioner;
use std::sync::Arc;

/// Every system the paper's tables compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// Single-machine DGL-style full batch.
    DglLike,
    /// Single-machine PyG-style full batch (per-edge messages).
    PygLike,
    /// DistGNN: delayed remote partial aggregation, `r = 5` (the paper's
    /// setting).
    DistGnn,
    /// EC-Graph full batch with both compensation algorithms.
    EcGraph,
    /// DistDGL: graph-centered online-sampling mini-batch.
    DistDgl,
    /// AGL: ML-centered offline-sampled mini-batch.
    Agl,
    /// AliGraph-FG: ML-centered full graph.
    AliGraphFg,
    /// EC-Graph-S: offline per-layer sampling + EC compression.
    EcGraphS,
    /// EC-Graph without compression (the ablation's Non-cp).
    NonCp,
}

impl System {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            System::DglLike => "dgl-like",
            System::PygLike => "pyg-like",
            System::DistGnn => "distgnn-like",
            System::EcGraph => "ec-graph",
            System::DistDgl => "distdgl-like",
            System::Agl => "agl-like",
            System::AliGraphFg => "aligraph-fg-like",
            System::EcGraphS => "ec-graph-s",
            System::NonCp => "non-cp",
        }
    }

    /// The paper's Table IV comparison set, in row order.
    pub fn all() -> Vec<System> {
        vec![
            System::DglLike,
            System::PygLike,
            System::DistGnn,
            System::EcGraph,
            System::DistDgl,
            System::Agl,
            System::AliGraphFg,
            System::EcGraphS,
        ]
    }
}

/// Shared experiment parameters.
#[derive(Clone, Debug)]
pub struct RunParams {
    /// Number of GCN layers.
    pub layers: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Worker count for the distributed systems.
    pub workers: usize,
    /// Epoch budget.
    pub epochs: usize,
    /// Early-stop patience (`None` = run the full budget).
    pub patience: Option<usize>,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Network model for the simulated cluster.
    pub network: NetworkModel,
    /// EC-Graph compression bits (fp, bp); `None` resolves the paper's
    /// per-dataset Fig. 8 settings via [`paper_ec_bits`].
    pub ec_bits: Option<(u8, u8)>,
    /// Host-thread budget (worker fan-out × kernel threads); results are
    /// bit-identical for any setting, only wall-clock changes.
    pub compute: ComputeConfig,
}

impl RunParams {
    /// Paper-style defaults for a given depth.
    pub fn new(layers: usize, hidden: usize, epochs: usize) -> Self {
        Self {
            layers,
            hidden,
            workers: 6,
            epochs,
            patience: None,
            lr: 0.01,
            seed: 1,
            network: NetworkModel::gigabit_ethernet(),
            ec_bits: None,
            compute: ComputeConfig::default(),
        }
    }

    fn dims(&self, data: &AttributedGraph) -> Vec<usize> {
        crate::paper_dims(data, self.hidden, self.layers)
    }
}

/// The paper's Fig. 8 ReqEC/ResEC bit settings per dataset.
pub fn paper_ec_bits(dataset: &str) -> (u8, u8) {
    match dataset {
        "cora" => (1, 2),
        "pubmed" => (2, 2),
        "reddit" => (2, 4),
        "products" => (2, 2),
        "papers" => (4, 4),
        _ => (2, 4),
    }
}

/// The paper's Table IV sampling fan-outs per (dataset, layer count);
/// `None` encodes the paper's "(full)" cells.
pub fn paper_fanouts(dataset: &str, layers: usize) -> Option<Vec<usize>> {
    let f: &[usize] = match (dataset, layers) {
        ("cora", 2) => return None, // (full)
        ("cora", 3) => &[20, 10, 5],
        ("cora", 4) => &[10, 5, 5, 5],
        ("pubmed", 2) => return None, // (full)
        ("pubmed", 3) => &[10, 10, 5],
        ("pubmed", 4) => &[5, 5, 5, 1],
        ("reddit", 2) => &[10, 5],
        ("reddit", 3) => &[5, 2, 2],
        ("reddit", 4) => &[5, 5, 1, 1],
        ("products", 2) => &[20, 5],
        ("products", 3) => &[10, 5, 1],
        ("products", 4) => &[10, 5, 2, 2],
        ("papers", 2) => &[10, 10],
        ("papers", 3) => &[10, 10, 10],
        ("papers", 4) => &[10, 10, 10, 10],
        (_, l) => return Some(vec![10; l]),
    };
    Some(f.to_vec())
}

/// Runs `system` on `data` and returns its [`RunResult`].
pub fn run(
    system: System,
    data: &Arc<AttributedGraph>,
    p: &RunParams,
) -> Result<RunResult, String> {
    let dims = p.dims(data);
    let adam = AdamParams { lr: p.lr, ..Default::default() };
    let ec_bits = p.ec_bits.unwrap_or_else(|| paper_ec_bits(&data.name));
    match system {
        System::DglLike | System::PygLike => {
            let kind =
                if system == System::DglLike { LocalKind::DglLike } else { LocalKind::PygLike };
            let cfg = LocalConfig {
                dims,
                lr: p.lr,
                seed: p.seed,
                max_epochs: p.epochs,
                patience: p.patience,
                // 32 GB machines in the paper's small cluster.
                memory_limit: 32u64 << 30,
                kernel_threads: p.compute.kernel_threads,
            };
            train_local(Arc::clone(data), kind, &cfg)
        }
        System::EcGraph | System::NonCp | System::DistGnn => {
            let (fp_mode, bp_mode) = match system {
                System::EcGraph => (
                    FpMode::ReqEc { bits: ec_bits.0, t_tr: 10, adaptive: true },
                    BpMode::ResEc { bits: ec_bits.1 },
                ),
                System::DistGnn => (FpMode::Delayed { r: 5 }, BpMode::Exact),
                _ => (FpMode::Exact, BpMode::Exact),
            };
            let config = TrainingConfig {
                dims,
                model: ec_graph::config::ModelKind::Gcn,
                reqec_granularity: ec_graph::fp::Granularity::Vertex,
                num_workers: p.workers,
                num_servers: 1,
                fp_mode,
                bp_mode,
                adam,
                network: p.network,
                faults: ec_faults::FaultPlan::none(),
                resilience: Default::default(),
                seed: p.seed,
                max_epochs: p.epochs,
                patience: p.patience,
                eval_every: 1,
                compute: p.compute,
                telemetry: Default::default(),
            };
            Ok(trainer::train(
                Arc::clone(data),
                &HashPartitioner::default(),
                config,
                system.label(),
            ))
        }
        System::EcGraphS => {
            let config = TrainingConfig {
                dims,
                model: ec_graph::config::ModelKind::Gcn,
                reqec_granularity: ec_graph::fp::Granularity::Vertex,
                num_workers: p.workers,
                num_servers: 1,
                fp_mode: FpMode::ReqEc { bits: ec_bits.0, t_tr: 10, adaptive: true },
                bp_mode: BpMode::ResEc { bits: ec_bits.1 },
                adam,
                network: p.network,
                faults: ec_faults::FaultPlan::none(),
                resilience: Default::default(),
                seed: p.seed,
                max_epochs: p.epochs,
                patience: p.patience,
                eval_every: 1,
                compute: p.compute,
                telemetry: Default::default(),
            };
            match paper_fanouts(&data.name, p.layers) {
                None => Ok(trainer::train(
                    Arc::clone(data),
                    &HashPartitioner::default(),
                    config,
                    system.label(),
                )),
                Some(fanouts) => {
                    // Offline sampling is preprocessing (measured).
                    let sample_start = HostTimer::start();
                    let (adjs, _) = sample_layer_graphs(&data.graph, &fanouts, p.seed ^ 0x5);
                    let partition = HashPartitioner::default().partition(&data.graph, p.workers);
                    let sampling_s = sample_start.elapsed_s();
                    Ok(trainer::train_prepartitioned(
                        Arc::clone(data),
                        adjs,
                        partition,
                        config,
                        system.label(),
                        sampling_s,
                    ))
                }
            }
        }
        System::DistDgl | System::Agl => {
            let fanouts = paper_fanouts(&data.name, p.layers).unwrap_or_else(|| vec![10; p.layers]);
            let cfg = MiniBatchConfig {
                dims,
                fanouts,
                batch_size: 64,
                num_workers: p.workers,
                num_servers: 1,
                adam,
                network: p.network,
                seed: p.seed,
                max_epochs: p.epochs,
                patience: p.patience,
                online_sampling: system == System::DistDgl,
                prefetch_features: system == System::Agl,
                kernel_threads: p.compute.kernel_threads,
            };
            Ok(train_minibatch(Arc::clone(data), &cfg, system.label()))
        }
        System::AliGraphFg => {
            let cfg = MlCenteredConfig {
                dims,
                num_workers: p.workers,
                num_servers: 1,
                adam,
                network: p.network,
                seed: p.seed,
                max_epochs: p.epochs,
                patience: p.patience,
                kernel_threads: p.compute.kernel_threads,
            };
            Ok(train_ml_centered(Arc::clone(data), &cfg, system.label()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph_data::DatasetSpec;

    #[test]
    fn every_system_runs_on_a_tiny_replica() {
        let data = Arc::new(DatasetSpec::cora().instantiate_with(120, 16, 2));
        let p = RunParams { workers: 2, ..RunParams::new(2, 8, 2) };
        for system in System::all() {
            let r = run(system, &data, &p).unwrap_or_else(|e| panic!("{system:?}: {e}"));
            assert_eq!(r.epochs.len(), 2, "{system:?} epoch count");
            assert_eq!(r.system, system.label());
        }
    }

    #[test]
    fn paper_ec_bits_cover_all_datasets() {
        for ds in ["cora", "pubmed", "reddit", "products", "papers", "unknown"] {
            let (fp, bp) = paper_ec_bits(ds);
            assert!([1, 2, 4, 8, 16].contains(&fp), "{ds} fp bits {fp}");
            assert!([1, 2, 4, 8, 16].contains(&bp), "{ds} bp bits {bp}");
        }
        assert_eq!(paper_ec_bits("papers"), (4, 4));
    }

    #[test]
    fn paper_fanouts_match_layer_counts() {
        for ds in ["cora", "pubmed", "reddit", "products", "papers"] {
            for layers in 2..=4 {
                if let Some(f) = paper_fanouts(ds, layers) {
                    assert_eq!(f.len(), layers, "{ds} {layers}-layer");
                }
            }
        }
        assert!(paper_fanouts("cora", 2).is_none());
        assert!(paper_fanouts("pubmed", 2).is_none());
    }
}
