//! # `ec-bench` — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus shared
//! plumbing in this library:
//!
//! * [`Args`] — tiny `key=value` CLI parsing so every experiment accepts
//!   `scale=`, `epochs=`, `workers=` overrides;
//! * [`bench_dataset`] — bench-scale replica instantiation (smaller than
//!   the library defaults so the full suite regenerates in minutes; the
//!   exact sizes are printed with every run and recorded in
//!   `EXPERIMENTS.md`);
//! * [`emit`] — human-readable table rows plus machine-readable JSON lines
//!   (prefixed `#json`), so results can be diffed across runs.

use ec_graph_data::{AttributedGraph, DatasetSpec};
use std::collections::HashMap;

/// Parsed `key=value` command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of `key=value` strings.
    pub fn parse(it: impl IntoIterator<Item = String>) -> Self {
        let mut map = HashMap::new();
        for arg in it {
            if let Some((k, v)) = arg.split_once('=') {
                map.insert(k.trim_start_matches('-').to_string(), v.to_string());
            }
        }
        Self { map }
    }

    /// Typed lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.map.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// String lookup with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.map.get(key).cloned().unwrap_or_else(|| default.to_string())
    }
}

/// Bench-scale vertex counts per dataset: small enough that the entire
/// suite regenerates in minutes, large enough that the cross-system
/// orderings are stable. Scaled further by the `scale=` argument.
pub fn bench_vertices(spec: &DatasetSpec, scale: f64) -> usize {
    let base = match spec.name {
        "cora" => 2_708, // full size, like the paper
        "pubmed" => 4_000,
        "reddit" => 4_096, // degree clamps to the structural ceiling (~105)
        "products" => 4_096,
        "papers" => 8_192,
        _ => spec.default_vertices,
    };
    ((base as f64 * scale) as usize).max(64)
}

/// Bench-scale feature dimensions: Cora's 1433-dim features dominate
/// compute without affecting any communication conclusion, so benches trim
/// the two citation graphs.
pub fn bench_feature_dim(spec: &DatasetSpec) -> usize {
    match spec.name {
        "cora" => 256,
        "pubmed" => 128,
        _ => spec.feature_dim,
    }
}

/// Instantiates a dataset replica at bench scale.
pub fn bench_dataset(spec: &DatasetSpec, scale: f64, seed: u64) -> AttributedGraph {
    spec.instantiate_with(bench_vertices(spec, scale), bench_feature_dim(spec), seed)
}

/// The paper's hidden width per dataset (Section V-A: "the hidden layer
/// sizes are set to 16, 16, 16, 256, and 256"), capped at 64 at bench
/// scale so the suite regenerates quickly.
pub fn bench_hidden(spec: &DatasetSpec) -> usize {
    spec.default_hidden.min(64)
}

/// The paper's per-dataset GCN shape: `[d0, hidden × (layers-1), classes]`.
pub fn paper_dims(data: &AttributedGraph, hidden: usize, layers: usize) -> Vec<usize> {
    let mut dims = vec![data.feature_dim()];
    dims.extend(std::iter::repeat_n(hidden, layers - 1));
    dims.push(data.num_classes);
    dims
}

/// Emits a human table row to stdout and a `#json` machine line.
pub fn emit(experiment: &str, human: &str, json: serde_json::Value) {
    println!("{human}");
    println!(
        "#json {{\"experiment\":\"{experiment}\",{}}}",
        json.to_string().trim_start_matches('{').trim_end_matches('}')
    );
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.1}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.2}ms", s * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_key_values() {
        let a = Args::parse(["scale=0.5".into(), "--epochs=20".into(), "flag".into()]);
        assert_eq!(a.get("scale", 1.0f64), 0.5);
        assert_eq!(a.get("epochs", 5usize), 20);
        assert_eq!(a.get("missing", 7usize), 7);
        assert_eq!(a.get_str("mode", "full"), "full");
    }

    #[test]
    fn bench_scale_respects_floor() {
        let spec = DatasetSpec::cora();
        assert_eq!(bench_vertices(&spec, 1.0), 2708);
        assert_eq!(bench_vertices(&spec, 1e-9), 64);
    }

    #[test]
    fn paper_dims_shape() {
        let data = DatasetSpec::cora().instantiate_with(100, 32, 1);
        assert_eq!(paper_dims(&data, 16, 3), vec![32, 16, 16, data.num_classes]);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.001).ends_with("ms"));
        assert_eq!(fmt_secs(2.5), "2.50");
        assert_eq!(fmt_secs(123.45), "123.5");
    }
}
pub mod systems;
