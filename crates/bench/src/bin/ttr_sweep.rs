//! **Section IV-B design choice** — trend-group length sweep.
//!
//! The paper: "We set T_tr = 10 empirically, which achieves a satisfactory
//! performance for all datasets." This ablation regenerates the trade-off
//! behind that choice: small `T_tr` refreshes exact embeddings often
//! (accurate but bandwidth-hungry — the boundary message ships `H` *and*
//! `M_cr` uncompressed), large `T_tr` amortizes the boundary cost but lets
//! the linear trend drift.
//!
//! Usage: `ttr_sweep [dataset=cora] [bits=2] [epochs=80] [scale=1.0]
//! [workers=6]`

use ec_bench::{bench_dataset, emit, Args};
use ec_graph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph::trainer::train;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 80);
    let bits: u8 = args.get("bits", 2);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let ds = args.get_str("dataset", "cora");

    let spec = DatasetSpec::all().into_iter().find(|s| s.name == ds).expect("unknown dataset");
    let data = Arc::new(bench_dataset(&spec, scale, 7));
    println!(
        "== T_tr sweep (ReqEC-FP-{bits}, {} replica, |V|={}) ==",
        spec.name,
        data.num_vertices()
    );
    for t_tr in [2usize, 4, 6, 10, 20, 40] {
        let config = TrainingConfig {
            dims: ec_bench::paper_dims(&data, 16, 2),
            num_workers: workers,
            fp_mode: FpMode::ReqEc { bits, t_tr, adaptive: false },
            bp_mode: BpMode::Exact,
            max_epochs: epochs,
            seed: 3,
            ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
        };
        let r = train(Arc::clone(&data), &HashPartitioner::default(), config, "reqec");
        let fp_mb = r.epochs.iter().map(|e| e.fp_bytes).sum::<u64>() as f64 / 1e6;
        emit(
            "ttr_sweep",
            &format!(
                "  T_tr={t_tr:<3} test-acc {:.4}  FP traffic {:>8.2} MB  conv epoch {}",
                r.best_test_acc,
                fp_mb,
                r.convergence_epoch_within(0.005)
            ),
            serde_json::json!({
                "t_tr": t_tr, "bits": bits, "test_acc": r.best_test_acc,
                "fp_mb": fp_mb, "conv_epoch": r.convergence_epoch_within(0.005),
            }),
        );
    }
}
