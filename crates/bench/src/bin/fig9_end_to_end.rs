//! **Fig. 9** — end-to-end time: preprocessing + training-to-convergence,
//! with EC-Graph's speedup factors over each system (the paper highlights
//! the OGBN-Products column).
//!
//! Usage: `fig9_end_to_end [datasets=products] [epochs=150] [patience=25]
//! [scale=1.0] [workers=6]`

use ec_bench::systems::{run, RunParams, System};
use ec_bench::{bench_dataset, emit, fmt_secs, Args};
use ec_graph_data::DatasetSpec;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 150);
    let patience: usize = args.get("patience", 25);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let wanted = args.get_str("datasets", "products");

    println!("== Fig. 9: end-to-end time (preprocessing + training to convergence) ==");
    for spec in DatasetSpec::all() {
        if !wanted.split(',').any(|d| d == spec.name) {
            continue;
        }
        let data = Arc::new(bench_dataset(&spec, scale, 7));
        println!(
            "-- {} replica: |V|={} |E|={} --",
            spec.name,
            data.num_vertices(),
            data.graph.num_edges()
        );
        let systems = [
            System::NonCp,
            System::DistGnn,
            System::AliGraphFg,
            System::DistDgl,
            System::Agl,
            System::EcGraph,
            System::EcGraphS,
        ];
        let mut ec_graph_time = None;
        let mut rows = Vec::new();
        for system in systems {
            let p = RunParams {
                workers,
                patience: Some(patience),
                ..RunParams::new(spec.default_layers.min(3), ec_bench::bench_hidden(&spec), epochs)
            };
            match run(system, &data, &p) {
                Ok(r) => {
                    let e2e = r.preprocessing_s + r.convergence_time_within(0.005);
                    if system == System::EcGraph {
                        ec_graph_time = Some(e2e);
                    }
                    rows.push((system, r.preprocessing_s, r.convergence_time_within(0.005), e2e));
                }
                Err(e) => println!("  {:<18} - ({e})", system.label()),
            }
        }
        for (system, pre, conv, e2e) in rows {
            let speedup = ec_graph_time.map(|t| e2e / t.max(1e-12)).unwrap_or(f64::NAN);
            emit(
                "fig9",
                &format!(
                    "  {:<18} preprocess {:>9}s  train {:>9}s  end-to-end {:>9}s  (ec-graph speedup {:>5.2}x)",
                    system.label(),
                    fmt_secs(pre),
                    fmt_secs(conv),
                    fmt_secs(e2e),
                    speedup
                ),
                serde_json::json!({
                    "dataset": spec.name, "system": system.label(),
                    "preprocessing_s": pre, "training_s": conv,
                    "end_to_end_s": e2e, "ecgraph_speedup": speedup,
                }),
            );
        }
    }
}
