//! **Related-work comparison** — bucket quantization (the paper's choice)
//! versus Top-k sparsification (the paper's [32]) at equal byte budgets,
//! both with and without error feedback, on backward-pass gradients.
//!
//! The paper argues for quantization implicitly (Section II-C reviews
//! SketchML, Top-k, 1-bit); this experiment makes the comparison explicit
//! on the same engine.
//!
//! Usage: `compressor_comparison [dataset=reddit] [epochs=60] [bits=2]
//! [scale=1.0] [workers=6]`

use ec_bench::{bench_dataset, emit, Args};
use ec_graph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph::trainer::train;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 60);
    let bits: u8 = args.get("bits", 2);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let ds = args.get_str("dataset", "reddit");

    let spec = DatasetSpec::all().into_iter().find(|s| s.name == ds).expect("unknown dataset");
    let data = Arc::new(bench_dataset(&spec, scale, 7));
    // Budget-matched ratio: B bits/coordinate vs 64 bits per kept entry.
    let ratio = bits as f32 / 64.0;
    println!(
        "== BP compressor comparison ({} replica, budget = {bits} bits/coord ⇔ top-k ratio {ratio:.4}) ==",
        spec.name
    );
    let modes: Vec<(&str, BpMode)> = vec![
        ("non-cp", BpMode::Exact),
        ("quantize", BpMode::Compressed { bits }),
        ("quantize+ec", BpMode::ResEc { bits }),
        ("topk+ec", BpMode::TopkEc { ratio }),
    ];
    for (label, bp_mode) in modes {
        let config = TrainingConfig {
            dims: ec_bench::paper_dims(&data, 16, 2),
            num_workers: workers,
            fp_mode: FpMode::Exact,
            bp_mode,
            max_epochs: epochs,
            seed: 3,
            ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
        };
        let r = train(Arc::clone(&data), &HashPartitioner::default(), config, label);
        let bp_mb = r.epochs.iter().map(|e| e.bp_bytes).sum::<u64>() as f64 / 1e6;
        emit(
            "compressor_comparison",
            &format!(
                "  {:<12} test-acc {:.4}  final-loss {:.4}  BP traffic {:>8.2} MB",
                label,
                r.best_test_acc,
                r.epochs.last().map(|e| e.loss).unwrap_or(0.0),
                bp_mb
            ),
            serde_json::json!({
                "compressor": label, "bits": bits, "ratio": ratio,
                "test_acc": r.best_test_acc, "bp_mb": bp_mb,
            }),
        );
    }
}
