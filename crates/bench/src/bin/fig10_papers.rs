//! **Fig. 10 / Table IV "OGBN-Papers" column** — EC-Graph on the largest
//! graph: full-batch EC-Graph vs EC-Graph-S per layer count, epoch time
//! and accuracy. The paper runs this on the larger 6-machine cluster; the
//! replica keeps Papers' degree/dims/classes at a reduced vertex count.
//!
//! Usage: `fig10_papers [epochs=40] [patience=15] [scale=1.0] [workers=6]
//! [layers=2,3,4]`

use ec_bench::systems::{run, RunParams, System};
use ec_bench::{bench_dataset, emit, Args};
use ec_graph_data::DatasetSpec;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 120);
    let patience: usize = args.get("patience", 40);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let layer_list = args.get_str("layers", "2,3");

    let spec = DatasetSpec::papers();
    let data = Arc::new(bench_dataset(&spec, scale, 7));
    println!(
        "== Fig. 10: OGBN-Papers replica (|V|={} |E|={} d0={} C={}) ==",
        data.num_vertices(),
        data.graph.num_edges(),
        data.feature_dim(),
        data.num_classes
    );
    for layers in layer_list.split(',').filter_map(|l| l.parse::<usize>().ok()) {
        for system in [System::EcGraph, System::EcGraphS] {
            let p = RunParams {
                workers,
                patience: Some(patience),
                ..RunParams::new(layers, 64, epochs)
            };
            let r = run(system, &data, &p).expect("papers run failed");
            emit(
                "fig10",
                &format!(
                    "  L={} {:<12} {:>9.4} s/epoch  test-acc {:.4}  conv {:>8.2}s",
                    layers,
                    system.label(),
                    r.avg_epoch_time(),
                    r.best_test_acc,
                    r.convergence_time()
                ),
                serde_json::json!({
                    "layers": layers, "system": system.label(),
                    "epoch_s": r.avg_epoch_time(), "test_acc": r.best_test_acc,
                    "convergence_s": r.convergence_time(),
                }),
            );
        }
    }
}
