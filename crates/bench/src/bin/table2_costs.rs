//! **Table II** — analytic memory / computation / communication costs of
//! the ML-centered framework versus EC-Graph, instantiated with each
//! dataset replica's measured parameters, plus the measured redundancy
//! factor of the actual ML-centered implementation as a cross-check.
//!
//! Usage: `table2_costs [scale=0.25] [workers=6] [iterations=100]`

use ec_bench::{bench_dataset, emit, Args};
use ec_graph::baselines::ml_centered::redundancy_factor;
use ec_graph::cost_model::{ec_graph_costs, ml_centered_costs, CostParams};
use ec_graph_data::{normalize, DatasetSpec};
use ec_partition::hash::HashPartitioner;
use ec_partition::{metrics, Partitioner};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.25);
    let workers: usize = args.get("workers", 6);
    let iterations: u32 = args.get("iterations", 100);

    println!("== Table II: analytic cost comparison (per target vertex) ==");
    for spec in DatasetSpec::all() {
        let data = bench_dataset(&spec, scale, 7);
        let partition = HashPartitioner::default().partition(&data.graph, workers);
        let g_rmt = metrics::avg_remote_degree(&data.graph, &partition);
        let layers = spec.default_layers as u32;
        let p = CostParams {
            avg_degree: data.graph.avg_degree(),
            avg_dim: 16.0,
            input_dim: data.feature_dim() as f64,
            layers,
            iterations,
            avg_remote_degree: g_rmt,
            bits: 2,
        };
        let ml = ml_centered_costs(&p);
        let ec = ec_graph_costs(&p);
        let p32 = CostParams { bits: 32, ..p };
        let ec32 = ec_graph_costs(&p32);
        // Measured redundancy of the actual ML-centered closures (small
        // replica; the analytic ḡ^L is the upper bound).
        let measured_redundancy = redundancy_factor(&data, workers, layers as usize);
        let _ = normalize::gcn_normalized_adjacency(&data.graph); // touch for parity
        emit(
            "table2",
            &format!(
                "  {:<10} ḡ={:>6.1} L={} | ML-centered mem {:>12.0} cmp {:>12.0} comm {:>12.0} | EC-Graph mem {:>8.0} cmp {:>8.0} comm(B=32) {:>10.0} comm(B=2) {:>10.0} | measured ML redundancy {:.2}x",
                spec.name, p.avg_degree, layers,
                ml.memory, ml.compute, ml.communication,
                ec.memory, ec.compute, ec32.communication, ec.communication,
                measured_redundancy,
            ),
            serde_json::json!({
                "dataset": spec.name, "avg_degree": p.avg_degree, "layers": layers,
                "ml_memory": ml.memory, "ml_compute": ml.compute, "ml_comm": ml.communication,
                "ec_memory": ec.memory, "ec_compute": ec.compute,
                "ec_comm_b32": ec32.communication, "ec_comm_b2": ec.communication,
                "measured_ml_redundancy": measured_redundancy,
            }),
        );
    }
}
