//! **Table IV** — training time per epoch for every system × dataset ×
//! layer count (2/3/4).
//!
//! The paper's shape to reproduce: single-machine DGL wins on tiny graphs
//! (distributed overhead dominates); on the larger graphs EC-Graph beats
//! DGL and DistGNN in the full-batch group, and EC-Graph-S beats the
//! sampling-based group; PyG runs out of memory on dense graphs (`-`).
//!
//! Usage: `table4_epoch_time [datasets=…] [epochs=5] [scale=1.0]
//! [workers=6] [layers=2,3,4]`

use ec_bench::systems::{run, RunParams, System};
use ec_bench::{bench_dataset, emit, Args};
use ec_graph_data::DatasetSpec;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 5);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let layer_list = args.get_str("layers", "2,3,4");
    let wanted = args.get_str("datasets", "cora,pubmed,reddit,products,papers");

    println!("== Table IV: avg training time per epoch (simulated seconds) ==");
    for spec in DatasetSpec::all() {
        if !wanted.split(',').any(|d| d == spec.name) {
            continue;
        }
        let data = Arc::new(bench_dataset(&spec, scale, 7));
        println!(
            "-- {} replica: |V|={} |E|={} d0={} --",
            spec.name,
            data.num_vertices(),
            data.graph.num_edges(),
            data.feature_dim()
        );
        for layers in layer_list.split(',').filter_map(|l| l.parse::<usize>().ok()) {
            for system in System::all() {
                let p = RunParams {
                    workers,
                    patience: None,
                    ..RunParams::new(layers, ec_bench::bench_hidden(&spec), epochs)
                };
                match run(system, &data, &p) {
                    Ok(r) => {
                        let avg = r.avg_epoch_time();
                        emit(
                            "table4",
                            &format!(
                                "  {:<10} L={} {:<18} {:>10.4} s/epoch  (compute {:>8.4}, comm {:>8.4})",
                                spec.name,
                                layers,
                                system.label(),
                                avg,
                                r.epochs.iter().map(|e| e.compute_s).sum::<f64>()
                                    / r.epochs.len().max(1) as f64,
                                r.epochs.iter().map(|e| e.comm_s).sum::<f64>()
                                    / r.epochs.len().max(1) as f64,
                            ),
                            serde_json::json!({
                                "dataset": spec.name, "layers": layers,
                                "system": system.label(), "epoch_s": avg,
                                "epoch_bytes": r.total_bytes() / r.epochs.len().max(1) as u64,
                            }),
                        );
                    }
                    Err(e) => {
                        emit(
                            "table4",
                            &format!(
                                "  {:<10} L={} {:<18}          -  ({e})",
                                spec.name,
                                layers,
                                system.label()
                            ),
                            serde_json::json!({
                                "dataset": spec.name, "layers": layers,
                                "system": system.label(), "epoch_s": serde_json::Value::Null, "error": e,
                            }),
                        );
                    }
                }
            }
        }
    }
}
