//! **Serving benchmark** — p50/p99 latency and QPS per worker for the
//! checkpoint-backed inference service (`ec-serve`).
//!
//! For each dataset the bench trains a small GCN for a few epochs, writes
//! the checkpoint to disk, reloads it through the engine-free
//! [`ec_graph::infer::ModelWeights`] path (the deployment scenario: the
//! server never holds a trainer), and then drives the service with the
//! seeded closed-loop load generator across the grid
//!
//! `{cache on, cache off} × {no faults, one 2× straggler}`.
//!
//! Every latency is a *simulated* quantity (modeled network + modeled
//! compute under `set_deterministic_timing`), so the emitted
//! `BENCH_serving.json` is byte-identical across runs of one config — CI
//! archives it as an artifact and diffs catch regressions.
//!
//! Usage: `serve_bench [datasets=cora,pubmed] [epochs=3] [workers=4]
//! [requests=600] [clients=16] [scale=0.2] [bits=0] [seed=17]
//! [out=BENCH_serving.json]`

use ec_bench::{bench_dataset, emit, Args};
use ec_faults::FaultPlan;
use ec_graph::config::TrainingConfig;
use ec_graph::engine::DistributedEngine;
use ec_graph::infer::ModelWeights;
use ec_graph_data::{normalize, DatasetSpec};
use ec_partition::{hash::HashPartitioner, Partitioner};
use ec_serve::{run_closed_loop, InferenceService, ServeConfig, WorkloadConfig};
use std::sync::Arc;

fn main() {
    // Latencies must be pure functions of the config: zero out measured
    // host time everywhere (same discipline as the determinism suite).
    ec_comm::set_deterministic_timing(true);
    let args = Args::from_env();
    let datasets = args.get_str("datasets", "cora,pubmed");
    let epochs: usize = args.get("epochs", 3);
    let workers: usize = args.get("workers", 4);
    let requests: u64 = args.get("requests", 600);
    let clients: usize = args.get("clients", 16);
    let scale: f64 = args.get("scale", 0.2);
    let bits: u8 = args.get("bits", 0);
    let seed: u64 = args.get("seed", 17);
    let out_path = args.get_str("out", "BENCH_serving.json");

    println!("== serving benchmark ({requests} requests, {workers} workers) ==");
    let ckpt_dir = std::env::temp_dir().join(format!("ec_serve_bench_{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");

    let mut rows = Vec::new();
    for ds in datasets.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let spec = DatasetSpec::all().into_iter().find(|s| s.name == ds).expect("unknown dataset");
        let data = Arc::new(bench_dataset(&spec, scale, 7));
        let partition = Arc::new(HashPartitioner::default().partition(&data.graph, workers));
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
        let adjs = vec![adj; 2];
        let config = TrainingConfig {
            dims: ec_bench::paper_dims(&data, ec_bench::bench_hidden(&spec), 2),
            num_workers: workers,
            max_epochs: epochs,
            seed: 3,
            ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
        };
        let model_kind = config.model;
        let mut engine =
            DistributedEngine::new(Arc::clone(&data), adjs.clone(), (*partition).clone(), config);
        for _ in 0..epochs {
            engine.run_epoch();
        }
        // Deployment path: serve from the on-disk checkpoint, not from the
        // (dropped) trainer.
        let ckpt = ckpt_dir.join(format!("{ds}.ckpt"));
        engine.save_checkpoint(&ckpt).expect("save checkpoint");
        drop(engine);
        let model = ModelWeights::load(&ckpt, model_kind).expect("load checkpoint");

        for (cache_label, cache_rows, pinned_rows) in
            [("cache_on", 256usize, 32usize), ("cache_off", 0, 0)]
        {
            for (fault_label, faults) in [
                ("no_faults", FaultPlan::none()),
                ("straggler", FaultPlan::none().with_straggler(0, 2.0)),
            ] {
                let mut sc = ServeConfig::defaults(workers);
                sc.cache_rows = cache_rows;
                sc.pinned_rows = pinned_rows;
                sc.faults = faults;
                if bits > 0 {
                    sc.fetch_bits = Some(bits);
                }
                let mut svc = InferenceService::new(
                    model.clone(),
                    Arc::clone(&data),
                    adjs.clone(),
                    Arc::clone(&partition),
                    sc,
                );
                let workload = WorkloadConfig {
                    clients,
                    total_requests: requests,
                    seed,
                    ..WorkloadConfig::defaults()
                };
                let report = run_closed_loop(&mut svc, &workload);
                let qps: Vec<String> =
                    report.per_worker.iter().map(|w| format!("{:.0}", w.qps)).collect();
                emit(
                    "serve_bench",
                    &format!(
                        "{ds:<8} {cache_label:<9} {fault_label:<9} p50 {:>7.3}ms  p99 {:>7.3}ms  \
                         qps/worker [{}]  fetched {:.1} KB",
                        report.latency_p50_s * 1e3,
                        report.latency_p99_s * 1e3,
                        qps.join(", "),
                        report.fetch_bytes as f64 / 1e3,
                    ),
                    serde_json::json!({
                        "dataset": ds,
                        "cache": cache_label,
                        "faults": fault_label,
                        "p50_ms": report.latency_p50_s * 1e3,
                        "p99_ms": report.latency_p99_s * 1e3,
                    }),
                );
                let mut row = report.to_json();
                if let serde_json::Value::Object(fields) = &mut row {
                    fields.push(("cache".to_string(), serde_json::json!(cache_label)));
                    fields.push(("faults".to_string(), serde_json::json!(fault_label)));
                }
                rows.push(row);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let doc = serde_json::json!({
        "experiment": "serve_bench",
        "workers": workers,
        "requests": requests,
        "clients": clients,
        "seed": seed,
        "grid": rows,
    });
    std::fs::write(&out_path, doc.to_string()).expect("write BENCH_serving.json");
    println!("wrote {out_path}");
}
