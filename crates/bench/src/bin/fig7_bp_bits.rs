//! **Fig. 7** — backward-pass convergence under different bit widths.
//!
//! Trains Non-cp, `Cp-bp-B` and `ResEC-BP-B` (`B ∈ {1, 2, 4, 8}`), with
//! the forward pass exact, and emits test accuracy per epoch. The paper's
//! shape: compressing gradients without error feedback slows convergence
//! and lowers accuracy; ResEC-BP restores both.
//!
//! Usage: `fig7_bp_bits [datasets=cora,reddit] [epochs=100] [scale=1.0]
//! [workers=6] [every=5]`

use ec_bench::systems::RunParams;
use ec_bench::{bench_dataset, emit, Args};
use ec_graph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph::trainer::train;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 100);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let every: usize = args.get("every", 5);
    let wanted = args.get_str("datasets", "cora,reddit");

    println!("== Fig. 7: BP convergence vs compression bits ==");
    for spec in DatasetSpec::all() {
        if !wanted.split(',').any(|d| d == spec.name) {
            continue;
        }
        let data = Arc::new(bench_dataset(&spec, scale, 7));
        println!(
            "-- {} replica: |V|={} |E|={} --",
            spec.name,
            data.num_vertices(),
            data.graph.num_edges()
        );
        let p = RunParams { workers, ..RunParams::new(2, 16, epochs) };
        let mut modes: Vec<(String, BpMode)> = vec![("non-cp".into(), BpMode::Exact)];
        for bits in [1u8, 2, 4, 8] {
            modes.push((format!("cp-bp-{bits}"), BpMode::Compressed { bits }));
            modes.push((format!("resec-bp-{bits}"), BpMode::ResEc { bits }));
        }
        for (label, bp_mode) in modes {
            let config = TrainingConfig {
                dims: ec_bench::paper_dims(&data, p.hidden, p.layers),
                num_workers: p.workers,
                fp_mode: FpMode::Exact,
                bp_mode,
                max_epochs: epochs,
                seed: 3,
                eval_every: every,
                ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
            };
            let r = train(Arc::clone(&data), &HashPartitioner::default(), config, &label);
            for e in r.epochs.iter().step_by(every) {
                emit(
                    "fig7",
                    &format!(
                        "  {:<12} {:<12} epoch {:>4}  loss {:>8.4}  test-acc {:.4}",
                        spec.name, label, e.epoch, e.loss, e.test_acc
                    ),
                    serde_json::json!({
                        "dataset": spec.name, "mode": label, "epoch": e.epoch,
                        "loss": e.loss, "test_acc": e.test_acc,
                        "bp_bytes": e.bp_bytes,
                    }),
                );
            }
            println!(
                "  {:<12} {:<12} best test-acc {:.4}  total BP GB {:.4}",
                spec.name,
                label,
                r.best_test_acc,
                r.epochs.iter().map(|e| e.bp_bytes).sum::<u64>() as f64 / 1e9
            );
        }
    }
}
