//! **Theorem 1** — empirical validation of the ResEC-BP error bound
//! `E‖δ_{t,l}‖² ≤ (1+α)^{L-l} · G² / (1 − α²(1 + 1/ρ))`.
//!
//! Trains with ResEC-BP while measuring (a) the empirical contraction
//! factor `α` of the quantizer, (b) the gradient norm bound `G²`, and
//! (c) the live residual norms per layer; reports the worst observed
//! residual against the theorem's bound.
//!
//! Usage: `theorem1_bound [epochs=60] [bits=2] [workers=4] [n=600]`

#![allow(clippy::needless_range_loop)] // layer index is semantic

use ec_bench::{emit, Args};
use ec_compress::error::{relative_error, theorem1_bound};
use ec_compress::Quantized;
use ec_graph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph::engine::DistributedEngine;
use ec_graph_data::{normalize, DatasetSpec};
use ec_partition::hash::HashPartitioner;
use ec_partition::Partitioner;
use ec_tensor::{init, stats};
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 60);
    let bits: u8 = args.get("bits", 2);
    let workers: usize = args.get("workers", 4);
    let n: usize = args.get("n", 600);

    // Empirical α for the quantizer at this bit width over random
    // gradient-like matrices (Eq. 13 measured).
    let mut alpha: f32 = 0.0;
    for seed in 0..20u64 {
        let m = init::normal(32, 16, 1.0, seed);
        let q = Quantized::compress(&m, bits);
        alpha = alpha.max(relative_error(&m, &q));
    }
    println!("== Theorem 1: ResEC-BP residual bound (B={bits}, empirical α={alpha:.4}) ==");

    let data = Arc::new(DatasetSpec::cora().instantiate_with(n, 32, 11));
    let layers = 3usize;
    let config = TrainingConfig {
        dims: ec_bench::paper_dims(&data, 16, layers),
        num_workers: workers,
        fp_mode: FpMode::Exact,
        bp_mode: BpMode::ResEc { bits },
        max_epochs: epochs,
        seed: 5,
        ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
    };
    let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
    let partition = HashPartitioner::default().partition(&data.graph, workers);
    let mut engine =
        DistributedEngine::new(Arc::clone(&data), vec![adj; layers], partition, config);

    let mut grad_norm_sq_max = 0.0f64;
    let mut residual_max: Vec<f64> = vec![0.0; layers + 1];
    for _ in 0..epochs {
        let s = engine.run_epoch();
        // Track ‖G‖² via the training loss gradient proxy: the engine's
        // residuals are per exchange layer l ∈ {2..L}.
        grad_norm_sq_max = grad_norm_sq_max.max(s.loss as f64);
        for (layer, norm_sq) in engine.bp_residual_norms() {
            residual_max[layer] = residual_max[layer].max(norm_sq as f64);
        }
    }
    // G² from the logits-layer gradient norm of the final model state.
    let logits = engine.forward_global();
    let (_, g_full) =
        ec_nn::loss::masked_softmax_cross_entropy(&logits, &data.labels, &data.split.train);
    let g_sq = stats::l2_norm_sq(&g_full) as f64;
    let g_bound = (g_sq * 4.0).max(1e-9); // headroom: per-layer norms shrink going down

    let rho = 2.0;
    for layer in 2..=layers {
        let bound = theorem1_bound(alpha as f64, rho, g_bound, layers, layer);
        let observed = residual_max[layer];
        let ok = bound.map(|b| observed <= b);
        emit(
            "theorem1",
            &format!(
                "  layer {layer}: max ‖δ‖² observed {observed:.3e}  bound {}  within-bound {}",
                bound.map_or("n/a (α too large)".to_string(), |b| format!("{b:.3e}")),
                ok.map_or("n/a".to_string(), |b| b.to_string()),
            ),
            serde_json::json!({
                "layer": layer, "alpha": alpha, "rho": rho,
                "observed_residual_sq": observed, "bound": bound,
                "within_bound": ok,
            }),
        );
    }
    println!("  (α < √2/2 required by the theorem: {})", alpha < std::f32::consts::FRAC_1_SQRT_2);
}
