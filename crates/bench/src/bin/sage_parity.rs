//! **Section V-A claim** — "Since GCN and GraphSAGE enjoy similar
//! performance improvements from our optimizations, we only show the
//! results of GCN for conciseness." The paper omits the GraphSAGE data;
//! this experiment supplies it: Non-cp vs Cp vs full EC-Graph for both
//! models on the same replica.
//!
//! Usage: `sage_parity [dataset=cora] [epochs=80] [scale=1.0] [workers=6]`

use ec_bench::{bench_dataset, emit, Args};
use ec_graph::config::{BpMode, FpMode, ModelKind, TrainingConfig};
use ec_graph::trainer::train;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 80);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let ds = args.get_str("dataset", "cora");

    let spec = DatasetSpec::all().into_iter().find(|s| s.name == ds).expect("unknown dataset");
    let data = Arc::new(bench_dataset(&spec, scale, 7));
    println!(
        "== GCN vs GraphSAGE under EC-Graph's optimizations ({} replica, |V|={}) ==",
        spec.name,
        data.num_vertices()
    );
    for model in [ModelKind::Gcn, ModelKind::Sage] {
        let mlabel = if model == ModelKind::Gcn { "gcn" } else { "sage" };
        let variants: Vec<(&str, FpMode, BpMode)> = vec![
            ("non-cp", FpMode::Exact, BpMode::Exact),
            ("cp-2/2", FpMode::Compressed { bits: 2 }, BpMode::Compressed { bits: 2 }),
            (
                "ec-graph",
                FpMode::ReqEc { bits: 2, t_tr: 10, adaptive: true },
                BpMode::ResEc { bits: 4 },
            ),
        ];
        for (vlabel, fp_mode, bp_mode) in variants {
            let config = TrainingConfig {
                dims: ec_bench::paper_dims(&data, 16, 2),
                model,
                num_workers: workers,
                fp_mode,
                bp_mode,
                max_epochs: epochs,
                seed: 3,
                ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
            };
            let r = train(
                Arc::clone(&data),
                &HashPartitioner::default(),
                config,
                &format!("{mlabel}/{vlabel}"),
            );
            let gb = r.total_bytes() as f64 / 1e9;
            emit(
                "sage_parity",
                &format!(
                    "  {:<5} {:<10} test-acc {:.4}  total {:.4} GB  {:.4} s/epoch",
                    mlabel,
                    vlabel,
                    r.best_test_acc,
                    gb,
                    r.avg_epoch_time()
                ),
                serde_json::json!({
                    "model": mlabel, "variant": vlabel,
                    "test_acc": r.best_test_acc, "total_gb": gb,
                    "epoch_s": r.avg_epoch_time(),
                }),
            );
        }
    }
}
