//! **Resilience sweep** — training under injected faults: message drops ×
//! straggler slowdowns × recovery policy.
//!
//! The experiment behind the `ec-faults` subsystem: EC-Graph's trend
//! prediction gives it a second use beyond bandwidth reduction. When a
//! forward-pass message is lost, the requester already holds a zero-payload
//! approximation (`Ĥ_pdt = H_base + M_cr·k`), so instead of burning
//! timeouts on retries it can *degrade gracefully* — accept the prediction
//! and move on. The sweep compares:
//!
//! * `retry`   — retry-until-delivered (the conventional baseline): every
//!   loss costs `timeout + resend` on the simulated clock, accuracy is
//!   untouched.
//! * `degrade` — EC-degrade: bounded attempts, then substitute the
//!   prediction. Loss costs bounded time; accuracy relies on the Selector's
//!   own machinery (the candidate it falls back to is one the Selector
//!   frequently picks voluntarily).
//!
//! Expected shape: at equal drop rates, `degrade` trains in strictly less
//! simulated time with final accuracy no worse than `retry` within noise.
//!
//! Usage: `resilience_sweep [dataset=cora] [bits=2] [epochs=60]
//! [scale=1.0] [workers=6] [straggler=2.0] [attempts=1]`

use ec_bench::{bench_dataset, emit, Args};
use ec_faults::FaultPlan;
use ec_graph::config::{BpMode, FpMode, ResiliencePolicy, TrainingConfig};
use ec_graph::trainer::train;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 60);
    let bits: u8 = args.get("bits", 2);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let straggler: f64 = args.get("straggler", 2.0);
    // Degrade-path send attempts before accepting the prediction; 1 means
    // the first loss already falls back (zero retransmission).
    let attempts: u32 = args.get("attempts", 1);
    let ds = args.get_str("dataset", "cora");

    let spec = DatasetSpec::all().into_iter().find(|s| s.name == ds).expect("unknown dataset");
    let data = Arc::new(bench_dataset(&spec, scale, 7));
    println!(
        "== resilience sweep (ReqEC-FP-{bits}, {} replica, |V|={}, straggler ×{straggler}) ==",
        spec.name,
        data.num_vertices()
    );

    for drop_p in [0.0f64, 0.02, 0.05, 0.10] {
        for (label, policy) in
            [("retry", ResiliencePolicy::RetryOnly), ("degrade", ResiliencePolicy::EcDegrade)]
        {
            // One slow worker rides along at every drop rate: stragglers and
            // losses compound in real clusters.
            let faults = if drop_p == 0.0 {
                FaultPlan::none()
            } else {
                FaultPlan::uniform_drop(41, drop_p).with_straggler(0, straggler)
            };
            let mut config = TrainingConfig {
                dims: ec_bench::paper_dims(&data, 16, 2),
                num_workers: workers,
                fp_mode: FpMode::ReqEc { bits, t_tr: 10, adaptive: false },
                bp_mode: BpMode::ResEc { bits },
                max_epochs: epochs,
                faults,
                seed: 3,
                ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
            };
            config.resilience.policy = policy;
            config.resilience.max_attempts = attempts;
            let r = train(Arc::clone(&data), &HashPartitioner::default(), config, label);
            let retry_mb = r.epochs.iter().map(|e| e.retry_bytes).sum::<u64>() as f64 / 1e6;
            let degraded: u64 = r.epochs.iter().map(|e| e.degraded).sum();
            let comm_s: f64 = r.epochs.iter().map(|e| e.comm_s).sum();
            emit(
                "resilience_sweep",
                &format!(
                    "  drop={drop_p:<5} {label:<8} test-acc {:.4}  comm {:>8.3}s  \
                     wasted {:>7.2} MB  degraded msgs {degraded}",
                    r.best_test_acc, comm_s, retry_mb
                ),
                serde_json::json!({
                    "drop_p": drop_p, "policy": label, "straggler": straggler,
                    "test_acc": r.best_test_acc, "comm_s": comm_s,
                    "avg_epoch_s": r.avg_epoch_time(), "retry_mb": retry_mb,
                    "degraded": degraded,
                }),
            );
        }
    }
}
