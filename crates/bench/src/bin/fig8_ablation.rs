//! **Fig. 8** — ablation study: speedup bars + accuracy lines.
//!
//! Per dataset, compares Non-cp / Cp-fp / Cp-bp / ReqEC / ResEC /
//! ReqEC-adapt / full EC-Graph using the paper's per-dataset bit settings
//! ("2/4/1/2, 4/4/2/2, 8/8/2/4, 16/8/2/2, 8/8/4/4 bits for
//! Cp-fp/Cp-bp/ReqEC/ResEC"). Reports convergence-time speedup over
//! Non-cp and the best test accuracy. The paper's shape: plain compression
//! can be *slower* than no compression (it needs more epochs), while the
//! compensated variants are both faster and as accurate.
//!
//! Usage: `fig8_ablation [datasets=cora,pubmed,reddit,products,papers]
//! [epochs=150] [scale=1.0] [workers=6] [patience=25]`

use ec_bench::{bench_dataset, emit, fmt_secs, Args};
use ec_graph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph::report::RunResult;
use ec_graph::trainer::train;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use std::sync::Arc;

/// The paper's Fig. 8 bit settings: (Cp-fp, Cp-bp, ReqEC, ResEC).
fn paper_bits(dataset: &str) -> (u8, u8, u8, u8) {
    match dataset {
        "cora" => (2, 4, 1, 2),
        "pubmed" => (4, 4, 2, 2),
        "reddit" => (8, 8, 2, 4),
        "products" => (16, 8, 2, 2),
        "papers" => (8, 8, 4, 4),
        _ => (4, 4, 2, 2),
    }
}

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 150);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let patience: usize = args.get("patience", 25);
    let wanted = args.get_str("datasets", "cora,pubmed,reddit,products,papers");

    println!("== Fig. 8: ablation — speedup over Non-cp (bars) + accuracy (lines) ==");
    for spec in DatasetSpec::all() {
        if !wanted.split(',').any(|d| d == spec.name) {
            continue;
        }
        let data = Arc::new(bench_dataset(&spec, scale, 7));
        let (b_cpfp, b_cpbp, b_reqec, b_resec) = paper_bits(spec.name);
        println!(
            "-- {} replica: |V|={} |E|={} bits(Cp-fp/Cp-bp/ReqEC/ResEC)={}/{}/{}/{} --",
            spec.name,
            data.num_vertices(),
            data.graph.num_edges(),
            b_cpfp,
            b_cpbp,
            b_reqec,
            b_resec
        );
        let variants: Vec<(&str, FpMode, BpMode)> = vec![
            ("non-cp", FpMode::Exact, BpMode::Exact),
            ("cp-fp", FpMode::Compressed { bits: b_cpfp }, BpMode::Exact),
            ("cp-bp", FpMode::Exact, BpMode::Compressed { bits: b_cpbp }),
            ("reqec", FpMode::ReqEc { bits: b_reqec, t_tr: 10, adaptive: false }, BpMode::Exact),
            ("resec", FpMode::Exact, BpMode::ResEc { bits: b_resec }),
            (
                "reqec-adapt",
                FpMode::ReqEc { bits: b_reqec, t_tr: 10, adaptive: true },
                BpMode::Exact,
            ),
            (
                "ec-graph",
                FpMode::ReqEc { bits: b_reqec, t_tr: 10, adaptive: true },
                BpMode::ResEc { bits: b_resec },
            ),
        ];
        let mut baseline_time = None;
        for (label, fp_mode, bp_mode) in variants {
            let config = TrainingConfig {
                dims: ec_bench::paper_dims(&data, 16, 2),
                num_workers: workers,
                fp_mode,
                bp_mode,
                max_epochs: epochs,
                patience: Some(patience),
                seed: 3,
                eval_every: 1,
                ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
            };
            let r: RunResult = train(Arc::clone(&data), &HashPartitioner::default(), config, label);
            let conv = r.convergence_time_within(0.005);
            let baseline = *baseline_time.get_or_insert(conv);
            let speedup = baseline / conv.max(1e-12);
            emit(
                "fig8",
                &format!(
                    "  {:<12} {:<12} speedup {:>5.2}x  test-acc {:.4}  conv {:>8}s ({} epochs)",
                    spec.name,
                    label,
                    speedup,
                    r.best_test_acc,
                    fmt_secs(conv),
                    r.convergence_epoch_within(0.005) + 1
                ),
                serde_json::json!({
                    "dataset": spec.name, "variant": label,
                    "speedup_vs_noncp": speedup, "test_acc": r.best_test_acc,
                    "convergence_s": conv, "epochs_to_conv": r.convergence_epoch_within(0.005) + 1,
                    "total_gb": r.total_bytes() as f64 / 1e9,
                }),
            );
        }
    }
}
