//! **Hot-path benchmark** — the perf trajectory for the persistent worker
//! pool, the cache-blocked kernels, and the allocation-free codecs.
//!
//! Times (a) one full-batch GCN epoch on the Cora and Reddit replicas with
//! the engine pinned to 1 thread vs a 2-thread pool (same bits,
//! byte-identical reports — only wall-clock moves), (b) the dense/sparse
//! kernels, each against the naive pre-blocking reference
//! (`ops::reference`) it replaced, and (c) the quantize → pack → unpack →
//! dequantize codec chain. Every timing is min-of-`repeats` after one
//! discarded warm-up run, so a cold allocator, cold page cache, or one
//! scheduler hiccup cannot masquerade as a regression.
//!
//! Rows carry both the *requested* and the *resolved* thread count:
//! `ComputeConfig::resolve` caps requests at the host's physical
//! parallelism, so on a 1-core runner the "2-thread" arm legitimately runs
//! 1 thread and its speedup is ≈1.0 by construction.
//!
//! Unless `EC_BENCH_SKIP_SPEEDUP_GATE=1` (set automatically by
//! `scripts/check.sh --bench` on single-core hosts, where the threading
//! comparison is vacuous), the run **fails** if a 2-thread epoch row shows
//! `speedup_vs_seq < 1.0` or no kernel beats its naive reference by 1.3×.
//!
//! Usage: `hotpath_bench [epochs=3] [scale=1.0] [workers=6] [threads=2]
//! [repeats=3] [out=BENCH_hotpath.json]`

use ec_bench::{bench_dataset, emit, fmt_secs, Args};
use ec_comm::HostTimer;
use ec_compress::quantize::Quantized;
use ec_graph::config::{ComputeConfig, FpMode, TrainingConfig};
use ec_graph::trainer::train;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use ec_tensor::ops::reference;
use ec_tensor::{init, parallel, pool, CsrMatrix};
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 3).max(2);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let threads: usize = args.get("threads", 2);
    let repeats: usize = args.get("repeats", 3).max(1);
    let out_path = args.get_str("out", "BENCH_hotpath.json");
    let host = pool::physical_parallelism();
    // The parallel arm requests at least 2 threads (the acceptance rows);
    // resolution caps at the host's physical parallelism.
    let par_requested = if threads == 0 { 2 } else { threads.max(2) };
    let par_resolved = parallel::effective_threads(par_requested);
    println!(
        "== hot-path benchmark (1 vs {par_requested} threads [{par_resolved} resolved on \
         {host}-core host], {epochs} epochs/point, min of {repeats} repeats) =="
    );

    // (a) Full-batch GCN epoch, engine-level 1 vs N threads.
    let mut epoch_rows = Vec::new();
    for spec in [DatasetSpec::cora(), DatasetSpec::reddit()] {
        let data = Arc::new(bench_dataset(&spec, scale, 7));
        let avg_epoch = |compute: ComputeConfig| -> f64 {
            let config = TrainingConfig {
                dims: ec_bench::paper_dims(&data, ec_bench::bench_hidden(&spec), 2),
                num_workers: workers,
                fp_mode: FpMode::ReqEc { bits: 2, t_tr: 10, adaptive: true },
                max_epochs: epochs,
                seed: 3,
                compute,
                ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
            };
            let r = train(Arc::clone(&data), &HashPartitioner::default(), config, "hotpath");
            // Skip the first epoch (cold caches), average the rest.
            let measured = &r.epochs[1..];
            measured.iter().map(|e| e.compute_s).sum::<f64>() / measured.len() as f64
        };
        // Discarded warm-up: faults in the replica, the allocator arenas,
        // and the pool lanes before anything is measured.
        let _ = avg_epoch(ComputeConfig::sequential());
        let mut seq_s = 0.0f64;
        for (label, requested, compute) in [
            ("seq", 1usize, ComputeConfig::sequential()),
            (
                "par",
                par_requested,
                ComputeConfig { worker_threads: par_requested, kernel_threads: 0 },
            ),
        ] {
            let mut compute_s = f64::MAX;
            for _ in 0..repeats {
                compute_s = compute_s.min(avg_epoch(compute));
            }
            if label == "seq" {
                seq_s = compute_s;
            }
            let speedup = if compute_s > 0.0 { seq_s / compute_s } else { 1.0 };
            let resolved = compute.resolve(workers).0;
            let row = serde_json::json!({
                "dataset": spec.name,
                "threads": requested,
                "threads_resolved": resolved,
                "workers": workers,
                "repeats": repeats,
                "compute_s_per_epoch": compute_s,
                "speedup_vs_seq": speedup,
            });
            emit(
                "hotpath_epoch",
                &format!(
                    "  {:<8} {label} ({requested} threads, {resolved} resolved): compute \
                     {}/epoch  speedup {speedup:.2}x",
                    spec.name,
                    fmt_secs(compute_s)
                ),
                row.clone(),
            );
            epoch_rows.push(row);
        }
    }

    // (b) Dense/sparse kernels: blocked/packed vs the naive reference they
    // replaced, and 1 vs N threads on the pool.
    let mut kernel_rows = Vec::new();
    let a = init::uniform(4096, 256, -0.5, 0.5, 11);
    let b = init::uniform(256, 128, -0.5, 0.5, 12);
    let at_b_l = init::uniform(4096, 192, -0.5, 0.5, 13);
    let a_bt_r = init::uniform(512, 256, -0.5, 0.5, 14);
    let a_bt_b = init::uniform(128, 256, -0.5, 0.5, 17);
    let adj = random_csr(4096, 4096, 16, 15);
    #[allow(clippy::type_complexity)]
    let kernels: [(&str, Box<dyn Fn(usize)>, Box<dyn Fn()>); 4] = [
        (
            "matmul",
            Box::new(|t| drop(parallel::matmul(&a, &b, t))),
            Box::new(|| drop(reference::matmul(&a, &b))),
        ),
        (
            "matmul_at_b",
            Box::new(|t| drop(parallel::matmul_at_b(&a, &at_b_l, t))),
            Box::new(|| drop(reference::matmul_at_b(&a, &at_b_l))),
        ),
        (
            "matmul_a_bt",
            Box::new(|t| drop(parallel::matmul_a_bt(&a_bt_r, &a_bt_b, t))),
            Box::new(|| drop(reference::matmul_a_bt(&a_bt_r, &a_bt_b))),
        ),
        (
            "spmm",
            Box::new(|t| drop(parallel::spmm(&adj, &a, t))),
            Box::new(|| drop(reference::spmm(&adj, &a))),
        ),
    ];
    let mut thread_arms = vec![1usize];
    if par_requested > 1 {
        thread_arms.push(par_requested);
    }
    for (kernel, blocked, naive) in &kernels {
        let naive_secs = time_best(repeats, naive);
        for &t in &thread_arms {
            let secs = time_best(repeats, || blocked(t));
            let vs_naive = if secs > 0.0 { naive_secs / secs } else { 1.0 };
            let row = serde_json::json!({
                "kernel": kernel,
                "threads": t,
                "threads_resolved": parallel::effective_threads(t),
                "repeats": repeats,
                "secs": secs,
                "naive_secs": naive_secs,
                "speedup_vs_naive": vs_naive,
            });
            emit(
                "hotpath_kernel",
                &format!(
                    "  {kernel:<12} {t:>2} thread(s): {}  (naive {}, {vs_naive:.2}x)",
                    fmt_secs(secs),
                    fmt_secs(naive_secs)
                ),
                row.clone(),
            );
            kernel_rows.push(row);
        }
    }

    // (c) Compression codec chain (quantize → pack fused; unpack → dequant
    // streamed). Single-threaded by design — the fan-out happens per
    // worker, each compressing its own messages.
    let mut codec_rows = Vec::new();
    let payload = init::uniform(2048, 512, -1.0, 1.0, 16);
    let elems = payload.len() as f64;
    for bits in [2u8, 4, 8] {
        let c_secs = time_best(repeats, || drop(Quantized::compress(&payload, bits)));
        let q = Quantized::compress(&payload, bits);
        let d_secs = time_best(repeats, || drop(q.decompress()));
        let row = serde_json::json!({
            "bits": bits,
            "repeats": repeats,
            "compress_secs": c_secs,
            "decompress_secs": d_secs,
            "melem_per_s_compress": elems / c_secs / 1e6,
            "melem_per_s_decompress": elems / d_secs / 1e6,
        });
        emit(
            "hotpath_codec",
            &format!(
                "  quantize+pack b={bits}: {} ({:.0} Melem/s)   unpack+dequant: {} ({:.0} Melem/s)",
                fmt_secs(c_secs),
                elems / c_secs / 1e6,
                fmt_secs(d_secs),
                elems / d_secs / 1e6
            ),
            row.clone(),
        );
        codec_rows.push(row);
    }

    let violations = gate_violations(&epoch_rows, &kernel_rows);
    // Provenance: a document produced under a waived gate must say so, or
    // a cross-run `trace_diff` would silently compare apples to oranges.
    let gate_waived = std::env::var("EC_BENCH_SKIP_SPEEDUP_GATE").is_ok();
    let doc = serde_json::json!({
        "experiment": "hotpath_bench",
        "host_threads": host,
        "threads_requested": par_requested,
        "threads_resolved": par_resolved,
        "epochs": epochs,
        "scale": scale,
        "repeats": repeats,
        "speedup_gate_waived": gate_waived,
        "gate_violations": violations,
        "epoch": epoch_rows,
        "kernels": kernel_rows,
        "codecs": codec_rows,
    });
    std::fs::write(&out_path, doc.to_string()).expect("write BENCH_hotpath.json");
    println!("wrote {out_path}");

    if !violations.is_empty() {
        if gate_waived {
            println!("speedup gate SKIPPED (EC_BENCH_SKIP_SPEEDUP_GATE): {violations:?}");
        } else {
            eprintln!("speedup gate FAILED: {violations:?}");
            eprintln!("(export EC_BENCH_SKIP_SPEEDUP_GATE=1 to waive on constrained hosts)");
            std::process::exit(1);
        }
    }
}

/// The perf floor this benchmark enforces: multi-thread epoch rows must not
/// run slower than sequential, and the blocked kernels must beat the naive
/// reference by at least 1.3× somewhere.
fn gate_violations(
    epoch_rows: &[serde_json::Value],
    kernel_rows: &[serde_json::Value],
) -> Vec<String> {
    let mut v = Vec::new();
    for row in epoch_rows {
        let threads = row["threads"].as_u64().unwrap_or(1);
        let speedup = row["speedup_vs_seq"].as_f64().unwrap_or(1.0);
        if threads >= 2 && speedup < 1.0 {
            v.push(format!(
                "epoch {} @{threads}t: speedup_vs_seq {speedup:.2} < 1.0",
                row["dataset"].as_str().unwrap_or("?")
            ));
        }
    }
    let best =
        kernel_rows.iter().filter_map(|r| r["speedup_vs_naive"].as_f64()).fold(0.0f64, f64::max);
    if best < 1.3 {
        v.push(format!("no kernel reached 1.3x over the naive reference (best {best:.2}x)"));
    }
    v
}

/// Best-of-`reps` wall time of `f` after one discarded warm-up call
/// (HostTimer is the sanctioned clock).
fn time_best(reps: usize, f: impl Fn()) -> f64 {
    f();
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = HostTimer::start();
        f();
        best = best.min(t.elapsed_s());
    }
    best
}

/// Fixed-degree random sparse matrix for the SpMM timing.
fn random_csr(rows: usize, cols: usize, degree: usize, seed: u64) -> CsrMatrix {
    let mut triples = Vec::with_capacity(rows * degree);
    let mut state = seed | 1;
    for r in 0..rows {
        for _ in 0..degree {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = (state >> 33) as usize % cols;
            triples.push((r, c, 1.0 / degree as f32));
        }
    }
    CsrMatrix::from_triples(rows, cols, &triples)
}
