//! **Hot-path benchmark** — the perf trajectory for the intra-superstep
//! thread fan-out and the allocation-free compression codecs.
//!
//! Times (a) one full-batch GCN epoch on the Cora and Reddit replicas with
//! the engine pinned to 1 thread vs the machine's parallelism (same bits,
//! byte-identical reports — only wall-clock moves), (b) the dense/sparse
//! kernels at 1 vs N threads, and (c) the quantize → pack → unpack →
//! dequantize codec chain. Results go to stdout and `BENCH_hotpath.json`
//! (at the repo root when launched by `scripts/check.sh --bench`).
//!
//! Usage: `hotpath_bench [epochs=3] [scale=1.0] [workers=6] [threads=0]
//! [out=BENCH_hotpath.json]`

use ec_bench::{bench_dataset, emit, fmt_secs, Args};
use ec_comm::HostTimer;
use ec_compress::quantize::Quantized;
use ec_graph::config::{ComputeConfig, FpMode, TrainingConfig};
use ec_graph::trainer::train;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use ec_tensor::{init, parallel, CsrMatrix};
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 3).max(2);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let threads: usize = args.get("threads", 0);
    let out_path = args.get_str("out", "BENCH_hotpath.json");
    // On a single-core host still run the parallel arm with 2 threads: the
    // point of the second column is exercising the fan-out machinery and
    // recording its overhead, not just the speedup.
    let machine = parallel::effective_threads(threads).max(2);
    println!("== hot-path benchmark (1 vs {machine} threads, {epochs} epochs/point) ==");

    // (a) Full-batch GCN epoch, engine-level 1 vs N threads.
    let mut epoch_rows = Vec::new();
    for spec in [DatasetSpec::cora(), DatasetSpec::reddit()] {
        let data = Arc::new(bench_dataset(&spec, scale, 7));
        let mut seq_s = 0.0f64;
        for (label, compute) in [
            ("seq", ComputeConfig::sequential()),
            ("par", ComputeConfig { worker_threads: machine, kernel_threads: 0 }),
        ] {
            let config = TrainingConfig {
                dims: ec_bench::paper_dims(&data, ec_bench::bench_hidden(&spec), 2),
                num_workers: workers,
                fp_mode: FpMode::ReqEc { bits: 2, t_tr: 10, adaptive: true },
                max_epochs: epochs,
                seed: 3,
                compute,
                ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
            };
            let r = train(Arc::clone(&data), &HashPartitioner::default(), config, "hotpath");
            // Skip the first epoch (cold caches), average the rest.
            let measured = &r.epochs[1..];
            let compute_s =
                measured.iter().map(|e| e.compute_s).sum::<f64>() / measured.len() as f64;
            if label == "seq" {
                seq_s = compute_s;
            }
            let speedup = if compute_s > 0.0 { seq_s / compute_s } else { 1.0 };
            emit(
                "hotpath_epoch",
                &format!(
                    "  {:<8} {label} ({} threads): compute {}/epoch  speedup {speedup:.2}x",
                    spec.name,
                    if label == "seq" { 1 } else { machine },
                    fmt_secs(compute_s)
                ),
                serde_json::json!({
                    "dataset": spec.name,
                    "threads": if label == "seq" { 1 } else { machine },
                    "workers": workers,
                    "compute_s_per_epoch": compute_s,
                    "speedup_vs_seq": speedup,
                }),
            );
            epoch_rows.push(serde_json::json!({
                "dataset": spec.name,
                "threads": if label == "seq" { 1 } else { machine },
                "workers": workers,
                "compute_s_per_epoch": compute_s,
                "speedup_vs_seq": speedup,
            }));
        }
    }

    // (b) Dense/sparse kernels at 1 vs N threads.
    let mut kernel_rows = Vec::new();
    let a = init::uniform(4096, 256, -0.5, 0.5, 11);
    let b = init::uniform(256, 128, -0.5, 0.5, 12);
    let at_b_l = init::uniform(4096, 192, -0.5, 0.5, 13);
    let a_bt_r = init::uniform(512, 256, -0.5, 0.5, 14);
    let a_bt_b = init::uniform(128, 256, -0.5, 0.5, 17);
    let adj = random_csr(4096, 4096, 16, 15);
    for t in [1usize, machine] {
        for (kernel, f) in [
            ("matmul", Box::new(|| drop(parallel::matmul(&a, &b, t))) as Box<dyn Fn()>),
            ("matmul_at_b", Box::new(|| drop(parallel::matmul_at_b(&a, &at_b_l, t)))),
            ("matmul_a_bt", Box::new(|| drop(parallel::matmul_a_bt(&a_bt_r, &a_bt_b, t)))),
            ("spmm", Box::new(|| drop(parallel::spmm(&adj, &a, t)))),
        ] {
            let secs = time_best(3, &*f);
            emit(
                "hotpath_kernel",
                &format!("  {kernel:<12} {t:>2} thread(s): {}", fmt_secs(secs)),
                serde_json::json!({ "kernel": kernel, "threads": t, "secs": secs }),
            );
            kernel_rows.push(serde_json::json!({ "kernel": kernel, "threads": t, "secs": secs }));
        }
    }

    // (c) Compression codec chain (quantize → pack fused; unpack → dequant
    // streamed). Single-threaded by design — the fan-out happens per
    // worker, each compressing its own messages.
    let mut codec_rows = Vec::new();
    let payload = init::uniform(2048, 512, -1.0, 1.0, 16);
    let elems = payload.len() as f64;
    for bits in [2u8, 4, 8] {
        let c_secs = time_best(3, || drop(Quantized::compress(&payload, bits)));
        let q = Quantized::compress(&payload, bits);
        let d_secs = time_best(3, || drop(q.decompress()));
        emit(
            "hotpath_codec",
            &format!(
                "  quantize+pack b={bits}: {} ({:.0} Melem/s)   unpack+dequant: {} ({:.0} Melem/s)",
                fmt_secs(c_secs),
                elems / c_secs / 1e6,
                fmt_secs(d_secs),
                elems / d_secs / 1e6
            ),
            serde_json::json!({
                "bits": bits,
                "compress_secs": c_secs,
                "decompress_secs": d_secs,
                "melem_per_s_compress": elems / c_secs / 1e6,
                "melem_per_s_decompress": elems / d_secs / 1e6,
            }),
        );
        codec_rows.push(serde_json::json!({
            "bits": bits,
            "compress_secs": c_secs,
            "decompress_secs": d_secs,
            "melem_per_s_compress": elems / c_secs / 1e6,
            "melem_per_s_decompress": elems / d_secs / 1e6,
        }));
    }

    let doc = serde_json::json!({
        "experiment": "hotpath_bench",
        "host_threads": machine,
        "epoch": epoch_rows,
        "kernels": kernel_rows,
        "codecs": codec_rows,
    });
    std::fs::write(&out_path, doc.to_string()).expect("write BENCH_hotpath.json");
    println!("wrote {out_path}");
}

/// Best-of-`reps` wall time of `f` (HostTimer is the sanctioned clock).
fn time_best(reps: usize, f: impl Fn()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t = HostTimer::start();
        f();
        best = best.min(t.elapsed_s());
    }
    best
}

/// Fixed-degree random sparse matrix for the SpMM timing.
fn random_csr(rows: usize, cols: usize, degree: usize, seed: u64) -> CsrMatrix {
    let mut triples = Vec::with_capacity(rows * degree);
    let mut state = seed | 1;
    for r in 0..rows {
        for _ in 0..degree {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = (state >> 33) as usize % cols;
            triples.push((r, c, 1.0 / degree as f32));
        }
    }
    CsrMatrix::from_triples(rows, cols, &triples)
}
