//! **Fig. 6** — forward-pass convergence under different bit widths.
//!
//! For each dataset, trains Non-cp, `Cp-fp-B` and `ReqEC-FP-B`
//! (`B ∈ {1, 2, 4, 8}`) and emits test accuracy per epoch. The paper's
//! qualitative shape to reproduce: low-bit compression alone stalls or
//! degrades convergence (most visibly on high-degree graphs), while
//! ReqEC-FP restores near-Non-cp accuracy at the same bit width.
//!
//! Usage: `fig6_fp_bits [datasets=cora,reddit] [epochs=100] [scale=1.0]
//! [workers=6] [every=5]`

use ec_bench::systems::RunParams;
use ec_bench::{bench_dataset, emit, Args};
use ec_graph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph::trainer::train;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 100);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let every: usize = args.get("every", 5);
    let wanted = args.get_str("datasets", "cora,reddit");

    println!("== Fig. 6: FP convergence vs compression bits ==");
    for spec in DatasetSpec::all() {
        if !wanted.split(',').any(|d| d == spec.name) {
            continue;
        }
        let data = Arc::new(bench_dataset(&spec, scale, 7));
        println!(
            "-- {} replica: |V|={} |E|={} d0={} C={} --",
            spec.name,
            data.num_vertices(),
            data.graph.num_edges(),
            data.feature_dim(),
            data.num_classes
        );
        let p = RunParams { workers, ..RunParams::new(spec.default_layers.min(2), 16, epochs) };
        let mut modes: Vec<(String, FpMode)> = vec![("non-cp".into(), FpMode::Exact)];
        for bits in [1u8, 2, 4, 8] {
            modes.push((format!("cp-fp-{bits}"), FpMode::Compressed { bits }));
            modes.push((
                format!("reqec-fp-{bits}"),
                FpMode::ReqEc { bits, t_tr: 10, adaptive: false },
            ));
        }
        for (label, fp_mode) in modes {
            let config = TrainingConfig {
                dims: ec_bench::paper_dims(&data, p.hidden, p.layers),
                num_workers: p.workers,
                fp_mode,
                bp_mode: BpMode::Exact,
                max_epochs: epochs,
                seed: 3,
                eval_every: every,
                ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
            };
            let r = train(Arc::clone(&data), &HashPartitioner::default(), config, &label);
            for e in r.epochs.iter().step_by(every) {
                emit(
                    "fig6",
                    &format!(
                        "  {:<12} {:<12} epoch {:>4}  loss {:>8.4}  test-acc {:.4}",
                        spec.name, label, e.epoch, e.loss, e.test_acc
                    ),
                    serde_json::json!({
                        "dataset": spec.name, "mode": label, "epoch": e.epoch,
                        "loss": e.loss, "test_acc": e.test_acc,
                        "fp_bytes": e.fp_bytes,
                    }),
                );
            }
            println!(
                "  {:<12} {:<12} best test-acc {:.4}  total FP GB {:.4}",
                spec.name,
                label,
                r.best_test_acc,
                r.epochs.iter().map(|e| e.fp_bytes).sum::<u64>() as f64 / 1e9
            );
        }
    }
}
