//! **Section IV-B design choice** — Selector granularity ablation.
//!
//! The paper: "There are three kinds of granularity for the approximate
//! representations, including element-wise, vertex-wise and matrix-wise
//! schemas. We use vertex-wise approximations, which yields the best
//! balance between the message size and the accuracy empirically." No data
//! is shown; this experiment regenerates the comparison: accuracy and
//! forward traffic for each granularity at a fixed bit width.
//!
//! Usage: `selector_granularity [dataset=reddit] [epochs=60] [bits=1]
//! [scale=1.0] [workers=6]`

use ec_bench::{bench_dataset, emit, Args};
use ec_graph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph::fp::Granularity;
use ec_graph::trainer::train;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 60);
    let bits: u8 = args.get("bits", 1);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let ds = args.get_str("dataset", "reddit");

    let spec = DatasetSpec::all().into_iter().find(|s| s.name == ds).expect("unknown dataset");
    let data = Arc::new(bench_dataset(&spec, scale, 7));
    println!(
        "== Selector granularity ablation ({} replica, B={bits}, |V|={}) ==",
        spec.name,
        data.num_vertices()
    );
    for (label, granularity) in [
        ("element", Granularity::Element),
        ("vertex", Granularity::Vertex),
        ("matrix", Granularity::Matrix),
    ] {
        let config = TrainingConfig {
            dims: ec_bench::paper_dims(&data, 16, 2),
            num_workers: workers,
            fp_mode: FpMode::ReqEc { bits, t_tr: 10, adaptive: false },
            reqec_granularity: granularity,
            bp_mode: BpMode::Exact,
            max_epochs: epochs,
            seed: 3,
            ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
        };
        let r = train(Arc::clone(&data), &HashPartitioner::default(), config, label);
        let fp_mb = r.epochs.iter().map(|e| e.fp_bytes).sum::<u64>() as f64 / 1e6;
        emit(
            "selector_granularity",
            &format!(
                "  {:<8} test-acc {:.4}  FP traffic {:>9.2} MB  {:.4} s/epoch",
                label,
                r.best_test_acc,
                fp_mb,
                r.avg_epoch_time()
            ),
            serde_json::json!({
                "granularity": label, "bits": bits, "test_acc": r.best_test_acc,
                "fp_mb": fp_mb, "epoch_s": r.avg_epoch_time(),
            }),
        );
    }
    println!("\nThe paper's trade-off: element-wise reconstructs best but pays a");
    println!("2-bit-per-coordinate selector; matrix-wise is nearly free but too");
    println!("coarse; vertex-wise balances both — which is why EC-Graph uses it.");
}
