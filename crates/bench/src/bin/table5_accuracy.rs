//! **Table V** — final test accuracy per system per dataset.
//!
//! The paper's shape: every exact full-batch system lands in the same
//! band (EC-Graph matches DGL/PyG within noise despite lossy messages);
//! sampling-based systems trail slightly; the dataset-specific absolute
//! bands (Cora ≈ 0.87, Pubmed ≈ 0.865, Reddit ≈ 0.93, Products ≈ 0.86,
//! Papers ≈ 0.45) are planted into the replicas via label noise.
//!
//! Usage: `table5_accuracy [datasets=…] [epochs=150] [patience=25]
//! [scale=1.0] [workers=6]`

use ec_bench::systems::{run, RunParams, System};
use ec_bench::{bench_dataset, emit, Args};
use ec_graph_data::DatasetSpec;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 150);
    let patience: usize = args.get("patience", 25);
    let scale: f64 = args.get("scale", 1.0);
    let workers: usize = args.get("workers", 6);
    let wanted = args.get_str("datasets", "cora,pubmed,reddit,products,papers");

    println!("== Table V: test accuracy at convergence ==");
    for spec in DatasetSpec::all() {
        if !wanted.split(',').any(|d| d == spec.name) {
            continue;
        }
        let data = Arc::new(bench_dataset(&spec, scale, 7));
        println!(
            "-- {} replica: |V|={} |E|={} (2-layer, hidden {}) --",
            spec.name,
            data.num_vertices(),
            data.graph.num_edges(),
            ec_bench::bench_hidden(&spec)
        );
        for system in System::all() {
            let p = RunParams {
                workers,
                patience: Some(patience),
                ..RunParams::new(2, ec_bench::bench_hidden(&spec), epochs)
            };
            match run(system, &data, &p) {
                Ok(r) => {
                    emit(
                        "table5",
                        &format!(
                            "  {:<10} {:<18} test-acc {:.4} (val {:.4}, best epoch {})",
                            spec.name,
                            system.label(),
                            r.best_test_acc,
                            r.best_val_acc,
                            r.best_epoch
                        ),
                        serde_json::json!({
                            "dataset": spec.name, "system": system.label(),
                            "test_acc": r.best_test_acc, "val_acc": r.best_val_acc,
                            "best_epoch": r.best_epoch,
                        }),
                    );
                }
                Err(e) => {
                    emit(
                        "table5",
                        &format!("  {:<10} {:<18} -  ({e})", spec.name, system.label()),
                        serde_json::json!({
                            "dataset": spec.name, "system": system.label(),
                            "test_acc": serde_json::Value::Null, "error": e,
                        }),
                    );
                }
            }
        }
    }
}
