//! **Fig. 11** — scalability with the number of machines, under Hash and
//! METIS partitioning, for EC-Graph and EC-Graph-S.
//!
//! The paper's shape: epoch time falls as machines are added; METIS sits
//! below Hash because its edge-cut (and therefore `ḡ_rmt`) is lower.
//!
//! Usage: `fig11_scalability [dataset=products] [epochs=5] [scale=1.0]
//! [workers=2,4,6,8,10,13]`

use ec_bench::{bench_dataset, emit, Args};
use ec_comm::HostTimer;
use ec_graph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph::sampling::sample_layer_graphs;
use ec_graph::trainer;
use ec_graph_data::DatasetSpec;
use ec_partition::hash::HashPartitioner;
use ec_partition::metis::MetisLikePartitioner;
use ec_partition::{metrics, Partitioner};
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let epochs: usize = args.get("epochs", 5);
    let scale: f64 = args.get("scale", 1.0);
    let worker_list = args.get_str("workers", "2,4,6,8,10,13");
    let ds = args.get_str("dataset", "products");

    let spec = DatasetSpec::all().into_iter().find(|s| s.name == ds).expect("unknown dataset");
    let data = Arc::new(bench_dataset(&spec, scale, 7));
    println!(
        "== Fig. 11: scalability on {} replica (|V|={} |E|={}) ==",
        spec.name,
        data.num_vertices(),
        data.graph.num_edges()
    );

    let partitioners: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("hash", Box::new(HashPartitioner::default())),
        ("metis", Box::new(MetisLikePartitioner::default())),
    ];
    for workers in worker_list.split(',').filter_map(|w| w.parse::<usize>().ok()) {
        for (pname, partitioner) in &partitioners {
            for sampled in [false, true] {
                let system = if sampled { "ec-graph-s" } else { "ec-graph" };
                let config = TrainingConfig {
                    dims: ec_bench::paper_dims(&data, 16, 2),
                    num_workers: workers,
                    fp_mode: FpMode::ReqEc { bits: 2, t_tr: 10, adaptive: true },
                    bp_mode: BpMode::ResEc { bits: 4 },
                    max_epochs: epochs,
                    seed: 3,
                    ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
                };
                let part_start = HostTimer::start();
                let partition = partitioner.partition(&data.graph, workers);
                let partition_s = part_start.elapsed_s();
                let g_rmt = metrics::avg_remote_degree(&data.graph, &partition);
                let adjs = if sampled {
                    let fanouts =
                        ec_bench::systems::paper_fanouts(&data.name, 2).unwrap_or(vec![10, 10]);
                    sample_layer_graphs(&data.graph, &fanouts, 5).0
                } else {
                    let adj =
                        Arc::new(ec_graph_data::normalize::gcn_normalized_adjacency(&data.graph));
                    vec![adj; 2]
                };
                let r = trainer::train_prepartitioned(
                    Arc::clone(&data),
                    adjs,
                    partition,
                    config,
                    system,
                    partition_s,
                );
                emit(
                    "fig11",
                    &format!(
                        "  {:<10} workers={:>2} {:<6} {:>9.4} s/epoch  (ḡ_rmt {:>7.2}, partition {:.3}s)",
                        system, workers, pname, r.avg_epoch_time(), g_rmt, partition_s
                    ),
                    serde_json::json!({
                        "system": system, "workers": workers, "partitioner": pname,
                        "epoch_s": r.avg_epoch_time(), "avg_remote_degree": g_rmt,
                        "partition_s": partition_s,
                    }),
                );
            }
        }
    }
}
