//! Criterion micro-bench: one distributed training epoch under each
//! compression mode — the end-to-end CPU cost (compression overhead
//! included) of the engine's inner loop.

use criterion::{criterion_group, criterion_main, Criterion};
use ec_graph::config::{BpMode, FpMode, TrainingConfig};
use ec_graph::engine::DistributedEngine;
use ec_graph_data::{normalize, DatasetSpec};
use ec_partition::hash::HashPartitioner;
use ec_partition::Partitioner;
use std::sync::Arc;

fn make_engine(fp: FpMode, bp: BpMode) -> DistributedEngine {
    let data = Arc::new(DatasetSpec::products().instantiate_with(1024, 64, 3));
    let config = TrainingConfig {
        dims: vec![64, 16, data.num_classes],
        num_workers: 4,
        fp_mode: fp,
        bp_mode: bp,
        seed: 1,
        ..TrainingConfig::defaults(64, data.num_classes)
    };
    let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
    let partition = HashPartitioner::default().partition(&data.graph, 4);
    DistributedEngine::new(data, vec![adj; 2], partition, config)
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/epoch");
    group.sample_size(10);
    let modes: Vec<(&str, FpMode, BpMode)> = vec![
        ("exact", FpMode::Exact, BpMode::Exact),
        ("cp-2", FpMode::Compressed { bits: 2 }, BpMode::Compressed { bits: 2 }),
        (
            "reqec-2+resec-4",
            FpMode::ReqEc { bits: 2, t_tr: 10, adaptive: false },
            BpMode::ResEc { bits: 4 },
        ),
        ("distgnn-r5", FpMode::Delayed { r: 5 }, BpMode::Exact),
    ];
    for (label, fp, bp) in modes {
        group.bench_function(label, |b| {
            let mut engine = make_engine(fp, bp);
            b.iter(|| engine.run_epoch());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
