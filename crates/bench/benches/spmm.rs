//! Criterion micro-bench: the aggregation kernels — fused CSR SpMM
//! (DGL-style) versus transposed SpMM versus dense matmul, the compute
//! core of every GNN layer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ec_graph_data::{generators, normalize};
use ec_tensor::{init, ops};

fn bench_spmm(c: &mut Criterion) {
    let g = generators::erdos_renyi(4096, 65_536, 3);
    let adj = normalize::gcn_normalized_adjacency(&g);
    let h = init::uniform(4096, 32, 0.0, 1.0, 5);
    let flops = (adj.nnz() * 32 * 2) as u64;

    let mut group = c.benchmark_group("spmm");
    group.throughput(Throughput::Elements(flops));
    group.bench_function("csr_spmm", |b| {
        b.iter(|| std::hint::black_box(&adj).spmm(std::hint::black_box(&h)))
    });
    group.bench_function("csr_spmm_t", |b| {
        b.iter(|| std::hint::black_box(&adj).spmm_t(std::hint::black_box(&h)))
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(format!("csr_spmm_par{threads}"), |b| {
            b.iter(|| {
                ec_tensor::parallel::spmm(
                    std::hint::black_box(&adj),
                    std::hint::black_box(&h),
                    threads,
                )
            })
        });
    }
    group.finish();

    let a = init::uniform(512, 512, -1.0, 1.0, 1);
    let bm = init::uniform(512, 512, -1.0, 1.0, 2);
    let mut group = c.benchmark_group("matmul");
    group.throughput(Throughput::Elements((512u64).pow(3) * 2));
    group.bench_function("dense_512", |b| {
        b.iter(|| ops::matmul(std::hint::black_box(&a), std::hint::black_box(&bm)))
    });
    group.bench_function("dense_at_b_512", |b| {
        b.iter(|| ops::matmul_at_b(std::hint::black_box(&a), std::hint::black_box(&bm)))
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(format!("dense_512_par{threads}"), |b| {
            b.iter(|| {
                ec_tensor::parallel::matmul(
                    std::hint::black_box(&a),
                    std::hint::black_box(&bm),
                    threads,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
