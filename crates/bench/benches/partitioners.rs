//! Criterion micro-bench: partitioner cost (Fig. 11's footnote — the
//! paper keeps Hash as the default because METIS-quality partitioning
//! "takes much time to partition on big graphs").

use criterion::{criterion_group, criterion_main, Criterion};
use ec_graph_data::generators;
use ec_partition::hash::HashPartitioner;
use ec_partition::ldg::LdgPartitioner;
use ec_partition::metis::MetisLikePartitioner;
use ec_partition::range::RangePartitioner;
use ec_partition::Partitioner;

fn bench_partitioners(c: &mut Criterion) {
    let g = generators::barabasi_albert(8192, 8, 3);
    let mut group = c.benchmark_group("partition/8k-vertices");
    group.sample_size(10);
    group.bench_function("hash", |b| {
        b.iter(|| HashPartitioner::default().partition(std::hint::black_box(&g), 8))
    });
    group.bench_function("range", |b| {
        b.iter(|| RangePartitioner.partition(std::hint::black_box(&g), 8))
    });
    group.bench_function("ldg", |b| {
        b.iter(|| LdgPartitioner::default().partition(std::hint::black_box(&g), 8))
    });
    group.bench_function("metis-like", |b| {
        b.iter(|| MetisLikePartitioner::default().partition(std::hint::black_box(&g), 8))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
