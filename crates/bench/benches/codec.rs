//! Criterion micro-bench: wire codec throughput (the protobuf stand-in) —
//! serialization must not eat the bandwidth the compression saves.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ec_comm::codec;
use ec_tensor::init;

fn bench_codec(c: &mut Criterion) {
    let m = init::uniform(512, 64, 0.0, 1.0, 9);
    let bytes = codec::matrix_wire_size(&m) as u64;
    let mut encoded = Vec::new();
    codec::put_matrix(&mut encoded, &m);

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("put_matrix", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(bytes as usize);
            codec::put_matrix(&mut buf, std::hint::black_box(&m));
            buf
        })
    });
    group.bench_function("get_matrix", |b| {
        b.iter(|| {
            let mut slice = std::hint::black_box(encoded.as_slice());
            codec::get_matrix(&mut slice).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
