//! Criterion micro-bench: quantization throughput versus bit width —
//! the per-message CPU cost EC-Graph pays to save bandwidth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ec_compress::Quantized;
use ec_tensor::init;

fn bench_quantize(c: &mut Criterion) {
    let m = init::uniform(256, 128, 0.0, 1.0, 7);
    let bytes = (m.len() * 4) as u64;
    let mut group = c.benchmark_group("quantize/compress");
    group.throughput(Throughput::Bytes(bytes));
    for bits in [1u8, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| Quantized::compress(std::hint::black_box(&m), bits));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("quantize/decompress");
    group.throughput(Throughput::Bytes(bytes));
    for bits in [1u8, 2, 4, 8, 16] {
        let q = Quantized::compress(&m, bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &q, |b, q| {
            b.iter(|| std::hint::black_box(q).decompress());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quantize);
criterion_main!(benches);
