//! Contiguous range partitioning.
//!
//! Splits `0..n` into `num_parts` contiguous, maximally balanced chunks.
//! This is both a graph partitioner (useful when vertex ids carry locality)
//! and the strategy EC-Graph's Parameter Manager uses to spread each
//! layer's weights over the servers ("a built-in range-based partition
//! method, which divides the weights W and biases B of each layer evenly").

use crate::{Partition, Partitioner};
use ec_graph_data::Graph;

/// Range partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct RangePartitioner;

impl Partitioner for RangePartitioner {
    fn partition(&self, g: &Graph, num_parts: usize) -> Partition {
        Partition::new(range_assignment(g.num_vertices(), num_parts), num_parts)
    }

    fn name(&self) -> &'static str {
        "range"
    }
}

/// Assigns `0..n` to `parts` contiguous chunks whose sizes differ by at most
/// one (the first `n % parts` chunks get the extra element).
pub fn range_assignment(n: usize, parts: usize) -> Vec<u32> {
    assert!(parts > 0, "need at least one part");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(n);
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.extend(std::iter::repeat_n(p as u32, size));
    }
    out
}

/// The half-open index range `[start, end)` of part `p` under
/// [`range_assignment`] — used by the parameter servers to locate their
/// slice of each weight matrix without materializing the assignment.
pub fn range_of_part(n: usize, parts: usize, p: usize) -> (usize, usize) {
    assert!(p < parts, "part {p} out of range");
    let base = n / parts;
    let extra = n % parts;
    let start = p * base + p.min(extra);
    let size = base + usize::from(p < extra);
    (start, start + size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_contiguous_and_balanced() {
        let a = range_assignment(10, 3);
        assert_eq!(a, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn ranges_tile_the_index_space() {
        for (n, parts) in [(10, 3), (7, 7), (5, 8), (100, 6), (0, 2)] {
            let mut covered = 0;
            for p in 0..parts {
                let (s, e) = range_of_part(n, parts, p);
                assert_eq!(s, covered, "n={n} parts={parts} p={p}");
                covered = e;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn ranges_match_assignment() {
        let n = 23;
        let parts = 5;
        let a = range_assignment(n, parts);
        for p in 0..parts {
            let (s, e) = range_of_part(n, parts, p);
            for &part in &a[s..e] {
                assert_eq!(part as usize, p);
            }
        }
    }

    #[test]
    fn partitioner_on_graph() {
        let g = Graph::from_edges(9, &[(0, 8)]);
        let p = RangePartitioner.partition(&g, 3);
        assert_eq!(p.part_sizes(), vec![3, 3, 3]);
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(8), 2);
    }

    #[test]
    fn more_parts_than_vertices_leaves_empty_parts() {
        let a = range_assignment(2, 5);
        assert_eq!(a, vec![0, 1]);
    }
}
