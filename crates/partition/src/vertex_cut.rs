//! Greedy vertex-cut (edge) partitioning — the PowerGraph family.
//!
//! The paper's related work contrasts edge-cut systems (Pregel, EC-Graph)
//! with PowerGraph's *vertex-cut* model, where **edges** are assigned to
//! machines and high-degree vertices are replicated across them. This
//! module implements the classic PowerGraph greedy heuristic so the two
//! families can be compared on the same graphs:
//!
//! for each edge `(u, v)` in stream order, prefer a part that already
//! hosts both endpoints, then one hosting either endpoint (the lighter
//! one on ties), then the globally lightest part.
//!
//! The quality metric is the **replication factor** — the average number
//! of machine copies per vertex — which plays the role edge-cut plays for
//! vertex partitioning.

use ec_graph_data::Graph;

/// An assignment of every edge to a part, with the induced vertex replica
/// sets.
#[derive(Clone, Debug)]
pub struct EdgePartition {
    /// Part of each edge, in the order produced by [`Graph::edges`].
    assignment: Vec<u32>,
    /// For each vertex, the sorted list of parts holding a replica.
    replicas: Vec<Vec<u32>>,
    num_parts: usize,
    num_edges: usize,
}

impl EdgePartition {
    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of partitioned edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Edge count per part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Parts holding a replica of vertex `v`.
    pub fn replicas_of(&self, v: usize) -> &[u32] {
        &self.replicas[v]
    }

    /// Average number of replicas per non-isolated vertex (≥ 1; 1 would
    /// mean no vertex is ever cut).
    pub fn replication_factor(&self) -> f64 {
        let (sum, cnt) = self
            .replicas
            .iter()
            .filter(|r| !r.is_empty())
            .fold((0usize, 0usize), |(s, c), r| (s + r.len(), c + 1));
        if cnt == 0 {
            1.0
        } else {
            sum as f64 / cnt as f64
        }
    }

    /// Edge-count imbalance: max part size / ideal size.
    pub fn balance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = self.num_edges as f64 / self.num_parts as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

/// PowerGraph's greedy vertex-cut heuristic.
pub fn greedy_vertex_cut(g: &Graph, num_parts: usize) -> EdgePartition {
    assert!(num_parts > 0, "need at least one part");
    let n = g.num_vertices();
    let mut replicas: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut sizes = vec![0usize; num_parts];
    let mut assignment = Vec::with_capacity(g.num_edges());

    let place = |u: usize, v: usize, replicas: &mut Vec<Vec<u32>>, sizes: &mut Vec<usize>| -> u32 {
        let ru = &replicas[u];
        let rv = &replicas[v];
        let common: Vec<u32> = ru.iter().filter(|p| rv.contains(p)).copied().collect();
        let pick = if !common.is_empty() {
            // Case 1: a part hosts both endpoints.
            *common.iter().min_by_key(|&&p| sizes[p as usize]).unwrap()
        } else if !ru.is_empty() || !rv.is_empty() {
            // Case 2: a part hosts one endpoint — prefer the endpoint with
            // more remaining edges (we approximate by current replica
            // count), break ties toward the lighter part.
            ru.iter().chain(rv.iter()).copied().min_by_key(|&p| sizes[p as usize]).unwrap()
        } else {
            // Case 3: fresh edge — lightest part overall.
            (0..num_parts as u32).min_by_key(|&p| sizes[p as usize]).unwrap()
        };
        sizes[pick as usize] += 1;
        for w in [u, v] {
            if !replicas[w].contains(&pick) {
                let pos = replicas[w].partition_point(|&x| x < pick);
                replicas[w].insert(pos, pick);
            }
        }
        pick
    };

    for (u, v) in g.edges() {
        assignment.push(place(u as usize, v as usize, &mut replicas, &mut sizes));
    }
    EdgePartition { assignment, replicas, num_parts, num_edges: g.num_edges() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph_data::generators;

    #[test]
    fn every_edge_assigned_and_balanced() {
        let g = generators::erdos_renyi(200, 800, 1);
        let ep = greedy_vertex_cut(&g, 4);
        assert_eq!(ep.num_edges(), 800);
        assert_eq!(ep.part_sizes().iter().sum::<usize>(), 800);
        assert!(ep.balance() < 1.2, "imbalance {}", ep.balance());
    }

    #[test]
    fn replicas_cover_edge_endpoints() {
        let g = generators::erdos_renyi(50, 120, 2);
        let ep = greedy_vertex_cut(&g, 3);
        for (idx, (u, v)) in g.edges().enumerate() {
            let p = ep.assignment[idx];
            assert!(ep.replicas_of(u as usize).contains(&p), "edge {idx} endpoint {u}");
            assert!(ep.replicas_of(v as usize).contains(&p), "edge {idx} endpoint {v}");
        }
    }

    #[test]
    fn replication_factor_bounded_by_parts() {
        let g = generators::barabasi_albert(300, 4, 3);
        let ep = greedy_vertex_cut(&g, 4);
        let rf = ep.replication_factor();
        assert!((1.0..=4.0).contains(&rf), "replication {rf}");
    }

    #[test]
    fn single_part_never_replicates() {
        let g = generators::erdos_renyi(40, 100, 4);
        let ep = greedy_vertex_cut(&g, 1);
        assert_eq!(ep.replication_factor(), 1.0);
    }

    #[test]
    fn greedy_beats_random_on_replication() {
        // Compare against hashing each edge to a random part.
        let g = generators::barabasi_albert(400, 5, 5);
        let greedy = greedy_vertex_cut(&g, 8).replication_factor();
        // Random assignment replica count, computed directly.
        let n = g.num_vertices();
        let mut replicas: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); n];
        for (i, (u, v)) in g.edges().enumerate() {
            let p = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % 8) as u32;
            replicas[u as usize].insert(p);
            replicas[v as usize].insert(p);
        }
        let random: f64 = {
            let (s, c) = replicas
                .iter()
                .filter(|r| !r.is_empty())
                .fold((0usize, 0usize), |(s, c), r| (s + r.len(), c + 1));
            s as f64 / c as f64
        };
        assert!(greedy < random * 0.8, "greedy {greedy} not well below random {random}");
    }

    #[test]
    fn isolated_vertices_have_no_replicas() {
        let g = ec_graph_data::Graph::from_edges(5, &[(0, 1)]);
        let ep = greedy_vertex_cut(&g, 2);
        assert!(ep.replicas_of(4).is_empty());
        assert_eq!(ep.replication_factor(), 1.0); // both endpoints 1 part
    }
}
