//! Multilevel graph partitioning — the reproduction's stand-in for METIS.
//!
//! Fig. 11 of the paper compares Hash against METIS partitioning: METIS
//! yields lower running times "because of its lower communication costs".
//! This module implements the classic three-phase multilevel scheme METIS
//! pioneered:
//!
//! 1. **Coarsening** — repeated heavy-edge matching collapses matched vertex
//!    pairs, preserving cut structure while shrinking the graph;
//! 2. **Initial partitioning** — greedy region growing over the coarsest
//!    graph, balanced by accumulated vertex weight;
//! 3. **Uncoarsening + refinement** — the assignment is projected back and a
//!    boundary-local greedy pass (a light Kernighan–Lin/Fiduccia–Mattheyses
//!    variant) moves vertices whose gain is positive, under a balance cap.
//!
//! The result is not METIS-quality on every input, but it reliably beats
//! Hash by a large factor on graphs with community structure, which is the
//! relationship Fig. 11 measures.

#![allow(clippy::needless_range_loop)] // vertex/worker ids are semantic, not positions

use crate::{Partition, Partitioner};
use ec_graph_data::Graph;

/// Multilevel partitioner configuration.
#[derive(Clone, Copy, Debug)]
pub struct MetisLikePartitioner {
    /// Coarsening stops once the graph has at most `coarsen_target ×
    /// num_parts` vertices.
    pub coarsen_target: usize,
    /// Maximum allowed part weight as a multiple of the average (1.05 ⇒ 5 %
    /// imbalance, matching METIS' default `ufactor`).
    pub balance_factor: f64,
    /// Refinement sweeps per level.
    pub refine_passes: usize,
    /// Seed for tie-breaking orders.
    pub seed: u64,
}

impl Default for MetisLikePartitioner {
    fn default() -> Self {
        Self { coarsen_target: 30, balance_factor: 1.05, refine_passes: 4, seed: 1 }
    }
}

/// A weighted graph used internally across coarsening levels.
struct Level {
    /// Adjacency with accumulated edge weights.
    adj: Vec<Vec<(u32, f64)>>,
    /// Accumulated vertex weights (number of original vertices collapsed).
    vweight: Vec<f64>,
    /// Mapping from this level's vertices to the coarser level's vertices
    /// (empty for the coarsest level).
    coarse_map: Vec<u32>,
}

impl Partitioner for MetisLikePartitioner {
    fn partition(&self, g: &Graph, num_parts: usize) -> Partition {
        assert!(num_parts > 0, "need at least one part");
        let n = g.num_vertices();
        if num_parts == 1 || n == 0 {
            return Partition::new(vec![0; n], num_parts);
        }

        // Level 0 = the input graph with unit weights.
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for v in 0..n {
            for &u in g.neighbors(v) {
                adj[v].push((u, 1.0));
            }
        }
        let mut levels = vec![Level { adj, vweight: vec![1.0; n], coarse_map: Vec::new() }];

        // Phase 1: coarsen.
        let target = self.coarsen_target * num_parts;
        loop {
            let current = levels.last().unwrap();
            if current.vweight.len() <= target {
                break;
            }
            let (coarse, map) = coarsen_once(current, self.seed ^ levels.len() as u64);
            let shrunk = coarse.vweight.len() < current.vweight.len() * 95 / 100;
            levels.last_mut().unwrap().coarse_map = map;
            levels.push(coarse);
            if !shrunk {
                break; // matching stalled (e.g. star graphs)
            }
        }

        // Phase 2: initial partition on the coarsest level.
        let coarsest = levels.last().unwrap();
        let mut assignment = initial_partition(coarsest, num_parts, self.seed);

        // Phase 3: project back and refine at every level.
        for li in (0..levels.len()).rev() {
            let level = &levels[li];
            if li + 1 < levels.len() {
                // Project the coarser assignment through this level's map.
                let map = &level.coarse_map;
                assignment =
                    (0..level.vweight.len()).map(|v| assignment[map[v] as usize]).collect();
            }
            refine(level, &mut assignment, num_parts, self.balance_factor, self.refine_passes);
        }

        Partition::new(assignment, num_parts)
    }

    fn name(&self) -> &'static str {
        "metis-like"
    }
}

/// One round of heavy-edge matching: each unmatched vertex (visited in a
/// seeded order) matches its heaviest unmatched neighbour; matched pairs
/// collapse into one coarse vertex.
fn coarsen_once(level: &Level, seed: u64) -> (Level, Vec<u32>) {
    let n = level.vweight.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&v| (v as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15));

    let mut mate = vec![usize::MAX; n];
    for &v in &order {
        if mate[v] != usize::MAX {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for &(u, w) in &level.adj[v] {
            let u = u as usize;
            if u != v && mate[u] == usize::MAX && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                mate[v] = u;
                mate[u] = v;
            }
            None => mate[v] = v, // matched with itself
        }
    }

    // Assign coarse ids.
    let mut coarse_map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if coarse_map[v] != u32::MAX {
            continue;
        }
        coarse_map[v] = next;
        let m = mate[v];
        if m != v && m != usize::MAX {
            coarse_map[m] = next;
        }
        next += 1;
    }
    let cn = next as usize;

    // Build the coarse weighted graph.
    let mut vweight = vec![0.0f64; cn];
    for v in 0..n {
        vweight[coarse_map[v] as usize] += level.vweight[v];
    }
    // BTreeMap: neighbour lists come out already sorted by coarse id, so
    // the coarse graph is identical however the fine vertices were visited.
    let mut adj_maps: Vec<std::collections::BTreeMap<u32, f64>> =
        vec![std::collections::BTreeMap::new(); cn];
    for v in 0..n {
        let cv = coarse_map[v];
        for &(u, w) in &level.adj[v] {
            let cu = coarse_map[u as usize];
            if cu != cv {
                *adj_maps[cv as usize].entry(cu).or_insert(0.0) += w;
            }
        }
    }
    let adj = adj_maps.into_iter().map(|m| m.into_iter().collect()).collect();

    (Level { adj, vweight, coarse_map: Vec::new() }, coarse_map)
}

/// Greedy region growing: grow each part from a seed vertex, always
/// absorbing the frontier vertex with the strongest connection to the part,
/// until the part reaches its weight share.
fn initial_partition(level: &Level, num_parts: usize, seed: u64) -> Vec<u32> {
    let n = level.vweight.len();
    let total: f64 = level.vweight.iter().sum();
    let share = total / num_parts as f64;
    let mut assignment = vec![u32::MAX; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&v| (v as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut cursor = 0usize;

    for p in 0..num_parts as u32 {
        // Pick an unassigned seed.
        while cursor < n && assignment[order[cursor]] != u32::MAX {
            cursor += 1;
        }
        if cursor >= n {
            break;
        }
        let root = order[cursor];
        let mut weight = 0.0;
        // gain[v] = total edge weight from v into part p (for frontier
        // vertices). BTreeMap keeps iteration (and therefore tie-breaking)
        // deterministic.
        let mut gain: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        gain.insert(root, 0.0);
        while weight < share {
            // Take the best frontier vertex.
            let Some((&v, _)) = gain
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            else {
                break;
            };
            gain.remove(&v);
            if assignment[v] != u32::MAX {
                continue;
            }
            assignment[v] = p;
            weight += level.vweight[v];
            for &(u, w) in &level.adj[v] {
                let u = u as usize;
                if assignment[u] == u32::MAX {
                    *gain.entry(u).or_insert(0.0) += w;
                }
            }
        }
    }
    // Sweep up leftovers (graph may be disconnected): round-robin the
    // lightest parts.
    let mut weights = vec![0.0f64; num_parts];
    for v in 0..n {
        if assignment[v] != u32::MAX {
            weights[assignment[v] as usize] += level.vweight[v];
        }
    }
    for v in 0..n {
        if assignment[v] == u32::MAX {
            let p = (0..num_parts)
                .min_by(|&a, &b| weights[a].partial_cmp(&weights[b]).unwrap())
                .unwrap();
            assignment[v] = p as u32;
            weights[p] += level.vweight[v];
        }
    }
    assignment
}

/// Boundary refinement: repeatedly move vertices to the neighbouring part
/// with the highest positive gain, respecting the balance cap.
fn refine(
    level: &Level,
    assignment: &mut [u32],
    num_parts: usize,
    balance_factor: f64,
    passes: usize,
) {
    let n = level.vweight.len();
    let total: f64 = level.vweight.iter().sum();
    let cap = total / num_parts as f64 * balance_factor;
    let mut weights = vec![0.0f64; num_parts];
    for v in 0..n {
        weights[assignment[v] as usize] += level.vweight[v];
    }
    let mut conn = vec![0.0f64; num_parts];
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let from = assignment[v] as usize;
            // Connectivity of v to each part.
            for c in conn.iter_mut() {
                *c = 0.0;
            }
            for &(u, w) in &level.adj[v] {
                conn[assignment[u as usize] as usize] += w;
            }
            let mut best = from;
            let mut best_gain = 0.0f64;
            for p in 0..num_parts {
                if p == from {
                    continue;
                }
                let gain = conn[p] - conn[from];
                if gain > best_gain && weights[p] + level.vweight[v] <= cap {
                    best = p;
                    best_gain = gain;
                }
            }
            if best != from {
                weights[from] -= level.vweight[v];
                weights[best] += level.vweight[v];
                assignment[v] = best as u32;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashPartitioner;
    use crate::metrics;
    use ec_graph_data::generators;

    #[test]
    fn covers_all_vertices_exactly_once() {
        let g = generators::erdos_renyi(300, 900, 3);
        let p = MetisLikePartitioner::default().partition(&g, 4);
        assert_eq!(p.num_vertices(), 300);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 300);
    }

    #[test]
    fn respects_balance_cap_loosely() {
        let g = generators::erdos_renyi(400, 1600, 5);
        let p = MetisLikePartitioner::default().partition(&g, 4);
        // Initial growing + leftovers can exceed the refine cap slightly;
        // assert a generous bound.
        assert!(metrics::balance(&p) < 1.35, "imbalance {}", metrics::balance(&p));
    }

    #[test]
    fn beats_hash_on_clustered_graphs() {
        let (g, _) = generators::sbm(200, 4, 0.30, 0.01, 7);
        let metis_cut = metrics::edge_cut(&g, &MetisLikePartitioner::default().partition(&g, 4));
        let hash_cut = metrics::edge_cut(&g, &HashPartitioner::default().partition(&g, 4));
        assert!(
            (metis_cut as f64) < 0.5 * hash_cut as f64,
            "metis cut {metis_cut} not well below hash cut {hash_cut}"
        );
    }

    #[test]
    fn perfect_split_of_two_cliques() {
        // Two 10-cliques joined by one edge: the optimal bisection cuts 1.
        let mut edges = Vec::new();
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                edges.push((a, b));
                edges.push((a + 10, b + 10));
            }
        }
        edges.push((0, 10));
        let g = Graph::from_edges(20, &edges);
        let p = MetisLikePartitioner::default().partition(&g, 2);
        assert_eq!(metrics::edge_cut(&g, &p), 1);
    }

    #[test]
    fn single_part_short_circuit() {
        let g = generators::erdos_renyi(50, 100, 1);
        let p = MetisLikePartitioner::default().partition(&g, 1);
        assert!(p.assignment().iter().all(|&x| x == 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generators::erdos_renyi(150, 500, 2);
        let part = MetisLikePartitioner::default();
        assert_eq!(part.partition(&g, 3), part.partition(&g, 3));
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::from_edges(30, &[(0, 1), (2, 3)]); // mostly isolated
        let p = MetisLikePartitioner::default().partition(&g, 3);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 30);
    }
}
