//! Partition quality metrics.
//!
//! These quantities drive EC-Graph's communication model: the per-epoch
//! traffic of the engine is `O(T · L · ḡ_rmt · d̄ / (32/B))` (Table II),
//! where `ḡ_rmt` — the average number of *remote* 1-hop neighbours — is a
//! pure function of the partition computed here.

use crate::Partition;
use ec_graph_data::Graph;

/// Number of undirected edges whose endpoints live on different parts.
pub fn edge_cut(g: &Graph, p: &Partition) -> usize {
    g.edges().filter(|&(u, v)| p.part_of(u as usize) != p.part_of(v as usize)).count()
}

/// Fraction of edges cut (0 when the graph has no edges).
pub fn edge_cut_fraction(g: &Graph, p: &Partition) -> f64 {
    let m = g.num_edges();
    if m == 0 {
        0.0
    } else {
        edge_cut(g, p) as f64 / m as f64
    }
}

/// Load imbalance: `max part size / ideal part size` (≥ 1, lower is better).
pub fn balance(p: &Partition) -> f64 {
    let sizes = p.part_sizes();
    let max = *sizes.iter().max().unwrap_or(&0) as f64;
    let ideal = p.num_vertices() as f64 / p.num_parts() as f64;
    if ideal == 0.0 {
        1.0
    } else {
        max / ideal
    }
}

/// Average number of remote 1-hop neighbours per vertex — the paper's
/// `ḡ_rmt`.
pub fn avg_remote_degree(g: &Graph, p: &Partition) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut remote = 0usize;
    for v in 0..n {
        let pv = p.part_of(v);
        remote += g.neighbors(v).iter().filter(|&&u| p.part_of(u as usize) != pv).count();
    }
    remote as f64 / n as f64
}

/// For each part, the set of *remote* vertices whose embeddings the part
/// must fetch each layer: vertices on other parts adjacent to at least one
/// local vertex. With EC-Graph's first-hop cache, each such vertex is
/// fetched exactly once per layer regardless of how many local vertices
/// need it.
pub fn remote_dependencies(g: &Graph, p: &Partition) -> Vec<Vec<usize>> {
    let mut deps: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); p.num_parts()];
    for v in 0..g.num_vertices() {
        let pv = p.part_of(v);
        for &u in g.neighbors(v) {
            let pu = p.part_of(u as usize);
            if pu != pv {
                deps[pv].insert(u as usize);
            }
        }
    }
    deps.into_iter().map(|s| s.into_iter().collect()).collect()
}

/// Replication factor: average number of parts on which each vertex is
/// either local or cached as a remote dependency (≥ 1; 1 means no edge is
/// cut).
pub fn replication_factor(g: &Graph, p: &Partition) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 1.0;
    }
    let deps = remote_dependencies(g, p);
    let cached: usize = deps.iter().map(Vec::len).sum();
    (n + cached) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_cut_counts_cross_edges() {
        let g = path4();
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(edge_cut(&g, &p), 1);
        assert!((edge_cut_fraction(&g, &p) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn edge_cut_zero_when_single_part() {
        let g = path4();
        let p = Partition::new(vec![0; 4], 1);
        assert_eq!(edge_cut(&g, &p), 0);
    }

    #[test]
    fn balance_of_even_partition_is_one() {
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(balance(&p), 1.0);
        let q = Partition::new(vec![0, 0, 0, 1], 2);
        assert_eq!(balance(&q), 1.5);
    }

    #[test]
    fn avg_remote_degree_of_split_path() {
        let g = path4();
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        // Only vertices 1 and 2 have one remote neighbour each → 2/4.
        assert_eq!(avg_remote_degree(&g, &p), 0.5);
    }

    #[test]
    fn remote_dependencies_are_per_part_and_sorted() {
        let g = path4();
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let deps = remote_dependencies(&g, &p);
        assert_eq!(deps[0], vec![2]);
        assert_eq!(deps[1], vec![1]);
    }

    #[test]
    fn replication_factor_of_uncut_partition_is_one() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(replication_factor(&g, &p), 1.0);
    }

    #[test]
    fn replication_counts_shared_dependency_once() {
        // star: 0 on part 1; 1,2,3 on part 0 all need vertex 0.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let p = Partition::new(vec![1, 0, 0, 0], 2);
        let deps = remote_dependencies(&g, &p);
        assert_eq!(deps[0], vec![0]); // fetched once, not three times
                                      // part 1 needs all of 1,2,3
        assert_eq!(deps[1], vec![1, 2, 3]);
        assert_eq!(replication_factor(&g, &p), 2.0);
    }
}
