//! Linear Deterministic Greedy (LDG) streaming partitioner.
//!
//! The paper notes that "some streaming methods can partition graphs with
//! low space and time costs, which will be left in future work" — this is
//! that future work. LDG (Stanton & Kliot, KDD 2012) streams vertices in a
//! single pass, placing each on the part that maximizes
//! `|N(v) ∩ part| · (1 - size(part) / capacity)`.

use crate::{Partition, Partitioner};
use ec_graph_data::Graph;

/// Streaming LDG partitioner.
#[derive(Clone, Copy, Debug)]
pub struct LdgPartitioner {
    /// Capacity slack: each part may hold `slack × n / parts` vertices.
    pub slack: f64,
}

impl Default for LdgPartitioner {
    fn default() -> Self {
        Self { slack: 1.1 }
    }
}

impl Partitioner for LdgPartitioner {
    fn partition(&self, g: &Graph, num_parts: usize) -> Partition {
        assert!(num_parts > 0, "need at least one part");
        let n = g.num_vertices();
        let capacity = ((n as f64 / num_parts as f64) * self.slack).ceil().max(1.0);
        let mut assignment = vec![u32::MAX; n];
        let mut sizes = vec![0usize; num_parts];
        let mut counts = vec![0usize; num_parts];
        for v in 0..n {
            for c in counts.iter_mut() {
                *c = 0;
            }
            for &u in g.neighbors(v) {
                let a = assignment[u as usize];
                if a != u32::MAX {
                    counts[a as usize] += 1;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for p in 0..num_parts {
                if (sizes[p] as f64) >= capacity {
                    continue;
                }
                let score = counts[p] as f64 * (1.0 - sizes[p] as f64 / capacity);
                // Tie-break toward the lighter part for balance.
                let score = score - sizes[p] as f64 * 1e-9;
                if score > best_score {
                    best_score = score;
                    best = p;
                }
            }
            assignment[v] = best as u32;
            sizes[best] += 1;
        }
        Partition::new(assignment, num_parts)
    }

    fn name(&self) -> &'static str {
        "ldg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashPartitioner;
    use crate::metrics;
    use ec_graph_data::generators;

    #[test]
    fn covers_and_balances() {
        let g = generators::erdos_renyi(1000, 3000, 1);
        let p = LdgPartitioner::default().partition(&g, 5);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 1000);
        assert!(metrics::balance(&p) <= 1.11, "imbalance {}", metrics::balance(&p));
    }

    #[test]
    fn respects_capacity() {
        let g = generators::erdos_renyi(100, 200, 2);
        let ldg = LdgPartitioner { slack: 1.0 };
        let p = ldg.partition(&g, 4);
        assert!(p.part_sizes().iter().all(|&s| s <= 25));
    }

    #[test]
    fn beats_hash_on_clustered_graphs() {
        let (g, _) = generators::sbm(200, 4, 0.3, 0.01, 3);
        let ldg_cut = metrics::edge_cut(&g, &LdgPartitioner::default().partition(&g, 4));
        let hash_cut = metrics::edge_cut(&g, &HashPartitioner::default().partition(&g, 4));
        assert!(ldg_cut < hash_cut, "ldg {ldg_cut} not below hash {hash_cut}");
    }

    #[test]
    fn deterministic() {
        let g = generators::erdos_renyi(100, 300, 4);
        let ldg = LdgPartitioner::default();
        assert_eq!(ldg.partition(&g, 3), ldg.partition(&g, 3));
    }
}
