//! # `ec-partition` — graph partitioners for the EC-Graph reproduction
//!
//! EC-Graph's Graph Engine divides the input graph into one part per worker
//! (Section III-A). The paper ships *Hash* and *METIS* partitioning and
//! mentions streaming partitioners as future work; this crate provides all
//! three families plus the quality metrics the evaluation reasons about:
//!
//! * [`hash`] — the paper's default equal-vertex Hash partitioner (used for
//!   Table IV / Fig. 9 because its partition time is "almost negligible"),
//! * [`range`] — contiguous range partitioning (also used by the Parameter
//!   Manager for weights),
//! * [`metis`] — a from-scratch multilevel partitioner (heavy-edge-matching
//!   coarsening, greedy growing, boundary refinement) standing in for METIS
//!   in Fig. 11,
//! * [`ldg`] — the streaming Linear Deterministic Greedy partitioner the
//!   paper cites as future work,
//! * [`metrics`] — edge-cut, balance and the remote-neighbour statistics
//!   (`ḡ_rmt`) that drive EC-Graph's communication cost model,
//! * [`vertex_cut`] — PowerGraph's greedy vertex-cut (edge partitioning),
//!   the contrasting family from the paper's related work.

pub mod hash;
pub mod ldg;
pub mod metis;
pub mod metrics;
pub mod range;
pub mod vertex_cut;

use ec_graph_data::Graph;

/// An assignment of every vertex to one of `num_parts` parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    num_parts: usize,
}

impl Partition {
    /// Wraps an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if any entry is `>= num_parts` or `num_parts == 0`.
    pub fn new(assignment: Vec<u32>, num_parts: usize) -> Self {
        assert!(num_parts > 0, "need at least one part");
        for (v, &p) in assignment.iter().enumerate() {
            assert!((p as usize) < num_parts, "vertex {v} assigned to invalid part {p}");
        }
        Self { assignment, num_parts }
    }

    /// Number of parts.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// The part vertex `v` lives on.
    #[inline]
    pub fn part_of(&self, v: usize) -> usize {
        self.assignment[v] as usize
    }

    /// Raw assignment slice.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Members of part `p`, in ascending vertex order.
    pub fn members(&self, p: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q as usize == p)
            .map(|(v, _)| v)
            .collect()
    }

    /// Vertex count per part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }
}

/// Trait implemented by every partitioner in this crate.
pub trait Partitioner {
    /// Splits `g` into `num_parts` parts.
    fn partition(&self, g: &Graph, num_parts: usize) -> Partition;

    /// Short human-readable name (shows up in benchmark output).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_accessors() {
        let p = Partition::new(vec![0, 1, 0, 1], 2);
        assert_eq!(p.num_parts(), 2);
        assert_eq!(p.num_vertices(), 4);
        assert_eq!(p.part_of(2), 0);
        assert_eq!(p.members(1), vec![1, 3]);
        assert_eq!(p.part_sizes(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "invalid part")]
    fn partition_rejects_out_of_range() {
        let _ = Partition::new(vec![0, 3], 2);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn partition_rejects_zero_parts() {
        let _ = Partition::new(vec![], 0);
    }
}
