//! Equal-vertex Hash partitioning — EC-Graph's default strategy.
//!
//! The paper uses "an equal-vertex partitioning strategy with Hash, where
//! the logical partition time is almost negligible". A multiplicative hash
//! of the vertex id picks the part, so the assignment is structure-oblivious
//! but deterministic and perfectly streamable.

use crate::{Partition, Partitioner};
use ec_graph_data::Graph;

/// Hash partitioner, parameterized by a seed so experiments can draw
/// independent partitions.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner {
    /// Mixed into the hash; 0 reproduces the paper's plain modulo-style
    /// assignment behaviour.
    pub seed: u64,
}

impl HashPartitioner {
    /// Creates a hash partitioner with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Partitioner for HashPartitioner {
    fn partition(&self, g: &Graph, num_parts: usize) -> Partition {
        assert!(num_parts > 0, "need at least one part");
        let assignment = (0..g.num_vertices())
            .map(|v| {
                let h = (v as u64 ^ self.seed).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
                (h % num_parts as u64) as u32
            })
            .collect();
        Partition::new(assignment, num_parts)
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn covers_all_vertices() {
        let g = Graph::from_edges(100, &[(0, 1)]);
        let p = HashPartitioner::default().partition(&g, 4);
        assert_eq!(p.num_vertices(), 100);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 100);
    }

    #[test]
    fn is_roughly_balanced() {
        let g = Graph::from_edges(10_000, &[]);
        let p = HashPartitioner::default().partition(&g, 8);
        let balance = metrics::balance(&p);
        assert!(balance < 1.1, "imbalance {balance}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = Graph::from_edges(50, &[]);
        let a = HashPartitioner::new(1).partition(&g, 3);
        let b = HashPartitioner::new(1).partition(&g, 3);
        let c = HashPartitioner::new(2).partition(&g, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn single_part_assigns_everything_to_zero() {
        let g = Graph::from_edges(10, &[]);
        let p = HashPartitioner::default().partition(&g, 1);
        assert!(p.assignment().iter().all(|&x| x == 0));
    }
}
