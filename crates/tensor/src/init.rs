//! Seeded, reproducible weight initializers.
//!
//! Every run in the reproduction is driven by an explicit seed so that the
//! convergence curves regenerated for Figs. 6–8 are bit-identical across
//! invocations.

use crate::dense::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialization: entries drawn from
/// `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
///
/// This is the initializer Kipf & Welling's GCN reference implementation
/// uses, and the one the paper's PyTorch backend would apply by default to
/// its linear layers.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..limit))
}

/// Kaiming/He uniform initialization for ReLU networks:
/// `U(-√(6/fan_in), +√(6/fan_in))`.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let limit = (6.0 / fan_in as f32).sqrt();
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..limit))
}

/// A matrix with i.i.d. `U(lo, hi)` entries.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Matrix {
    assert!(lo < hi, "empty uniform range");
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// A matrix with i.i.d. standard-normal entries scaled by `std`
/// (Box–Muller over the seeded RNG).
pub fn normal(rows: usize, cols: usize, std: f32, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_reproducible() {
        assert_eq!(xavier_uniform(16, 8, 42), xavier_uniform(16, 8, 42));
    }

    #[test]
    fn xavier_differs_across_seeds() {
        assert_ne!(xavier_uniform(16, 8, 1), xavier_uniform(16, 8, 2));
    }

    #[test]
    fn xavier_respects_limit() {
        let limit = (6.0f32 / 24.0).sqrt();
        let m = xavier_uniform(16, 8, 7);
        assert!(m.as_slice().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn kaiming_respects_limit() {
        let limit = (6.0f32 / 32.0).sqrt();
        let m = kaiming_uniform(32, 4, 7);
        assert!(m.as_slice().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn uniform_respects_range() {
        let m = uniform(10, 10, -0.25, 0.75, 3);
        assert!(m.as_slice().iter().all(|&x| (-0.25..0.75).contains(&x)));
    }

    #[test]
    fn normal_has_roughly_zero_mean() {
        let m = normal(100, 100, 1.0, 11);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
    }
}
