//! Dense matrix kernels: multiplication, elementwise arithmetic, reductions.
//!
//! The multiply kernels are cache-blocked and written around 8-wide inner
//! loops the compiler can vectorize, but their floating-point semantics are
//! pinned to the naive loops in [`reference`]: every output element
//! accumulates its terms in exactly the same order (ascending `k`, with the
//! same `== 0.0` skips), so results are **bit-identical** — blocking only
//! reorders *which element* is advanced next, never the additions within
//! one element. `tests/kernel_equivalence.rs` proptests that equivalence on
//! ragged shapes; the determinism suite depends on it.
//!
//! Blocking layout (see DESIGN.md §4): `matmul` tiles the output columns
//! (`TILE_J`) and the shared dimension (`TILE_K`) so the active `B` tile
//! (`TILE_K × TILE_J` floats = 32 KiB) stays L1-resident while a whole row
//! band of `A` streams past — without tiling, each output row re-reads all
//! of `B` through L2. Tiling engages only when `B` exceeds
//! [`TILE_BUDGET`]: below it `B` is cache-resident anyway and tiling would
//! just re-stream `A` and `C` per tile pass, so the loops collapse to a
//! single full-width pass (GNN weight matrices are small; the tiled path
//! serves wide layers and the benches). Visiting `k`-tiles in ascending
//! order keeps the per-element accumulation order identical to the untiled
//! loop, which is why the switch is shape-only and bit-invisible.
//! `matmul_at_b` keeps the reference's rank-1-update orientation (output
//! stays cache-resident while `A` and `B` stream past once) with the
//! chunked inner loop; `matmul_a_bt` packs `B` into k-major panels of
//! [`LANES`] rows so each output segment is a bundle of independent dot
//! products over contiguous memory.

use crate::dense::Matrix;

/// Output-column tile width of the blocked [`matmul`].
pub const TILE_J: usize = 64;
/// Shared-dimension tile depth of the blocked [`matmul`].
pub const TILE_K: usize = 128;
/// `B` footprint (in floats, 128 KiB) above which [`matmul`] tiles; below
/// it a single full-width pass wins because `B` is cache-resident anyway.
pub const TILE_BUDGET: usize = 32 * 1024;
/// Panel width (output columns per packed panel) of [`matmul_a_bt`].
pub const LANES: usize = 8;

/// In-place `acc[j] += s * src[j]` over two equal-length slices, written as
/// explicit 8-wide chunks so the autovectorizer emits full-width FMAs with
/// no runtime-length checks in the hot loop. Element-wise independent, so
/// bit-identical to the plain `zip` loop.
#[inline]
pub(crate) fn axpy_slice(acc: &mut [f32], src: &[f32], s: f32) {
    let mut acc8 = acc.chunks_exact_mut(8);
    let mut src8 = src.chunks_exact(8);
    for (a, b) in (&mut acc8).zip(&mut src8) {
        for u in 0..8 {
            a[u] += s * b[u];
        }
    }
    for (a, &b) in acc8.into_remainder().iter_mut().zip(src8.remainder()) {
        *a += s * b;
    }
}

/// Computes the row band `[row0, row0 + out.len() / n)` of `C = A · B`
/// into `out` (row-major, `n = b.cols()` columns per row).
///
/// This is the shared body of the sequential [`matmul`] and the
/// band-parallel `parallel::matmul` — one implementation, so sequential
/// and threaded results agree by construction.
pub fn matmul_into(a: &Matrix, b: &Matrix, row0: usize, out: &mut [f32]) {
    let k = a.cols();
    let n = b.cols();
    if n == 0 {
        return;
    }
    debug_assert_eq!(out.len() % n, 0, "band must hold whole rows");
    let rows = out.len() / n;
    // Shape-only switch (identical for every band and thread count): tile
    // only when B outgrows the cache budget.
    let (tile_j, tile_k) =
        if k.saturating_mul(n) <= TILE_BUDGET { (n.max(1), k.max(1)) } else { (TILE_J, TILE_K) };
    for j0 in (0..n).step_by(tile_j) {
        let jw = tile_j.min(n - j0);
        for p0 in (0..k).step_by(tile_k) {
            let pw = tile_k.min(k - p0);
            for i in 0..rows {
                let aseg = &a.row(row0 + i)[p0..p0 + pw];
                let cseg = &mut out[i * n + j0..i * n + j0 + jw];
                for (dp, &av) in aseg.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    axpy_slice(cseg, &b.row(p0 + dp)[j0..j0 + jw], av);
                }
            }
        }
    }
}

/// `C = A · B`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch: {:?} x {:?}", a.shape(), b.shape());
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, 0, c.as_mut_slice());
    c
}

/// Computes the row band `[row0, row0 + out.len() / n)` of `C = Aᵀ · B`
/// into `out` (band rows index the *columns* of `A`).
///
/// Keeps the reference's rank-1-update orientation — `A` and `B` stream
/// past exactly once while the output band stays cache-resident (it is
/// `a.cols() × b.cols()`, a weight-gradient shape, small by construction) —
/// but runs the chunked [`axpy_slice`] inner loop on the band's slice of
/// each `A` row. Per output element `(i, j)` the accumulation is still
/// `Σ_r a[r][i]·b[r][j]` in ascending `r` with the same `== 0.0` skip, so
/// bits match [`reference::matmul_at_b`] exactly.
pub fn matmul_at_b_into(a: &Matrix, b: &Matrix, row0: usize, out: &mut [f32]) {
    let n = b.cols();
    if n == 0 {
        return;
    }
    debug_assert_eq!(out.len() % n, 0, "band must hold whole rows");
    let rows = out.len() / n;
    for r in 0..a.rows() {
        let aseg = &a.row(r)[row0..row0 + rows];
        let brow = b.row(r);
        for (di, &av) in aseg.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            axpy_slice(&mut out[di * n..(di + 1) * n], brow, av);
        }
    }
}

/// `C = Aᵀ · B` without materializing the transpose.
///
/// Used for the weight-gradient computation `Y^{l-1} = (H^{l-1})ᵀ (A G^l)`
/// (paper Eq. 6).
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b shape mismatch: {:?} x {:?}", a.shape(), b.shape());
    let mut c = Matrix::zeros(a.cols(), b.cols());
    matmul_at_b_into(a, b, 0, c.as_mut_slice());
    c
}

/// Packs the rows of `B` into k-major panels of [`LANES`] rows:
/// `panels[panel][p * LANES + u] = b[panel * LANES + u][p]`.
///
/// Only the `n / LANES` full panels are packed; [`matmul_a_bt_into`] reads
/// the `n % LANES` tail rows straight from `b`.
pub fn pack_bt_panels(b: &Matrix) -> Vec<f32> {
    let n = b.rows();
    let k = b.cols();
    let panels = n / LANES;
    let mut out = vec![0.0f32; panels * k * LANES];
    for panel in 0..panels {
        let base = panel * k * LANES;
        for u in 0..LANES {
            for (p, &v) in b.row(panel * LANES + u).iter().enumerate() {
                out[base + p * LANES + u] = v;
            }
        }
    }
    out
}

/// Computes the row band `[row0, row0 + out.len() / n)` of `C = A · Bᵀ`
/// into `out`, reading `B` through `panels` (from [`pack_bt_panels`]).
///
/// Each [`LANES`]-wide output segment keeps an accumulator per lane and
/// sweeps `p` once over the contiguous panel — [`LANES`] independent dot
/// products, each summing `a[i][p]·b[j][p]` in ascending `p` exactly like
/// the scalar loop, so bits match [`reference::matmul_a_bt`].
pub fn matmul_a_bt_into(a: &Matrix, b: &Matrix, panels: &[f32], row0: usize, out: &mut [f32]) {
    let n = b.rows();
    let k = a.cols();
    if n == 0 {
        return;
    }
    debug_assert_eq!(out.len() % n, 0, "band must hold whole rows");
    let rows = out.len() / n;
    let full = n / LANES * LANES;
    for i in 0..rows {
        let arow = a.row(row0 + i);
        let crow = &mut out[i * n..(i + 1) * n];
        for (panel_idx, cseg) in crow[..full].chunks_exact_mut(LANES).enumerate() {
            let panel = &panels[panel_idx * k * LANES..(panel_idx + 1) * k * LANES];
            let mut acc = [0.0f32; LANES];
            for (p, &av) in arow.iter().enumerate() {
                let lanes = &panel[p * LANES..p * LANES + LANES];
                for u in 0..LANES {
                    acc[u] += av * lanes[u];
                }
            }
            cseg.copy_from_slice(&acc);
        }
        for (j, cell) in crow.iter_mut().enumerate().skip(full) {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += arow[p] * brow[p];
            }
            *cell = acc;
        }
    }
}

/// `C = A · Bᵀ` without materializing the transpose.
///
/// Used for the gradient flow `G^l ∝ G^{l+1} (W^{l+1})ᵀ` (paper Eq. 5).
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt shape mismatch: {:?} x {:?}", a.shape(), b.shape());
    let panels = pack_bt_panels(b);
    let mut c = Matrix::zeros(a.rows(), b.rows());
    matmul_a_bt_into(a, b, &panels, 0, c.as_mut_slice());
    c
}

/// The unblocked scalar kernels the optimized implementations are pinned
/// to, bit for bit.
///
/// These are the original (pre-pool) loops, kept as the ground truth for
/// the `kernel_equivalence` proptests and as the `speedup_vs_naive`
/// baseline in `hotpath_bench`. Do not "optimize" them.
pub mod reference {
    use crate::dense::Matrix;
    use crate::sparse::CsrMatrix;

    /// Naive `i-k-j` `C = A · B` (see [`super::matmul`] for the contract).
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul shape mismatch: {:?} x {:?}", a.shape(), b.shape());
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = a.row(i);
            let crow = c.row_mut(i);
            for (p, &av) in arow.iter().enumerate().take(k) {
                if av == 0.0 {
                    continue;
                }
                let brow = b.row(p);
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
        c
    }

    /// Naive in-place `C = Aᵀ · B` (rank-1 updates, ascending `r`).
    pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(
            a.rows(),
            b.rows(),
            "matmul_at_b shape mismatch: {:?} x {:?}",
            a.shape(),
            b.shape()
        );
        let m = a.cols();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        for r in 0..a.rows() {
            let arow = a.row(r);
            let brow = b.row(r);
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let crow = c.row_mut(i);
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
        c
    }

    /// Naive per-element dot products for `C = A · Bᵀ`.
    pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(
            a.cols(),
            b.cols(),
            "matmul_a_bt shape mismatch: {:?} x {:?}",
            a.shape(),
            b.shape()
        );
        let m = a.rows();
        let n = b.rows();
        let k = a.cols();
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            let arow = a.row(i);
            let crow = c.row_mut(i);
            for (j, cv) in crow.iter_mut().enumerate().take(n) {
                let brow = b.row(j);
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += arow[p] * brow[p];
                }
                *cv = acc;
            }
        }
        c
    }

    /// Naive row-wise sparse × dense product (see [`CsrMatrix::spmm`]).
    pub fn spmm(s: &CsrMatrix, b: &Matrix) -> Matrix {
        assert_eq!(
            s.cols(),
            b.rows(),
            "spmm shape mismatch: {}x{} * {:?}",
            s.rows(),
            s.cols(),
            b.shape()
        );
        let mut out = Matrix::zeros(s.rows(), b.cols());
        for r in 0..s.rows() {
            let orow = out.row_mut(r);
            for (c, v) in s.row_entries(r) {
                let brow = b.row(c);
                for (o, &x) in orow.iter_mut().zip(brow) {
                    *o += v * x;
                }
            }
        }
        out
    }
}

/// Elementwise `A + B`.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    zip_with(a, b, |x, y| x + y)
}

/// Elementwise `A - B`.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    zip_with(a, b, |x, y| x - y)
}

/// Elementwise (Hadamard) product `A ⊙ B`.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    zip_with(a, b, |x, y| x * y)
}

/// `A * s` for a scalar `s`.
pub fn scale(a: &Matrix, s: f32) -> Matrix {
    a.map(|x| x * s)
}

/// In-place `a += b`.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add_assign shape mismatch");
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// In-place `a -= b`.
pub fn sub_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "sub_assign shape mismatch");
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= y;
    }
}

/// In-place `a += b * s` (AXPY).
pub fn axpy(a: &mut Matrix, b: &Matrix, s: f32) {
    assert_eq!(a.shape(), b.shape(), "axpy shape mismatch");
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y * s;
    }
}

/// Adds a row vector `bias` (length = `a.cols()`) to every row of `a`.
pub fn add_bias(a: &Matrix, bias: &[f32]) -> Matrix {
    assert_eq!(a.cols(), bias.len(), "bias length mismatch");
    let mut out = a.clone();
    for r in 0..out.rows() {
        for (x, &b) in out.row_mut(r).iter_mut().zip(bias) {
            *x += b;
        }
    }
    out
}

/// Column-wise sum, producing a vector of length `a.cols()`.
///
/// Used for bias gradients: `∂L/∂b = Σ_rows G`.
pub fn column_sums(a: &Matrix) -> Vec<f32> {
    let mut sums = vec![0.0f32; a.cols()];
    for r in 0..a.rows() {
        for (s, &v) in sums.iter_mut().zip(a.row(r)) {
            *s += v;
        }
    }
    sums
}

/// Row-wise mean, producing a vector of length `a.rows()`.
pub fn row_means(a: &Matrix) -> Vec<f32> {
    let denom = a.cols().max(1) as f32;
    a.rows_iter().map(|row| row.iter().sum::<f32>() / denom).collect()
}

fn zip_with(a: &Matrix, b: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
    assert_eq!(
        a.shape(),
        b.shape(),
        "elementwise shape mismatch: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let data = a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| f(x, y)).collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a23() -> Matrix {
        Matrix::from_rows(&[vec![1., 2., 3.], vec![4., 5., 6.]])
    }

    fn b32() -> Matrix {
        Matrix::from_rows(&[vec![7., 8.], vec![9., 10.], vec![11., 12.]])
    }

    #[test]
    fn matmul_small_known_answer() {
        let c = matmul(&a23(), &b32());
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = a23();
        let c = matmul(&a, &Matrix::identity(3));
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        let a = a23();
        let b = Matrix::from_rows(&[vec![1., 0.], vec![0., 1.]]);
        let via_t = matmul(&a.transpose(), &b);
        assert_eq!(matmul_at_b(&a, &b), via_t);
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        let a = a23();
        let b = Matrix::from_rows(&[vec![1., 2., 3.], vec![4., 5., 6.], vec![7., 8., 9.]]);
        let via_t = matmul(&a, &b.transpose());
        assert_eq!(matmul_a_bt(&a, &b), via_t);
    }

    #[test]
    fn blocked_kernels_match_reference_beyond_one_tile() {
        // `k·n > TILE_BUDGET` so the tiled path (not the full-width
        // collapse) actually runs, with shapes past TILE_J/TILE_K that are
        // not tile multiples, sign structure, and planted zeros so the
        // skip path is exercised.
        let (k, n) = (260usize, 140usize);
        assert!(k * n > TILE_BUDGET, "shapes must force the tiled path");
        let a = Matrix::from_fn(40, k, |r, c| {
            if (r + c) % 7 == 0 {
                0.0
            } else {
                ((r * 151 + c * 7) as f32 * 0.01).sin()
            }
        });
        let b = Matrix::from_fn(k, n, |r, c| ((r * 31 + c * 17) as f32 * 0.02).cos());
        assert_eq!(matmul(&a, &b), reference::matmul(&a, &b));
        let l = Matrix::from_fn(k, 40, |r, c| ((r * 13 + c) as f32 * 0.03).sin());
        assert_eq!(matmul_at_b(&l, &b), reference::matmul_at_b(&l, &b));
        let bt = Matrix::from_fn(n, k, |r, c| ((r * 3 + c * 5) as f32 * 0.015).cos());
        assert_eq!(matmul_a_bt(&a, &bt), reference::matmul_a_bt(&a, &bt));
    }

    #[test]
    fn band_entry_points_compute_partial_rows() {
        let a = Matrix::from_fn(9, 11, |r, c| (r as f32 - c as f32) * 0.25);
        let b = Matrix::from_fn(11, 5, |r, c| (r + 2 * c) as f32 * 0.1);
        let full = matmul(&a, &b);
        let mut band = vec![0.0f32; 4 * 5];
        matmul_into(&a, &b, 3, &mut band);
        assert_eq!(&full.as_slice()[3 * 5..7 * 5], &band[..]);
    }

    #[test]
    fn degenerate_shapes_are_fine() {
        let empty_k = matmul(&Matrix::zeros(3, 0), &Matrix::zeros(0, 4));
        assert_eq!(empty_k, Matrix::zeros(3, 4));
        assert_eq!(matmul_a_bt(&Matrix::zeros(2, 0), &Matrix::zeros(5, 0)), Matrix::zeros(2, 5));
        assert_eq!(matmul_at_b(&Matrix::zeros(0, 3), &Matrix::zeros(0, 2)), Matrix::zeros(3, 2));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(add(&a, &b).as_slice(), &[5., 7., 9.]);
        assert_eq!(sub(&b, &a).as_slice(), &[3., 3., 3.]);
        assert_eq!(hadamard(&a, &b).as_slice(), &[4., 10., 18.]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[2., 4., 6.]);
    }

    #[test]
    fn in_place_ops() {
        let mut a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(1, 2, vec![10., 20.]);
        add_assign(&mut a, &b);
        assert_eq!(a.as_slice(), &[11., 22.]);
        sub_assign(&mut a, &b);
        assert_eq!(a.as_slice(), &[1., 2.]);
        axpy(&mut a, &b, 0.5);
        assert_eq!(a.as_slice(), &[6., 12.]);
    }

    #[test]
    fn bias_and_column_sums() {
        let a = a23();
        let biased = add_bias(&a, &[1., 1., 1.]);
        assert_eq!(biased.row(0), &[2., 3., 4.]);
        assert_eq!(column_sums(&a), vec![5., 7., 9.]);
    }

    #[test]
    fn row_means_computed() {
        assert_eq!(row_means(&a23()), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let _ = matmul(&a23(), &a23());
    }
}
