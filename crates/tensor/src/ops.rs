//! Dense matrix kernels: multiplication, elementwise arithmetic, reductions.
//!
//! The multiply kernels use the classic `i-k-j` loop order so the inner loop
//! streams over contiguous rows of both the accumulator and the right-hand
//! side — cache-friendly without any unsafe code or external BLAS.

use crate::dense::Matrix;

/// `C = A · B`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch: {:?} x {:?}", a.shape(), b.shape());
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// `C = Aᵀ · B` without materializing the transpose.
///
/// Used for the weight-gradient computation `Y^{l-1} = (H^{l-1})ᵀ (A G^l)`
/// (paper Eq. 6).
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b shape mismatch: {:?} x {:?}", a.shape(), b.shape());
    let m = a.cols();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for r in 0..a.rows() {
        let arow = a.row(r);
        let brow = b.row(r);
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = c.row_mut(i);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    c
}

/// `C = A · Bᵀ` without materializing the transpose.
///
/// Used for the gradient flow `G^l ∝ G^{l+1} (W^{l+1})ᵀ` (paper Eq. 5).
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt shape mismatch: {:?} x {:?}", a.shape(), b.shape());
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cv) in crow.iter_mut().enumerate().take(n) {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += arow[p] * brow[p];
            }
            *cv = acc;
        }
    }
    c
}

/// Elementwise `A + B`.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    zip_with(a, b, |x, y| x + y)
}

/// Elementwise `A - B`.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    zip_with(a, b, |x, y| x - y)
}

/// Elementwise (Hadamard) product `A ⊙ B`.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    zip_with(a, b, |x, y| x * y)
}

/// `A * s` for a scalar `s`.
pub fn scale(a: &Matrix, s: f32) -> Matrix {
    a.map(|x| x * s)
}

/// In-place `a += b`.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "add_assign shape mismatch");
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// In-place `a -= b`.
pub fn sub_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "sub_assign shape mismatch");
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x -= y;
    }
}

/// In-place `a += b * s` (AXPY).
pub fn axpy(a: &mut Matrix, b: &Matrix, s: f32) {
    assert_eq!(a.shape(), b.shape(), "axpy shape mismatch");
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y * s;
    }
}

/// Adds a row vector `bias` (length = `a.cols()`) to every row of `a`.
pub fn add_bias(a: &Matrix, bias: &[f32]) -> Matrix {
    assert_eq!(a.cols(), bias.len(), "bias length mismatch");
    let mut out = a.clone();
    for r in 0..out.rows() {
        for (x, &b) in out.row_mut(r).iter_mut().zip(bias) {
            *x += b;
        }
    }
    out
}

/// Column-wise sum, producing a vector of length `a.cols()`.
///
/// Used for bias gradients: `∂L/∂b = Σ_rows G`.
pub fn column_sums(a: &Matrix) -> Vec<f32> {
    let mut sums = vec![0.0f32; a.cols()];
    for r in 0..a.rows() {
        for (s, &v) in sums.iter_mut().zip(a.row(r)) {
            *s += v;
        }
    }
    sums
}

/// Row-wise mean, producing a vector of length `a.rows()`.
pub fn row_means(a: &Matrix) -> Vec<f32> {
    let denom = a.cols().max(1) as f32;
    a.rows_iter().map(|row| row.iter().sum::<f32>() / denom).collect()
}

fn zip_with(a: &Matrix, b: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
    assert_eq!(
        a.shape(),
        b.shape(),
        "elementwise shape mismatch: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let data = a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| f(x, y)).collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a23() -> Matrix {
        Matrix::from_rows(&[vec![1., 2., 3.], vec![4., 5., 6.]])
    }

    fn b32() -> Matrix {
        Matrix::from_rows(&[vec![7., 8.], vec![9., 10.], vec![11., 12.]])
    }

    #[test]
    fn matmul_small_known_answer() {
        let c = matmul(&a23(), &b32());
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = a23();
        let c = matmul(&a, &Matrix::identity(3));
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        let a = a23();
        let b = Matrix::from_rows(&[vec![1., 0.], vec![0., 1.]]);
        let via_t = matmul(&a.transpose(), &b);
        assert_eq!(matmul_at_b(&a, &b), via_t);
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        let a = a23();
        let b = Matrix::from_rows(&[vec![1., 2., 3.], vec![4., 5., 6.], vec![7., 8., 9.]]);
        let via_t = matmul(&a, &b.transpose());
        assert_eq!(matmul_a_bt(&a, &b), via_t);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(add(&a, &b).as_slice(), &[5., 7., 9.]);
        assert_eq!(sub(&b, &a).as_slice(), &[3., 3., 3.]);
        assert_eq!(hadamard(&a, &b).as_slice(), &[4., 10., 18.]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[2., 4., 6.]);
    }

    #[test]
    fn in_place_ops() {
        let mut a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(1, 2, vec![10., 20.]);
        add_assign(&mut a, &b);
        assert_eq!(a.as_slice(), &[11., 22.]);
        sub_assign(&mut a, &b);
        assert_eq!(a.as_slice(), &[1., 2.]);
        axpy(&mut a, &b, 0.5);
        assert_eq!(a.as_slice(), &[6., 12.]);
    }

    #[test]
    fn bias_and_column_sums() {
        let a = a23();
        let biased = add_bias(&a, &[1., 1., 1.]);
        assert_eq!(biased.row(0), &[2., 3., 4.]);
        assert_eq!(column_sums(&a), vec![5., 7., 9.]);
    }

    #[test]
    fn row_means_computed() {
        assert_eq!(row_means(&a23()), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let _ = matmul(&a23(), &a23());
    }
}
