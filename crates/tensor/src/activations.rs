//! Activation functions and their derivatives.
//!
//! The paper's GCN uses ReLU between layers and a row-wise softmax feeding a
//! cross-entropy loss at the output (Alg. 1 lines 12–13). Backward
//! propagation needs `σ'(Z)` (Eqs. 4–5), provided here as [`relu_grad`].

use crate::dense::Matrix;

/// Elementwise ReLU: `max(x, 0)`.
pub fn relu(m: &Matrix) -> Matrix {
    m.map(|x| x.max(0.0))
}

/// Derivative of ReLU evaluated at the *pre-activation* `z`:
/// `1` where `z > 0`, else `0`.
pub fn relu_grad(z: &Matrix) -> Matrix {
    z.map(|x| if x > 0.0 { 1.0 } else { 0.0 })
}

/// Elementwise leaky ReLU with slope `alpha` for negative inputs.
pub fn leaky_relu(m: &Matrix, alpha: f32) -> Matrix {
    m.map(|x| if x > 0.0 { x } else { alpha * x })
}

/// Derivative of leaky ReLU at the pre-activation.
pub fn leaky_relu_grad(z: &Matrix, alpha: f32) -> Matrix {
    z.map(|x| if x > 0.0 { 1.0 } else { alpha })
}

/// Elementwise logistic sigmoid.
pub fn sigmoid(m: &Matrix) -> Matrix {
    m.map(|x| 1.0 / (1.0 + (-x).exp()))
}

/// Row-wise softmax with the standard max-subtraction for numerical
/// stability.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        if sum > 0.0 {
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
    }
    out
}

/// Row-wise log-softmax (numerically stable log of [`softmax_rows`]).
pub fn log_softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
        for x in row.iter_mut() {
            *x -= log_sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let m = Matrix::from_vec(1, 4, vec![-2., -0.5, 0., 3.]);
        assert_eq!(relu(&m).as_slice(), &[0., 0., 0., 3.]);
    }

    #[test]
    fn relu_grad_is_indicator() {
        let z = Matrix::from_vec(1, 3, vec![-1., 0., 2.]);
        assert_eq!(relu_grad(&z).as_slice(), &[0., 0., 1.]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let m = Matrix::from_vec(1, 2, vec![-10., 10.]);
        assert_eq!(leaky_relu(&m, 0.1).as_slice(), &[-1., 10.]);
        assert_eq!(leaky_relu_grad(&m, 0.1).as_slice(), &[0.1, 1.0]);
    }

    #[test]
    fn sigmoid_midpoint() {
        let m = Matrix::from_vec(1, 1, vec![0.0]);
        assert!((sigmoid(&m).get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[vec![1., 2., 3.], vec![-5., 0., 5.]]);
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![101., 102., 103.]);
        assert!(softmax_rows(&a).approx_eq(&softmax_rows(&b), 1e-6));
    }

    #[test]
    fn softmax_handles_large_values_without_overflow() {
        let m = Matrix::from_vec(1, 2, vec![1000., 1001.]);
        let s = softmax_rows(&m);
        assert!(s.as_slice().iter().all(|x| x.is_finite()));
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let m = Matrix::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
        let ls = log_softmax_rows(&m);
        let s = softmax_rows(&m);
        for c in 0..3 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }
}
