//! Row-major dense `f32` matrix.
//!
//! The embedding matrices `H^l`, gradient matrices `G^l` and weight matrices
//! `W^l` of the paper are all instances of [`Matrix`]. The type is
//! deliberately simple — a `(rows, cols, Vec<f32>)` triple — so that message
//! serialization in `ec-comm` and quantization in `ec-compress` can operate
//! directly on the contiguous backing slice.

use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f32`.
///
/// Invariant: `data.len() == rows * cols` at all times.
///
/// ```
/// use ec_tensor::{ops, Matrix};
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let c = ops::matmul(&a, &Matrix::identity(2));
/// assert_eq!(c, a);
/// assert_eq!(a.row(1), &[3.0, 4.0]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally-long rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let n = rows.len();
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has length {} != {cols}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: n, cols, data }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole backing buffer, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Copies the contents of `src` into row `r`.
    ///
    /// # Panics
    /// Panics if `src.len() != cols`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols, "row length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Returns a new matrix containing the listed rows, in order.
    ///
    /// This is the `gather` used when a worker assembles the embeddings of a
    /// requested remote-vertex set.
    pub fn gather_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Adds the rows of `src` into the rows of `self` listed in `indices`
    /// (`self[indices[i]] += src[i]`).
    pub fn scatter_add_rows(&mut self, indices: &[usize], src: &Matrix) {
        assert_eq!(indices.len(), src.rows());
        assert_eq!(self.cols, src.cols());
        for (i, &dst) in indices.iter().enumerate() {
            let row = self.row_mut(dst);
            for (a, &b) in row.iter_mut().zip(src.row(i)) {
                *a += b;
            }
        }
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Self {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Self { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// The transpose of the matrix.
    ///
    /// Blocked over 32×32 tiles so both the source rows and the
    /// destination columns of the active tile stay cache-resident — a pure
    /// permutation, so the blocking has no numeric effect.
    pub fn transpose(&self) -> Self {
        const TILE: usize = 32;
        let mut out = Self::zeros(self.cols, self.rows);
        for r0 in (0..self.rows).step_by(TILE) {
            let rh = TILE.min(self.rows - r0);
            for c0 in (0..self.cols).step_by(TILE) {
                let ch = TILE.min(self.cols - c0);
                for r in r0..r0 + rh {
                    let src = &self.data[r * self.cols + c0..r * self.cols + c0 + ch];
                    for (dc, &v) in src.iter().enumerate() {
                        out.data[(c0 + dc) * self.rows + r] = v;
                    }
                }
            }
        }
        out
    }

    /// True when the two matrices have the same shape and all entries differ
    /// by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.into_vec(), vec![1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 5]);
    }

    #[test]
    fn from_fn_evaluates_positions() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0., 1., 10., 11.]);
    }

    #[test]
    fn identity_is_diagonal() {
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn row_access_and_set_row() {
        let mut m = Matrix::zeros(2, 3);
        m.set_row(1, &[7., 8., 9.]);
        assert_eq!(m.row(1), &[7., 8., 9.]);
        assert_eq!(m.row(0), &[0., 0., 0.]);
    }

    #[test]
    fn gather_rows_selects_in_order() {
        let m = Matrix::from_rows(&[vec![1., 1.], vec![2., 2.], vec![3., 3.]]);
        let g = m.gather_rows(&[2, 0]);
        assert_eq!(g.row(0), &[3., 3.]);
        assert_eq!(g.row(1), &[1., 1.]);
    }

    #[test]
    fn scatter_add_accumulates() {
        let mut m = Matrix::zeros(3, 2);
        let src = Matrix::from_rows(&[vec![1., 2.], vec![3., 4.]]);
        m.scatter_add_rows(&[1, 1], &src);
        assert_eq!(m.row(1), &[4., 6.]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[vec![1., 2.]]);
        let b = Matrix::from_rows(&[vec![3., 4.], vec![5., 6.]]);
        let s = a.vstack(&b);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5., 6.]);
    }

    #[test]
    fn map_applies_function() {
        let m = Matrix::from_vec(1, 3, vec![1., -2., 3.]);
        let doubled = m.map(|x| x * 2.0);
        assert_eq!(doubled.as_slice(), &[2., -4., 6.]);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![1.0005, 2.0]);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
    }
}
