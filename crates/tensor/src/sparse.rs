//! Compressed-sparse-row matrices and SpMM kernels.
//!
//! The normalized adjacency matrix `Â = D^{-1/2}(A + I)D^{-1/2}` of a GCN is
//! stored as a [`CsrMatrix`]. The two products the paper's equations need are
//!
//! * forward aggregation `Z = Âᵀ H_cat W` → [`CsrMatrix::spmm`] computes the
//!   sparse-dense part, and
//! * backward gradient flow `G^{l} = Â G^{l+1}_cat (W)ᵀ ⊙ σ'` → also SpMM.
//!
//! Because `Â` is symmetric for undirected graphs the engine mostly needs
//! `spmm`; `spmm_t` is provided (and tested against the dense reference) for
//! directed-graph support.

use crate::dense::Matrix;
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed-sparse-row format.
///
/// Invariants:
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`,
///   `indptr[rows] == indices.len() == values.len()`;
/// * `indptr` is non-decreasing;
/// * every entry of `indices` is `< cols`;
/// * column indices within a row are strictly increasing (checked by
///   [`CsrMatrix::new`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating all invariants.
    ///
    /// # Panics
    /// Panics if any CSR invariant is violated.
    pub fn new(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length must be rows+1");
        assert_eq!(indptr[0], 0, "indptr must start at 0");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "indptr end mismatch");
        assert_eq!(indices.len(), values.len(), "indices/values length mismatch");
        for w in indptr.windows(2) {
            assert!(w[0] <= w[1], "indptr must be non-decreasing");
        }
        for r in 0..rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            for pair in row.windows(2) {
                assert!(pair[0] < pair[1], "columns in row {r} must be strictly increasing");
            }
            if let Some(&last) = row.last() {
                assert!((last as usize) < cols, "column index {last} out of bounds in row {r}");
            }
        }
        Self { rows, cols, indptr, indices, values }
    }

    /// Builds a CSR matrix from `(row, col, value)` triples (need not be
    /// sorted; duplicate positions are summed).
    pub fn from_triples(rows: usize, cols: usize, triples: &[(usize, usize, f32)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f32)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triples {
            assert!(r < rows && c < cols, "triple ({r},{c}) out of bounds");
            per_row[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triples.len());
        let mut values = Vec::with_capacity(triples.len());
        indptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = row[i].1;
                let mut j = i + 1;
                while j < row.len() && row[j].0 == c {
                    v += row[j].1;
                    j += 1;
                }
                indices.push(c as u32);
                values.push(v);
                i = j;
            }
            indptr.push(indices.len());
        }
        Self { rows, cols, indptr, indices, values }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The `(column, value)` entries of row `r`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let span = self.indptr[r]..self.indptr[r + 1];
        self.indices[span.clone()].iter().zip(&self.values[span]).map(|(&c, &v)| (c as usize, v))
    }

    /// Sparse × dense product `self · B`.
    ///
    /// # Panics
    /// Panics if `self.cols() != b.rows()`.
    pub fn spmm(&self, b: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            b.rows(),
            "spmm shape mismatch: {}x{} * {:?}",
            self.rows,
            self.cols,
            b.shape()
        );
        let mut out = Matrix::zeros(self.rows, b.cols());
        self.spmm_into(b, 0, out.as_mut_slice());
        out
    }

    /// Computes the row band `[row0, row0 + out.len() / b.cols())` of
    /// `self · B` into `out` (row-major).
    ///
    /// Shared body of [`CsrMatrix::spmm`] and the band-parallel
    /// `parallel::spmm`. Nonzeros are applied in CSR (ascending-column)
    /// order per row and the inner AXPY is element-wise independent, so
    /// bits match the naive `ops::reference::spmm` loop exactly.
    pub fn spmm_into(&self, b: &Matrix, row0: usize, out: &mut [f32]) {
        let n = b.cols();
        if n == 0 {
            return;
        }
        debug_assert_eq!(out.len() % n, 0, "band must hold whole rows");
        let rows = out.len() / n;
        for i in 0..rows {
            let orow = &mut out[i * n..(i + 1) * n];
            for idx in self.indptr[row0 + i]..self.indptr[row0 + i + 1] {
                let c = self.indices[idx] as usize;
                crate::ops::axpy_slice(orow, b.row(c), self.values[idx]);
            }
        }
    }

    /// Transposed sparse × dense product `selfᵀ · B` without materializing
    /// the transpose.
    pub fn spmm_t(&self, b: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            b.rows(),
            "spmm_t shape mismatch: ({}x{})^T * {:?}",
            self.rows,
            self.cols,
            b.shape()
        );
        let mut out = Matrix::zeros(self.cols, b.cols());
        for r in 0..self.rows {
            let brow = b.row(r);
            for idx in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[idx] as usize;
                let v = self.values[idx];
                let orow = out.row_mut(c);
                for (o, &x) in orow.iter_mut().zip(brow) {
                    *o += v * x;
                }
            }
        }
        out
    }

    /// Densifies the matrix (testing / small problems only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m.set(r, c, v);
            }
        }
        m
    }

    /// Extracts the sub-matrix of the listed rows (all columns kept).
    ///
    /// Used by workers to slice the global normalized adjacency down to
    /// their local partition.
    pub fn select_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for &r in rows {
            assert!(r < self.rows, "row {r} out of bounds");
            let span = self.indptr[r]..self.indptr[r + 1];
            indices.extend_from_slice(&self.indices[span.clone()]);
            values.extend_from_slice(&self.values[span]);
            indptr.push(indices.len());
        }
        CsrMatrix { rows: rows.len(), cols: self.cols, indptr, indices, values }
    }

    /// Remaps column indices through `map` (new column id per old id) and
    /// shrinks the column dimension to `new_cols`. Entries whose column maps
    /// to `None` are dropped.
    ///
    /// Workers use this to renumber global vertex ids into the local
    /// `[local vertices | cached remote vertices]` layout.
    pub fn remap_columns(
        &self,
        map: &dyn Fn(usize) -> Option<usize>,
        new_cols: usize,
    ) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut entries: Vec<(u32, f32)> = Vec::new();
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..self.rows {
            entries.clear();
            for (c, v) in self.row_entries(r) {
                if let Some(nc) = map(c) {
                    assert!(nc < new_cols, "mapped column {nc} out of bounds");
                    entries.push((nc as u32, v));
                }
            }
            entries.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in entries.iter() {
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        CsrMatrix { rows: self.rows, cols: new_cols, indptr, indices, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;

    fn sample() -> CsrMatrix {
        // [[1 0 2]
        //  [0 3 0]]
        CsrMatrix::from_triples(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn from_triples_builds_sorted_rows() {
        let m = CsrMatrix::from_triples(2, 3, &[(0, 2, 2.0), (0, 0, 1.0), (1, 1, 3.0)]);
        assert_eq!(m, sample());
    }

    #[test]
    fn duplicate_triples_are_summed() {
        let m = CsrMatrix::from_triples(1, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.to_dense().get(0, 1), 3.5);
    }

    #[test]
    fn spmm_matches_dense_reference() {
        let s = sample();
        let b = Matrix::from_rows(&[vec![1., 2.], vec![3., 4.], vec![5., 6.]]);
        let dense = matmul(&s.to_dense(), &b);
        assert_eq!(s.spmm(&b), dense);
    }

    #[test]
    fn spmm_t_matches_dense_reference() {
        let s = sample();
        let b = Matrix::from_rows(&[vec![1., 2.], vec![3., 4.]]);
        let dense = matmul(&s.to_dense().transpose(), &b);
        assert_eq!(s.spmm_t(&b), dense);
    }

    #[test]
    fn select_rows_extracts_submatrix() {
        let s = sample();
        let sel = s.select_rows(&[1]);
        assert_eq!(sel.rows(), 1);
        assert_eq!(sel.to_dense().row(0), &[0., 3., 0.]);
    }

    #[test]
    fn remap_columns_renumbers_and_drops() {
        let s = sample();
        // keep columns {0, 2}, renumbered to {0, 1}
        let remapped = s.remap_columns(
            &|c| match c {
                0 => Some(0),
                2 => Some(1),
                _ => None,
            },
            2,
        );
        let d = remapped.to_dense();
        assert_eq!(d.row(0), &[1., 2.]);
        assert_eq!(d.row(1), &[0., 0.]);
    }

    #[test]
    #[should_panic(expected = "indptr length")]
    fn new_validates_indptr_length() {
        let _ = CsrMatrix::new(2, 2, vec![0, 1], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn new_validates_column_order() {
        let _ = CsrMatrix::new(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    fn row_entries_iterates_pairs() {
        let s = sample();
        let entries: Vec<_> = s.row_entries(0).collect();
        assert_eq!(entries, vec![(0, 1.0), (2, 2.0)]);
    }
}
