//! Thread-parallel variants of the hot kernels.
//!
//! Output rows are partitioned across threads, and each output row is
//! computed by exactly one thread with the same inner-loop order as the
//! sequential kernel — so results are **bit-identical** to
//! [`crate::ops::matmul`] / [`CsrMatrix::spmm`], and all determinism
//! guarantees of the simulation carry over. The paper's workers are
//! multi-core machines (4- and 32-core Xeons); these kernels are what a
//! production deployment would run inside each worker. The speedup is of
//! course hardware-bound: on a single-core host (like some CI runners —
//! check the `spmm` criterion bench output) the scoped threads are pure
//! overhead and [`effective_threads`]`(0)` correctly resolves to 1.

use crate::dense::Matrix;
use crate::sparse::CsrMatrix;

/// Picks a worker count: `threads` if nonzero, else the machine's
/// parallelism (capped at 16 — beyond that the kernels here are memory
/// bound).
pub fn effective_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map(|n| n.get().min(16)).unwrap_or(1)
    }
}

/// Parallel `C = A · B` over row chunks of `A`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let threads = effective_threads(threads).max(1);
    let (m, k) = a.shape();
    let n = b.cols();
    if threads == 1 || m < 2 * threads {
        return crate::ops::matmul(a, b);
    }
    let mut c = Matrix::zeros(m, n);
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        // Split the output buffer into disjoint row bands, one per thread.
        let mut out = c.as_mut_slice();
        let mut row0 = 0usize;
        while row0 < m {
            let rows_here = chunk.min(m - row0);
            let (band, rest) = out.split_at_mut(rows_here * n);
            out = rest;
            let start = row0;
            scope.spawn(move || {
                for (local_r, crow) in band.chunks_exact_mut(n).enumerate() {
                    let arow = a.row(start + local_r);
                    for (p, &av) in arow.iter().enumerate().take(k) {
                        if av == 0.0 {
                            continue;
                        }
                        let brow = b.row(p);
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
            });
            row0 += rows_here;
        }
    });
    c
}

/// Parallel sparse × dense product over row chunks of the sparse matrix.
///
/// # Panics
/// Panics if `s.cols() != b.rows()`.
pub fn spmm(s: &CsrMatrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(s.cols(), b.rows(), "spmm shape mismatch");
    let threads = effective_threads(threads).max(1);
    let m = s.rows();
    let n = b.cols();
    if threads == 1 || m < 2 * threads {
        return s.spmm(b);
    }
    let mut c = Matrix::zeros(m, n);
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut out = c.as_mut_slice();
        let mut row0 = 0usize;
        while row0 < m {
            let rows_here = chunk.min(m - row0);
            let (band, rest) = out.split_at_mut(rows_here * n);
            out = rest;
            let start = row0;
            scope.spawn(move || {
                for (local_r, crow) in band.chunks_exact_mut(n).enumerate() {
                    for (col, v) in s.row_entries(start + local_r) {
                        let brow = b.row(col);
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += v * bv;
                        }
                    }
                }
            });
            row0 += rows_here;
        }
    });
    c
}

/// Parallel `C = Aᵀ · B` over row chunks of the *output* (columns of `A`).
///
/// Each thread owns a disjoint band of output rows and walks `r` over every
/// row of `A` in ascending order, exactly like the sequential kernel — so
/// each output element accumulates its `a[r][i] · b[r]` terms in the same
/// sequence and the result is bit-identical to [`crate::ops::matmul_at_b`].
///
/// # Panics
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_at_b(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b shape mismatch");
    let threads = effective_threads(threads).max(1);
    let m = a.cols();
    let n = b.cols();
    if threads == 1 || m < 2 * threads {
        return crate::ops::matmul_at_b(a, b);
    }
    let mut c = Matrix::zeros(m, n);
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut out = c.as_mut_slice();
        let mut row0 = 0usize;
        while row0 < m {
            let rows_here = chunk.min(m - row0);
            let (band, rest) = out.split_at_mut(rows_here * n);
            out = rest;
            let start = row0;
            scope.spawn(move || {
                for r in 0..a.rows() {
                    let arow = a.row(r);
                    let brow = b.row(r);
                    for (local_i, crow) in band.chunks_exact_mut(n).enumerate() {
                        let av = arow[start + local_i];
                        if av == 0.0 {
                            continue;
                        }
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
            });
            row0 += rows_here;
        }
    });
    c
}

/// Parallel `C = A · Bᵀ` over row chunks of `A`.
///
/// Every output element is an independent dot product with the same inner
/// `k`-loop as [`crate::ops::matmul_a_bt`], so results are bit-identical.
///
/// # Panics
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt shape mismatch");
    let threads = effective_threads(threads).max(1);
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    if threads == 1 || m < 2 * threads {
        return crate::ops::matmul_a_bt(a, b);
    }
    let mut c = Matrix::zeros(m, n);
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut out = c.as_mut_slice();
        let mut row0 = 0usize;
        while row0 < m {
            let rows_here = chunk.min(m - row0);
            let (band, rest) = out.split_at_mut(rows_here * n);
            out = rest;
            let start = row0;
            scope.spawn(move || {
                for (local_r, crow) in band.chunks_exact_mut(n).enumerate() {
                    let arow = a.row(start + local_r);
                    for (j, cv) in crow.iter_mut().enumerate().take(n) {
                        let brow = b.row(j);
                        let mut acc = 0.0f32;
                        for p in 0..k {
                            acc += arow[p] * brow[p];
                        }
                        *cv = acc;
                    }
                }
            });
            row0 += rows_here;
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, ops};

    #[test]
    fn parallel_matmul_is_bit_identical() {
        let a = init::uniform(67, 33, -1.0, 1.0, 1);
        let b = init::uniform(33, 29, -1.0, 1.0, 2);
        let seq = ops::matmul(&a, &b);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(matmul(&a, &b, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_spmm_is_bit_identical() {
        let s = CsrMatrix::from_triples(
            50,
            40,
            &(0..200)
                .map(|i| ((i * 7) % 50, (i * 13) % 40, (i as f32 * 0.3).sin()))
                .collect::<Vec<_>>(),
        );
        let b = init::uniform(40, 8, -1.0, 1.0, 3);
        let seq = s.spmm(&b);
        for threads in [2usize, 4, 7] {
            assert_eq!(spmm(&s, &b, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matmul_at_b_is_bit_identical() {
        let a = init::uniform(41, 67, -1.0, 1.0, 4);
        let b = init::uniform(41, 23, -1.0, 1.0, 5);
        let seq = ops::matmul_at_b(&a, &b);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(matmul_at_b(&a, &b, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matmul_a_bt_is_bit_identical() {
        let a = init::uniform(53, 31, -1.0, 1.0, 6);
        let b = init::uniform(27, 31, -1.0, 1.0, 7);
        let seq = ops::matmul_a_bt(&a, &b);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(matmul_a_bt(&a, &b, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn transpose_kernels_handle_sparse_inputs_identically() {
        // The `av == 0.0` skip must fire in the same places as the
        // sequential kernel for the bit-identity argument to hold.
        let mut a = init::uniform(40, 48, -1.0, 1.0, 8);
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                if (r + c) % 3 == 0 {
                    a.set(r, c, 0.0);
                }
            }
        }
        let b = init::uniform(40, 16, -1.0, 1.0, 9);
        assert_eq!(matmul_at_b(&a, &b, 4), ops::matmul_at_b(&a, &b));
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let a = Matrix::identity(3);
        let b = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        assert_eq!(matmul(&a, &b, 8), b);
    }

    #[test]
    fn effective_threads_resolves() {
        assert_eq!(effective_threads(4), 4);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(matmul(&a, &b, 4).shape(), (0, 3));
        let s = CsrMatrix::from_triples(0, 5, &[]);
        assert_eq!(spmm(&s, &b, 4).shape(), (0, 3));
    }
}
