//! Thread-parallel variants of the hot kernels, dispatched on the
//! persistent [`crate::pool`].
//!
//! Output rows are partitioned into contiguous bands, band `i` runs on
//! pool lane `i % threads`, and each band is computed by the **same**
//! blocked kernel body ([`crate::ops::matmul_into`] and friends) the
//! sequential entry points use — so results are bit-identical to
//! [`crate::ops::matmul`] / [`CsrMatrix::spmm`] by construction, and all
//! determinism guarantees of the simulation carry over. The paper's
//! workers are multi-core machines (4- and 32-core Xeons); these kernels
//! are what a production deployment would run inside each worker.
//!
//! Two guards keep dispatch from ever costing more than it buys:
//!
//! * [`effective_threads`] caps every request at the physical parallelism
//!   recorded when the shared pool was built — on a 1-core host all
//!   requests resolve to 1 and every kernel runs inline (the pre-pool
//!   scoped threads ran anyway and time-sliced the core, which is how the
//!   old 2-thread benchmark rows came out *slower* than sequential);
//! * [`band_count`] converts the kernel's multiply-accumulate count into a
//!   band budget, so matrices below [`MIN_BAND_WORK`] per band never leave
//!   the calling thread (the old `m < 2 * threads` row-count test let
//!   tiny, wide-enough matmuls pay dispatch overhead for microseconds of
//!   work).

use crate::dense::Matrix;
use crate::ops;
use crate::pool::{self, Task};
use crate::sparse::CsrMatrix;

/// Minimum multiply-accumulate count a band must carry before pool
/// dispatch pays for itself. Handing a task to a lane and collecting it
/// costs a few microseconds; 128 Ki MACs is roughly 50–100 µs of kernel
/// work, comfortably past break-even.
pub const MIN_BAND_WORK: usize = 128 * 1024;

/// Resolves a requested thread count: `0` means the shared pool's size,
/// anything else is capped by it. The cap is the physical parallelism
/// sampled at pool construction — kernel dispatch can never oversubscribe
/// the host, whatever the configuration asks for.
pub fn effective_threads(threads: usize) -> usize {
    let cap = pool::shared().threads();
    if threads == 0 {
        cap
    } else {
        threads.min(cap).max(1)
    }
}

/// Number of row bands worth dispatching for `rows` output rows totalling
/// `work` multiply-accumulates: at most one band per thread or per row,
/// and never so many that a band falls below [`MIN_BAND_WORK`]. Returns
/// `<= 1` when the whole kernel should stay on the calling thread.
fn band_count(threads: usize, rows: usize, work: usize) -> usize {
    threads.min(rows).min((work / MIN_BAND_WORK).max(1))
}

/// Splits `out` (rows × cols, row-major) into `bands` contiguous row
/// bands and runs `body(first_row, band)` for each on the shared pool.
fn run_bands(
    out: &mut [f32],
    rows: usize,
    cols: usize,
    bands: usize,
    body: &(impl Fn(usize, &mut [f32]) + Sync),
) {
    let chunk = rows.div_ceil(bands);
    let mut tasks: Vec<Task<'_>> = Vec::with_capacity(bands);
    let mut rest = out;
    let mut row0 = 0usize;
    while row0 < rows {
        let here = chunk.min(rows - row0);
        let (band, tail) = rest.split_at_mut(here * cols);
        rest = tail;
        let start = row0;
        tasks.push(Box::new(move || body(start, band)));
        row0 += here;
    }
    pool::shared().run(tasks);
}

/// Parallel `C = A · B` over row bands of `A`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, k) = a.shape();
    let n = b.cols();
    let work = m.saturating_mul(k).saturating_mul(n);
    let bands = band_count(effective_threads(threads), m, work);
    let mut c = Matrix::zeros(m, n);
    if bands <= 1 {
        ops::matmul_into(a, b, 0, c.as_mut_slice());
        return c;
    }
    run_bands(c.as_mut_slice(), m, n, bands, &|row0, band| ops::matmul_into(a, b, row0, band));
    c
}

/// Parallel sparse × dense product over row bands of the sparse matrix.
///
/// # Panics
/// Panics if `s.cols() != b.rows()`.
pub fn spmm(s: &CsrMatrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(s.cols(), b.rows(), "spmm shape mismatch");
    let m = s.rows();
    let n = b.cols();
    let work = s.nnz().saturating_mul(n);
    let bands = band_count(effective_threads(threads), m, work);
    let mut c = Matrix::zeros(m, n);
    if bands <= 1 {
        s.spmm_into(b, 0, c.as_mut_slice());
        return c;
    }
    run_bands(c.as_mut_slice(), m, n, bands, &|row0, band| s.spmm_into(b, row0, band));
    c
}

/// Parallel `C = Aᵀ · B` over row bands of the *output* (columns of `A`).
///
/// Each band runs [`crate::ops::matmul_at_b_into`] on its own column
/// slice of `A`: bands re-stream `B`, but the output shape is a weight
/// gradient (`a.cols() × b.cols()`, small) so each band's accumulator
/// stays cache-resident. Per output element the accumulation is still
/// `Σ_r a[r][i]·b[r][j]` in ascending `r` with the same `== 0.0` skip, so
/// the result is bit-identical to [`crate::ops::matmul_at_b`].
///
/// # Panics
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_at_b(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "matmul_at_b shape mismatch");
    let m = a.cols();
    let n = b.cols();
    let work = m.saturating_mul(a.rows()).saturating_mul(n);
    let bands = band_count(effective_threads(threads), m, work);
    let mut c = Matrix::zeros(m, n);
    if bands <= 1 {
        ops::matmul_at_b_into(a, b, 0, c.as_mut_slice());
        return c;
    }
    run_bands(c.as_mut_slice(), m, n, bands, &|row0, band| ops::matmul_at_b_into(a, b, row0, band));
    c
}

/// Parallel `C = A · Bᵀ` over row bands of `A`.
///
/// `B` is packed once into k-major panels on the calling thread; every
/// output element remains an independent dot product with the same
/// ascending-`p` inner loop as [`crate::ops::matmul_a_bt`], so results
/// are bit-identical.
///
/// # Panics
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_a_bt shape mismatch");
    let m = a.rows();
    let n = b.rows();
    let k = a.cols();
    let work = m.saturating_mul(n).saturating_mul(k);
    let bands = band_count(effective_threads(threads), m, work);
    let panels = ops::pack_bt_panels(b);
    let mut c = Matrix::zeros(m, n);
    if bands <= 1 {
        ops::matmul_a_bt_into(a, b, &panels, 0, c.as_mut_slice());
        return c;
    }
    run_bands(c.as_mut_slice(), m, n, bands, &|row0, band| {
        ops::matmul_a_bt_into(a, b, &panels, row0, band)
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, ops};

    #[test]
    fn parallel_matmul_is_bit_identical() {
        let a = init::uniform(67, 33, -1.0, 1.0, 1);
        let b = init::uniform(33, 29, -1.0, 1.0, 2);
        let seq = ops::matmul(&a, &b);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(matmul(&a, &b, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_spmm_is_bit_identical() {
        let s = CsrMatrix::from_triples(
            50,
            40,
            &(0..200)
                .map(|i| ((i * 7) % 50, (i * 13) % 40, (i as f32 * 0.3).sin()))
                .collect::<Vec<_>>(),
        );
        let b = init::uniform(40, 8, -1.0, 1.0, 3);
        let seq = s.spmm(&b);
        for threads in [2usize, 4, 7] {
            assert_eq!(spmm(&s, &b, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matmul_at_b_is_bit_identical() {
        let a = init::uniform(41, 67, -1.0, 1.0, 4);
        let b = init::uniform(41, 23, -1.0, 1.0, 5);
        let seq = ops::matmul_at_b(&a, &b);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(matmul_at_b(&a, &b, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matmul_a_bt_is_bit_identical() {
        let a = init::uniform(53, 31, -1.0, 1.0, 6);
        let b = init::uniform(27, 31, -1.0, 1.0, 7);
        let seq = ops::matmul_a_bt(&a, &b);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(matmul_a_bt(&a, &b, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn transpose_kernels_handle_sparse_inputs_identically() {
        // The `av == 0.0` skip must fire in the same places as the
        // sequential kernel for the bit-identity argument to hold.
        let mut a = init::uniform(40, 48, -1.0, 1.0, 8);
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                if (r + c) % 3 == 0 {
                    a.set(r, c, 0.0);
                }
            }
        }
        let b = init::uniform(40, 16, -1.0, 1.0, 9);
        assert_eq!(matmul_at_b(&a, &b, 4), ops::matmul_at_b(&a, &b));
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let a = Matrix::identity(3);
        let b = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        assert_eq!(matmul(&a, &b, 8), b);
    }

    #[test]
    fn effective_threads_resolves_within_the_pool_cap() {
        let cap = crate::pool::shared().threads();
        assert_eq!(effective_threads(0), cap);
        assert_eq!(effective_threads(1), 1);
        // Explicit requests are honoured up to the cap, never beyond.
        assert_eq!(effective_threads(4), 4.min(cap));
        assert_eq!(effective_threads(1024), cap);
    }

    #[test]
    fn band_budget_is_work_based() {
        // Tiny work stays sequential however many rows/threads exist …
        assert_eq!(band_count(8, 1000, MIN_BAND_WORK - 1), 1);
        // … big work fans out, capped by threads and rows.
        assert_eq!(band_count(8, 1000, 64 * MIN_BAND_WORK), 8);
        assert_eq!(band_count(8, 3, 64 * MIN_BAND_WORK), 3);
        // Mid-size work limits the fan-out so bands stay above threshold.
        assert_eq!(band_count(8, 1000, 2 * MIN_BAND_WORK), 2);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(matmul(&a, &b, 4).shape(), (0, 3));
        let s = CsrMatrix::from_triples(0, 5, &[]);
        assert_eq!(spmm(&s, &b, 4).shape(), (0, 3));
    }
}
