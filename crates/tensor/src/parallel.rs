//! Thread-parallel variants of the hot kernels.
//!
//! Output rows are partitioned across threads, and each output row is
//! computed by exactly one thread with the same inner-loop order as the
//! sequential kernel — so results are **bit-identical** to
//! [`crate::ops::matmul`] / [`CsrMatrix::spmm`], and all determinism
//! guarantees of the simulation carry over. The paper's workers are
//! multi-core machines (4- and 32-core Xeons); these kernels are what a
//! production deployment would run inside each worker. The speedup is of
//! course hardware-bound: on a single-core host (like some CI runners —
//! check the `spmm` criterion bench output) the scoped threads are pure
//! overhead and [`effective_threads`]`(0)` correctly resolves to 1.

use crate::dense::Matrix;
use crate::sparse::CsrMatrix;

/// Picks a worker count: `threads` if nonzero, else the machine's
/// parallelism (capped at 16 — beyond that the kernels here are memory
/// bound).
pub fn effective_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism().map(|n| n.get().min(16)).unwrap_or(1)
    }
}

/// Parallel `C = A · B` over row chunks of `A`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let threads = effective_threads(threads).max(1);
    let (m, k) = a.shape();
    let n = b.cols();
    if threads == 1 || m < 2 * threads {
        return crate::ops::matmul(a, b);
    }
    let mut c = Matrix::zeros(m, n);
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        // Split the output buffer into disjoint row bands, one per thread.
        let mut out = c.as_mut_slice();
        let mut row0 = 0usize;
        while row0 < m {
            let rows_here = chunk.min(m - row0);
            let (band, rest) = out.split_at_mut(rows_here * n);
            out = rest;
            let start = row0;
            scope.spawn(move || {
                for (local_r, crow) in band.chunks_exact_mut(n).enumerate() {
                    let arow = a.row(start + local_r);
                    for (p, &av) in arow.iter().enumerate().take(k) {
                        if av == 0.0 {
                            continue;
                        }
                        let brow = b.row(p);
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
            });
            row0 += rows_here;
        }
    });
    c
}

/// Parallel sparse × dense product over row chunks of the sparse matrix.
///
/// # Panics
/// Panics if `s.cols() != b.rows()`.
pub fn spmm(s: &CsrMatrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(s.cols(), b.rows(), "spmm shape mismatch");
    let threads = effective_threads(threads).max(1);
    let m = s.rows();
    let n = b.cols();
    if threads == 1 || m < 2 * threads {
        return s.spmm(b);
    }
    let mut c = Matrix::zeros(m, n);
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut out = c.as_mut_slice();
        let mut row0 = 0usize;
        while row0 < m {
            let rows_here = chunk.min(m - row0);
            let (band, rest) = out.split_at_mut(rows_here * n);
            out = rest;
            let start = row0;
            scope.spawn(move || {
                for (local_r, crow) in band.chunks_exact_mut(n).enumerate() {
                    for (col, v) in s.row_entries(start + local_r) {
                        let brow = b.row(col);
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += v * bv;
                        }
                    }
                }
            });
            row0 += rows_here;
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, ops};

    #[test]
    fn parallel_matmul_is_bit_identical() {
        let a = init::uniform(67, 33, -1.0, 1.0, 1);
        let b = init::uniform(33, 29, -1.0, 1.0, 2);
        let seq = ops::matmul(&a, &b);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(matmul(&a, &b, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_spmm_is_bit_identical() {
        let s = CsrMatrix::from_triples(
            50,
            40,
            &(0..200)
                .map(|i| ((i * 7) % 50, (i * 13) % 40, (i as f32 * 0.3).sin()))
                .collect::<Vec<_>>(),
        );
        let b = init::uniform(40, 8, -1.0, 1.0, 3);
        let seq = s.spmm(&b);
        for threads in [2usize, 4, 7] {
            assert_eq!(spmm(&s, &b, threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let a = Matrix::identity(3);
        let b = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);
        assert_eq!(matmul(&a, &b, 8), b);
    }

    #[test]
    fn effective_threads_resolves() {
        assert_eq!(effective_threads(4), 4);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(matmul(&a, &b, 4).shape(), (0, 3));
        let s = CsrMatrix::from_triples(0, 5, &[]);
        assert_eq!(spmm(&s, &b, 4).shape(), (0, 3));
    }
}
