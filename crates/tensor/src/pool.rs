//! Persistent worker pool for band-parallel kernels and worker fan-out.
//!
//! The original `parallel` kernels spawned fresh `std::thread::scope`
//! threads on **every** call — thousands of spawn/join cycles per training
//! epoch. This module replaces that with long-lived lanes, created once per
//! [`WorkerPool`] and fed tasks through a hand-rolled job queue.
//!
//! Determinism: the pool moves *where* a task runs, never *what* it
//! computes. Tasks are assigned to lanes by index (`task i → lane
//! i % threads`, the calling thread is lane 0), every task writes only the
//! disjoint output band it captured, and [`WorkerPool::run`] does not
//! return until every task has finished — so results are byte-identical to
//! running the same closures sequentially, whatever the lane count or OS
//! scheduling. The ordered-replay invariant of `ec-graph::exec` is
//! preserved for the same reason it held with scoped threads: all
//! order-sensitive effects happen on the calling thread after `run`
//! returns.
//!
//! Sizing: a pool never holds more lanes than [`physical_parallelism`],
//! sampled once per process — oversubscribing a host turns "parallel" into
//! time-slicing and roughly doubles self-timed wall clock (the exact
//! pathology the pre-pool BENCH_hotpath.json recorded on a 1-core host).
//! A 1-thread pool owns zero OS threads and runs everything inline on the
//! caller, so sequential configurations pay nothing.
//!
//! Nesting: the engine's worker fan-out owns one pool, while the kernels in
//! [`crate::parallel`] share the process-wide [`shared`] pool, so kernel
//! parallelism never multiplies with worker parallelism. Dispatching into a
//! pool **from one of its own lanes** runs the tasks inline on that lane
//! (tracked by a thread-local membership token) — re-entry can therefore
//! never deadlock on a full queue.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// A unit of work handed to [`WorkerPool::run`]: runs exactly once, may
/// borrow from the caller's stack frame (`run` outlives every task).
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// A lifetime-erased task as stored on a lane's queue.
type Job = Box<dyn FnOnce() + Send + 'static>;

type PanicPayload = Box<dyn Any + Send>;

thread_local! {
    /// Membership token of the pool this thread is a lane of (0 = not a
    /// pool lane). Used to run re-entrant dispatch inline.
    static POOL_MEMBERSHIP: Cell<usize> = const { Cell::new(0) };
}

/// Token generator; 0 is reserved for "not a pool lane".
static NEXT_TOKEN: AtomicUsize = AtomicUsize::new(1);

/// Host parallelism, sampled once per process and capped at 16 (the
/// kernels are memory-bound beyond that). Every pool and every
/// [`crate::parallel::effective_threads`] resolution agrees on this one
/// number, so kernel dispatch can never oversubscribe the pool.
pub fn physical_parallelism() -> usize {
    static PHYS: OnceLock<usize> = OnceLock::new();
    *PHYS.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16))
}

/// The process-wide kernel pool, sized to [`physical_parallelism`] and
/// alive for the process lifetime. All band-parallel kernels dispatch
/// here, from any thread — including lanes of *other* pools, which is safe
/// because kernel tasks are pure compute and never dispatch further.
pub fn shared() -> &'static WorkerPool {
    static SHARED: OnceLock<WorkerPool> = OnceLock::new();
    SHARED.get_or_init(|| WorkerPool::new(0))
}

/// Acquires a mutex, treating poison as ordinary data: every critical
/// section below is a few plain moves on plain-old-data, so a panic on
/// another thread cannot leave the state half-updated.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// One lane's FIFO job queue (mutex + condvar; no spinning).
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    /// Hands the job back if the queue is already closed (lane gone).
    fn enqueue(&self, job: Job) -> Result<(), Job> {
        let mut state = lock(&self.state);
        if state.closed {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn dequeue(&self) -> Option<Job> {
        let mut state = lock(&self.state);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn close(&self) {
        lock(&self.state).closed = true;
        self.ready.notify_all();
    }
}

struct LatchState {
    pending: usize,
    panic: Option<PanicPayload>,
}

/// Counts outstanding remote tasks of one `run` call; stores the first
/// panic payload so the caller can resume it after the batch completes.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

impl Latch {
    fn new(pending: usize) -> Self {
        Self { state: Mutex::new(LatchState { pending, panic: None }), done: Condvar::new() }
    }

    fn arrive(&self, panic: Option<PanicPayload>) {
        let mut state = lock(&self.state);
        state.pending -= 1;
        if let Some(payload) = panic {
            state.panic.get_or_insert(payload);
        }
        let finished = state.pending == 0;
        drop(state);
        if finished {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Option<PanicPayload> {
        let mut state = lock(&self.state);
        while state.pending > 0 {
            state = self.done.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        state.panic.take()
    }
}

/// A persistent band-task pool; see the module docs.
///
/// The calling thread is always lane 0 and executes its share of every
/// batch itself, so a `threads = t` pool owns `t - 1` OS threads and a
/// 1-thread pool is a plain sequential loop with zero overhead.
pub struct WorkerPool {
    lanes: Vec<Arc<JobQueue>>,
    handles: Vec<JoinHandle<()>>,
    token: usize,
}

impl WorkerPool {
    /// Creates a pool of `threads` lanes (0 = auto), capped at
    /// [`physical_parallelism`]. The cap is what makes `speedup_vs_seq`
    /// honest: requesting 8-way kernels on a 1-core host yields a pool
    /// that simply runs inline.
    pub fn new(threads: usize) -> Self {
        let phys = physical_parallelism();
        let want = if threads == 0 { phys } else { threads.min(phys) }.max(1);
        // ec-lint: sound(token only needs uniqueness for thread names; no other memory is ordered by it)
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let mut lanes = Vec::with_capacity(want - 1);
        let mut handles = Vec::with_capacity(want - 1);
        for lane in 1..want {
            let queue = Arc::new(JobQueue::new());
            let worker_queue = Arc::clone(&queue);
            let spawned = std::thread::Builder::new()
                .name(format!("ec-pool-{token}-{lane}"))
                .spawn(move || lane_main(worker_queue, token));
            match spawned {
                Ok(handle) => {
                    lanes.push(queue);
                    handles.push(handle);
                }
                // Degraded host (thread limit): run with fewer lanes; the
                // caller picks up the slack via the enqueue fallback.
                Err(_) => queue.close(),
            }
        }
        Self { lanes, handles, token }
    }

    /// Lane count including the calling thread.
    pub fn threads(&self) -> usize {
        self.lanes.len() + 1
    }

    /// Runs every task to completion: task `i` on lane `i % threads`, the
    /// caller working through lane 0's share (in task order) while the
    /// other lanes drain theirs. Returns after **all** tasks finished; if
    /// any panicked, the first payload is resumed on the caller — after
    /// the full batch completed, so output buffers are never left with a
    /// band still being written. Lanes survive task panics.
    pub fn run<'scope>(&self, tasks: Vec<Task<'scope>>) {
        let member = POOL_MEMBERSHIP.with(|token| token.get()) == self.token;
        if self.lanes.is_empty() || tasks.len() <= 1 || member {
            // Inline: sequential pools, trivial batches, and re-entrant
            // dispatch from one of this pool's own lanes (which would
            // otherwise wait on a queue only it can drain). Same panic
            // contract as the pooled path: every task runs, the first
            // panic is re-raised afterwards.
            let mut first: Option<PanicPayload> = None;
            for task in tasks {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                    first.get_or_insert(payload);
                }
            }
            if let Some(payload) = first {
                resume_unwind(payload);
            }
            return;
        }
        let width = self.threads();
        let total = tasks.len();
        let remote = total - total.div_ceil(width);
        let latch = Arc::new(Latch::new(remote));
        let mut local: Vec<Task<'scope>> = Vec::with_capacity(total.div_ceil(width));
        for (index, task) in tasks.into_iter().enumerate() {
            let lane = index % width;
            if lane == 0 {
                local.push(task);
                continue;
            }
            let task_latch = Arc::clone(&latch);
            let job: Task<'scope> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                task_latch.arrive(outcome.err());
            });
            // SAFETY: the latch counts exactly the jobs built here, and
            // `run` blocks on `latch.wait()` below before returning (even
            // when a local task panics — the panic is re-raised only after
            // the wait). Every borrow captured by the job therefore
            // outlives its execution, which is all the 'static bound is
            // standing in for.
            // ec-lint: sound(lifetime-only transmute; latch.wait() below outlives every captured borrow)
            let job: Job = unsafe { std::mem::transmute::<Task<'scope>, Job>(job) };
            if let Err(job) = self.lanes[lane - 1].enqueue(job) {
                // Lane unavailable (spawn failed at construction): do its
                // work here. The job still arrives at the latch itself.
                job();
            }
        }
        let mut local_panic: Option<PanicPayload> = None;
        for task in local {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                local_panic.get_or_insert(payload);
            }
        }
        let remote_panic = latch.wait();
        if let Some(payload) = local_panic.or(remote_panic) {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for queue in &self.lanes {
            queue.close();
        }
        for handle in self.handles.drain(..) {
            // Lane bodies never unwind (every job catches), so join errors
            // are not reachable; ignore rather than panic in drop.
            let _ = handle.join();
        }
    }
}

fn lane_main(queue: Arc<JobQueue>, token: usize) {
    POOL_MEMBERSHIP.with(|membership| membership.set(token));
    while let Some(job) = queue.dequeue() {
        // `run` already wraps every task in catch_unwind before it reaches
        // a queue, but the lane re-catches defensively: a panicking job
        // must never unwind the lane thread, or `Drop`'s close-then-join
        // shutdown would see a dead lane and `join()` would return the
        // panic instead of Ok — the deadlock-freedom argument in the
        // interleave tests assumes lanes always reach the closed-and-
        // drained exit of `dequeue`.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn band_tasks(out: &mut [u32], width: usize) -> Vec<Task<'_>> {
        let mut tasks: Vec<Task<'_>> = Vec::new();
        let mut rest = out;
        let mut band = 0u32;
        while !rest.is_empty() {
            let here = width.min(rest.len());
            let (slice, tail) = rest.split_at_mut(here);
            rest = tail;
            let marker = band;
            tasks.push(Box::new(move || {
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = marker * 100 + i as u32;
                }
            }));
            band += 1;
        }
        tasks
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..23)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 23);
    }

    #[test]
    fn disjoint_bands_assemble_deterministically() {
        let expected: Vec<u32> = {
            let mut out = vec![0u32; 17];
            for task in band_tasks(&mut out, 3) {
                task();
            }
            out
        };
        for threads in [1usize, 2, 4, 16] {
            let pool = WorkerPool::new(threads);
            let mut out = vec![0u32; 17];
            pool.run(band_tasks(&mut out, 3));
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn pool_caps_at_physical_parallelism() {
        assert!(WorkerPool::new(0).threads() <= physical_parallelism());
        assert!(WorkerPool::new(64).threads() <= physical_parallelism());
        assert_eq!(WorkerPool::new(1).threads(), 1);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let done = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..8)
            .map(|i| {
                let done = &done;
                Box::new(move || {
                    if i == 5 {
                        panic!("band {i} exploded");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }) as Task<'_>
            })
            .collect();
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        assert!(caught.is_err(), "the band panic must propagate to the caller");
        assert_eq!(done.load(Ordering::SeqCst), 7, "other bands still complete");
        // The pool is intact: lanes caught the unwind and keep serving.
        let after = AtomicUsize::new(0);
        pool.run(
            (0..8)
                .map(|_| {
                    Box::new(|| {
                        after.fetch_add(1, Ordering::SeqCst);
                    }) as Task<'_>
                })
                .collect(),
        );
        assert_eq!(after.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn reentrant_dispatch_runs_inline() {
        // A task that dispatches into its own pool must not deadlock, even
        // on a 2-thread pool whose single lane is the one re-entering.
        let pool = WorkerPool::new(2);
        let ran = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..2)
            .map(|_| {
                let pool = &pool;
                let ran = &ran;
                Box::new(move || {
                    let inner: Vec<Task<'_>> = (0..3)
                        .map(|_| {
                            Box::new(|| {
                                ran.fetch_add(1, Ordering::SeqCst);
                            }) as Task<'_>
                        })
                        .collect();
                    pool.run(inner);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn cross_pool_nesting_completes() {
        // Engine-pool lanes dispatching kernel bands into the shared pool
        // is the production topology; it must compose without deadlock.
        let outer = WorkerPool::new(2);
        let ran = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..4)
            .map(|_| {
                let ran = &ran;
                Box::new(move || {
                    let inner: Vec<Task<'_>> = (0..4)
                        .map(|_| {
                            Box::new(|| {
                                ran.fetch_add(1, Ordering::SeqCst);
                            }) as Task<'_>
                        })
                        .collect();
                    shared().run(inner);
                }) as Task<'_>
            })
            .collect();
        outer.run(tasks);
        assert_eq!(ran.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        WorkerPool::new(3).run(Vec::new());
    }

    #[test]
    fn close_while_jobs_panic_drains_and_joins() {
        // Shutdown is `close()` then `join()` (see `Drop`); that pair must
        // not deadlock or propagate a panic even when raw jobs — enqueued
        // without `run`'s catch_unwind wrapper — blow up while the close
        // races the drain. The lane's own defensive catch is what makes
        // `join()` return Ok here.
        let queue = Arc::new(JobQueue::new());
        let lane_queue = Arc::clone(&queue);
        let handle = std::thread::spawn(move || lane_main(lane_queue, usize::MAX));
        for i in 0..32u32 {
            let job: Job = Box::new(move || {
                if i % 3 == 0 {
                    panic!("job {i} exploded mid-shutdown");
                }
            });
            if queue.enqueue(job).is_err() {
                break; // closed below: the queue refuses new work
            }
            if i == 16 {
                queue.close();
            }
        }
        queue.close(); // idempotent; covers the short-circuited loop too
        assert!(
            handle.join().is_ok(),
            "lane must exit cleanly after close, even with panicking jobs in flight"
        );
    }
}
