//! # `ec-tensor` — linear-algebra substrate for the EC-Graph reproduction
//!
//! EC-Graph (ICDE 2022) uses PyTorch as its computation backend. This crate
//! is our from-scratch replacement: a small, deterministic, dependency-light
//! set of `f32` kernels sufficient for full-batch GNN training:
//!
//! * [`Matrix`] — a row-major dense matrix with the elementwise,
//!   matrix-multiply and row-gather operations the paper's Eqs. 2–6 need;
//! * [`CsrMatrix`] — a compressed-sparse-row matrix used for the normalized
//!   adjacency `Â = D^{-1/2}(A + I)D^{-1/2}` and the SpMM kernels
//!   (`Â · H` and `Âᵀ · G`) that dominate GNN compute;
//! * [`activations`] — ReLU / softmax / log-softmax and their derivatives;
//! * [`init`] — Xavier/Glorot and Kaiming initializers (seeded, reproducible);
//! * [`stats`] — norms and summary statistics used by the error-compensation
//!   machinery (L1 selector distances, L2 residual norms for Theorem 1).
//!
//! Kernels are deterministic: the distributed engine built on top simulates
//! a cluster worker-by-worker, and determinism is what makes every
//! experiment in `EXPERIMENTS.md` exactly reproducible. The [`parallel`]
//! module offers thread-parallel variants of the hot kernels whose output
//! is bit-identical to the sequential ones (rows are partitioned across
//! the lanes of a persistent [`pool::WorkerPool`], each band computed in
//! the same order by the same blocked kernel body).

pub mod activations;
pub mod dense;
pub mod init;
pub mod ops;
pub mod parallel;
pub mod pool;
pub mod sparse;
pub mod stats;

pub use dense::Matrix;
pub use sparse::CsrMatrix;
