//! Norms and summary statistics.
//!
//! The compensation machinery relies on these: the ReqEC-FP Selector ranks
//! candidate approximations by row-wise L1 distance (paper Eq. 10), the
//! Bit-Tuner thresholds a proportion, and the Theorem-1 validation tracks
//! squared L2 norms of the gradient residuals.

use crate::dense::Matrix;

/// Sum of absolute entry values (entrywise L1 norm).
pub fn l1_norm(m: &Matrix) -> f32 {
    m.as_slice().iter().map(|x| x.abs()).sum()
}

/// Frobenius norm (entrywise L2 norm).
pub fn l2_norm(m: &Matrix) -> f32 {
    m.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Squared Frobenius norm, avoiding the square root.
pub fn l2_norm_sq(m: &Matrix) -> f32 {
    m.as_slice().iter().map(|x| x * x).sum()
}

/// Row-wise L1 distance between two equally-shaped matrices:
/// `out[v] = Σ_i |a[v,i] - b[v,i]|` (paper Eq. 10).
pub fn rowwise_l1_distance(a: &Matrix, b: &Matrix) -> Vec<f32> {
    assert_eq!(a.shape(), b.shape(), "rowwise_l1_distance shape mismatch");
    a.rows_iter()
        .zip(b.rows_iter())
        .map(|(ra, rb)| ra.iter().zip(rb).map(|(x, y)| (x - y).abs()).sum())
        .collect()
}

/// Minimum and maximum entry. Returns `(0.0, 0.0)` for an empty matrix.
pub fn min_max(m: &Matrix) -> (f32, f32) {
    if m.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in m.as_slice() {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    (lo, hi)
}

/// Mean entry value. Returns `0.0` for an empty matrix.
pub fn mean(m: &Matrix) -> f32 {
    if m.is_empty() {
        0.0
    } else {
        m.as_slice().iter().sum::<f32>() / m.len() as f32
    }
}

/// Maximum absolute entry.
pub fn max_abs(m: &Matrix) -> f32 {
    m.as_slice().iter().fold(0.0f32, |acc, &x| acc.max(x.abs()))
}

/// Index of the minimum value of a slice (first occurrence).
///
/// Used by the Selector: `argmin(S)` over the three candidate distances.
pub fn argmin(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v < values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_simple_matrix() {
        let m = Matrix::from_vec(1, 3, vec![3., -4., 0.]);
        assert_eq!(l1_norm(&m), 7.0);
        assert_eq!(l2_norm(&m), 5.0);
        assert_eq!(l2_norm_sq(&m), 25.0);
    }

    #[test]
    fn rowwise_l1_distance_per_row() {
        let a = Matrix::from_rows(&[vec![1., 2.], vec![0., 0.]]);
        let b = Matrix::from_rows(&[vec![1., 0.], vec![3., -1.]]);
        assert_eq!(rowwise_l1_distance(&a, &b), vec![2.0, 4.0]);
    }

    #[test]
    fn min_max_and_mean() {
        let m = Matrix::from_vec(1, 4, vec![-1., 2., 0.5, 2.5]);
        assert_eq!(min_max(&m), (-1.0, 2.5));
        assert_eq!(mean(&m), 1.0);
    }

    #[test]
    fn min_max_of_empty_matrix_is_zero() {
        assert_eq!(min_max(&Matrix::zeros(0, 0)), (0.0, 0.0));
    }

    #[test]
    fn max_abs_ignores_sign() {
        let m = Matrix::from_vec(1, 3, vec![-9., 2., 5.]);
        assert_eq!(max_abs(&m), 9.0);
    }

    #[test]
    fn argmin_first_occurrence() {
        assert_eq!(argmin(&[3., 1., 1., 2.]), 1);
        assert_eq!(argmin(&[0.5]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmin_rejects_empty() {
        let _ = argmin(&[]);
    }
}
