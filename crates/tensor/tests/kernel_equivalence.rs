//! Bit-identity of the blocked/SIMD kernels against the naive reference.
//!
//! The engine's determinism guarantees (byte-identical RunResult JSON for
//! any thread count — `tests/determinism_suite.rs`) rest on the claim that
//! cache blocking, panel packing, and band-parallel dispatch never change
//! a single accumulation: per output element the terms are added in the
//! same order, with the same `== 0.0` skips. These proptests check that
//! claim on ragged shapes — empty dimensions, shapes below/straddling/
//! beyond one tile, planted zeros and denormal-ish magnitudes — for both
//! the sequential entry points and the pool-dispatched `parallel` ones.
//!
//! `assert_eq!` on `Matrix` compares `f32` bit patterns via `==`; NaN
//! inputs are excluded (NaN != NaN) but ±0.0 and infinities are fair game.

use ec_tensor::ops::{self, reference};
use ec_tensor::{parallel, CsrMatrix, Matrix};
use proptest::prelude::*;

/// A matrix with interesting structure: mixed magnitudes, planted exact
/// zeros (they drive the skip paths), negative zeros.
fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(2) | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let draw = (state >> 33) as u32;
        match draw % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => (draw as f32 / u32::MAX as f32) * 1e-4,
            3 => -(draw as f32 / u32::MAX as f32) * 1e4,
            _ => (draw as f32 / u32::MAX as f32) - 0.5,
        }
    })
}

fn csr(rows: usize, cols: usize, nnz: usize, seed: u64) -> CsrMatrix {
    let mut state = seed.wrapping_mul(2) | 1;
    let mut triples = Vec::with_capacity(nnz);
    if rows > 0 && cols > 0 {
        for _ in 0..nnz {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 33) as usize % rows;
            let c = (state >> 12) as usize % cols;
            triples.push((r, c, ((state as f32) * 1e-9).sin()));
        }
    }
    CsrMatrix::from_triples(rows, cols, &triples)
}

/// Dimension strategy: degenerate (0, 1), sub-tile, tile-straddling
/// (around ops::LANES = 8 and ops::TILE_J = 64), and beyond-one-tile
/// sizes, all non-multiples of the tile widths. The 200 arm makes
/// `k·n > ops::TILE_BUDGET` reachable, so some cases run the genuinely
/// tiled matmul path instead of the small-B full-width collapse.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        2usize..8,
        8usize..20,
        Just(63usize),
        64usize..80,
        Just(129usize),
        Just(200usize),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_is_bit_identical(
        m in dim(), k in dim(), n in dim(), seed in 1u64..1_000_000,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed ^ 0xABCD);
        let want = reference::matmul(&a, &b);
        prop_assert_eq!(&ops::matmul(&a, &b), &want);
        for threads in [2usize, 3, 5] {
            prop_assert_eq!(&parallel::matmul(&a, &b, threads), &want);
        }
    }

    #[test]
    fn blocked_matmul_at_b_is_bit_identical(
        r in dim(), m in dim(), n in dim(), seed in 1u64..1_000_000,
    ) {
        let a = matrix(r, m, seed);
        let b = matrix(r, n, seed ^ 0x1234);
        let want = reference::matmul_at_b(&a, &b);
        prop_assert_eq!(&ops::matmul_at_b(&a, &b), &want);
        for threads in [2usize, 3, 5] {
            prop_assert_eq!(&parallel::matmul_at_b(&a, &b, threads), &want);
        }
    }

    #[test]
    fn packed_matmul_a_bt_is_bit_identical(
        m in dim(), n in dim(), k in dim(), seed in 1u64..1_000_000,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(n, k, seed ^ 0x5555);
        let want = reference::matmul_a_bt(&a, &b);
        prop_assert_eq!(&ops::matmul_a_bt(&a, &b), &want);
        for threads in [2usize, 3, 5] {
            prop_assert_eq!(&parallel::matmul_a_bt(&a, &b, threads), &want);
        }
    }

    #[test]
    fn chunked_spmm_is_bit_identical(
        m in dim(), k in dim(), n in dim(), nnz in 0usize..300, seed in 1u64..1_000_000,
    ) {
        let s = csr(m, k, nnz, seed);
        let b = matrix(k, n, seed ^ 0x9999);
        let want = reference::spmm(&s, &b);
        prop_assert_eq!(&s.spmm(&b), &want);
        for threads in [2usize, 3, 5] {
            prop_assert_eq!(&parallel::spmm(&s, &b, threads), &want);
        }
    }

    #[test]
    fn blocked_transpose_is_a_permutation(
        m in dim(), n in dim(), seed in 1u64..1_000_000,
    ) {
        let a = matrix(m, n, seed);
        let t = a.transpose();
        prop_assert_eq!(t.shape(), (n, m));
        for r in 0..m {
            for c in 0..n {
                prop_assert_eq!(a.get(r, c).to_bits(), t.get(c, r).to_bits());
            }
        }
    }
}

/// Infinities and huge values must flow through the skip/accumulate logic
/// exactly like the reference (order changes would turn `inf + -inf` NaNs
/// on or off). `inf * 0.0` makes the outputs contain NaN, so this compares
/// raw bit patterns rather than float equality.
#[test]
fn non_finite_values_propagate_identically() {
    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }
    let mut a = matrix(19, 13, 77);
    a.set(0, 0, f32::INFINITY);
    a.set(5, 7, f32::NEG_INFINITY);
    a.set(18, 12, f32::MAX);
    let b = matrix(13, 9, 78);
    assert_eq!(bits(&ops::matmul(&a, &b)), bits(&reference::matmul(&a, &b)));
    let bt = matrix(9, 13, 79);
    assert_eq!(bits(&ops::matmul_a_bt(&a, &bt)), bits(&reference::matmul_a_bt(&a, &bt)));
    let l = matrix(19, 6, 80);
    assert_eq!(bits(&ops::matmul_at_b(&a, &l)), bits(&reference::matmul_at_b(&a, &l)));
}
