//! Exhaustive interleaving tests for the pool's synchronization design —
//! a hand-rolled loom substitute (the offline build cannot vendor loom).
//!
//! The `JobQueue` and `Latch` in `src/pool.rs` are modeled as transition
//! systems: every mutex critical section is one atomic step, and the
//! condvar is modeled precisely — `notify_one` wakes one *currently
//! waiting* thread (the scheduler branches over which), `notify_all`
//! wakes every waiter, and a notify with no waiter is lost, exactly the
//! platform contract. Crucially, the unlock-then-notify split in the real
//! code (`drop(state); self.ready.notify_one()`) is two model steps, so
//! the scheduler explores the window where another thread runs between
//! the unlock and the wakeup — the window where lost-wakeup bugs live.
//!
//! A depth-first search over every scheduler choice then checks, for
//! every reachable interleaving:
//!
//! * no deadlock: whenever some thread is not finished, some thread can
//!   step (a waiter with no pending wakeup is *not* runnable — spurious
//!   wakeups are legal but may not be load-bearing);
//! * every enqueued job executes exactly once (on a lane, or inline when
//!   the enqueue lost the race with `close`);
//! * every lane terminates after `close`, draining the queue first;
//! * the latch waiter returns only once every arrival happened, and it
//!   observes a panic payload iff some arriver panicked (the first
//!   payload to win the lock, matching `get_or_insert`);
//! * `close` racing panicking jobs still shuts down — the
//!   close-while-panicking interleaving of the WorkerPool `Drop` path.
//!   Job panics are caught on the lane (`lane_main`'s catch_unwind), so
//!   a panicking job takes the same queue transitions as a clean one;
//!   the model marks jobs panicking to document exactly that.
//!
//! Default bounds keep `cargo test` fast; building with
//! `RUSTFLAGS="--cfg ec_loom"` (CI's interleaving job) widens them.

use std::collections::HashSet;
use std::hash::Hash;

// ---------------------------------------------------------------------
// JobQueue model: producer (enqueue×N then done), an optional closer
// thread, and L lane threads running the dequeue loop.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Lane {
    /// Will acquire the queue lock and act on what it finds.
    Running,
    /// Parked in `Condvar::wait`; runnable only once woken.
    Waiting,
    /// Returned from the dequeue loop (closed and drained).
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct QueueModel {
    /// Jobs sitting in the queue (fungible: only the count matters to the
    /// synchronization properties).
    queued: u8,
    closed: bool,
    /// Jobs that have run, on a lane or inline after a closed enqueue.
    executed: u8,
    /// Producer program counter: job i takes steps 2i (lock: push or
    /// inline-run) and 2i+1 (notify_one, after the unlock).
    producer_pc: u8,
    /// Closer program counter: 0 = will set closed, 1 = will notify_all,
    /// 2 = done. Starts at 2 when the scenario has no separate closer
    /// (the producer closes after its last enqueue instead).
    closer_pc: u8,
    lanes: Vec<Lane>,
}

/// Scenario parameters for one exhaustive queue exploration.
struct QueueScenario {
    jobs: u8,
    lanes: usize,
    /// Separate closer thread racing the producer (the Drop-while-running
    /// shape). Without it the producer closes after its final enqueue.
    racing_closer: bool,
}

impl QueueModel {
    fn new(s: &QueueScenario) -> Self {
        QueueModel {
            queued: 0,
            closed: false,
            executed: 0,
            producer_pc: 0,
            closer_pc: if s.racing_closer { 0 } else { 2 },
            lanes: vec![Lane::Running; s.lanes],
        }
    }

    fn done(&self, s: &QueueScenario) -> bool {
        self.producer_pc >= 2 * s.jobs
            && self.closer_pc >= 2
            && self.lanes.iter().all(|l| *l == Lane::Done)
    }

    /// Every state reachable in one atomic step, over all scheduler
    /// choices (which thread runs, and which waiter a notify_one wakes).
    fn successors(&self, s: &QueueScenario) -> Vec<QueueModel> {
        let mut out = Vec::new();

        // Producer step.
        if self.producer_pc < 2 * s.jobs {
            let mut n = self.clone();
            if n.producer_pc.is_multiple_of(2) {
                // Critical section: push, or run inline if close won.
                if n.closed {
                    n.executed += 1;
                    // The notify sub-step is skipped on the Err path.
                    n.producer_pc += 2;
                } else {
                    n.queued += 1;
                    n.producer_pc += 1;
                }
                out.push(n);
            } else {
                // notify_one after the unlock: branch over which waiter
                // wakes; with no waiter the notification is lost.
                n.producer_pc += 1;
                push_notify_one(&n, &mut out);
            }
        } else if !s.racing_closer && !self.closed {
            // Producer-driven shutdown: close() is its own two steps.
            let mut n = self.clone();
            n.closed = true;
            out.push(n);
        } else if !s.racing_closer && self.closed && self.closer_pc < 2 {
            unreachable!("closer_pc starts at 2 without a racing closer");
        }
        if !s.racing_closer
            && self.producer_pc >= 2 * s.jobs
            && self.closed
            && self.lanes.contains(&Lane::Waiting)
            && self.closer_pc == 2
        {
            // notify_all half of the producer's close: modeled as an
            // always-available wakeup once closed (notify_all wakes every
            // waiter; waking them one scheduler step at a time reaches the
            // same states).
            for (i, l) in self.lanes.iter().enumerate() {
                if *l == Lane::Waiting {
                    let mut n = self.clone();
                    n.lanes[i] = Lane::Running;
                    out.push(n);
                }
            }
        }

        // Racing closer steps.
        if s.racing_closer && self.closer_pc == 0 {
            let mut n = self.clone();
            n.closed = true;
            n.closer_pc = 1;
            out.push(n);
        }
        if s.racing_closer && self.closer_pc == 1 {
            // notify_all: wake every waiter in one step.
            let mut n = self.clone();
            for l in &mut n.lanes {
                if *l == Lane::Waiting {
                    *l = Lane::Running;
                }
            }
            n.closer_pc = 2;
            out.push(n);
        }

        // Lane steps: one dequeue-loop iteration per critical section.
        for (i, l) in self.lanes.iter().enumerate() {
            if *l != Lane::Running {
                continue;
            }
            let mut n = self.clone();
            if n.queued > 0 {
                // Pop and execute. Execution happens outside the lock and
                // cannot touch queue state (lane_main catches panics), so
                // pop+run collapse into one step without losing
                // interleavings that matter to the queue.
                n.queued -= 1;
                n.executed += 1;
            } else if n.closed {
                n.lanes[i] = Lane::Done;
            } else {
                n.lanes[i] = Lane::Waiting;
            }
            out.push(n);
        }
        out
    }
}

/// Branches over which single waiter a `notify_one` wakes; lost if none.
fn push_notify_one(base: &QueueModel, out: &mut Vec<QueueModel>) {
    let mut any = false;
    for (i, l) in base.lanes.iter().enumerate() {
        if *l == Lane::Waiting {
            any = true;
            let mut n = base.clone();
            n.lanes[i] = Lane::Running;
            out.push(n);
        }
    }
    if !any {
        out.push(base.clone());
    }
}

/// Exhaustive DFS over every interleaving of the scenario. Panics with the
/// offending state on deadlock or on a terminal state that violated the
/// executed-exactly-once contract.
fn explore_queue(s: &QueueScenario) -> usize {
    let mut visited: HashSet<QueueModel> = HashSet::new();
    let mut stack = vec![QueueModel::new(s)];
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        if state.done(s) {
            assert_eq!(
                state.executed, s.jobs,
                "terminal state ran {} of {} jobs: {state:?}",
                state.executed, s.jobs
            );
            assert_eq!(state.queued, 0, "lanes exited with work still queued: {state:?}");
            continue;
        }
        let next = state.successors(s);
        assert!(
            !next.is_empty(),
            "deadlock: no thread can step and the system is not done: {state:?}"
        );
        stack.extend(next);
    }
    visited.len()
}

// ---------------------------------------------------------------------
// Latch model: K arrivers (some panicking) and one waiter.
// ---------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct LatchModel {
    pending: u8,
    /// Arriver id whose payload `get_or_insert` kept, if any.
    panic_slot: Option<u8>,
    /// Per-arriver pc: 0 = will decrement/record, 1 = will notify_all if
    /// it saw pending hit zero, 2 = done. Step 1 is skipped (pc jumps to
    /// 2) when the arriver did not finish the batch.
    arrivers: Vec<u8>,
    /// Waiter state reusing the lane vocabulary.
    waiter: Lane,
    /// What `wait()` returned, once it did.
    observed: Option<Option<u8>>,
}

struct LatchScenario {
    /// Bitmask of arrivers that carry a panic payload.
    panicking: u32,
    arrivers: u8,
}

impl LatchModel {
    fn new(s: &LatchScenario) -> Self {
        LatchModel {
            pending: s.arrivers,
            panic_slot: None,
            arrivers: vec![0; s.arrivers as usize],
            waiter: Lane::Running,
            observed: None,
        }
    }

    fn done(&self) -> bool {
        self.arrivers.iter().all(|pc| *pc == 2) && self.waiter == Lane::Done
    }

    fn successors(&self, s: &LatchScenario) -> Vec<LatchModel> {
        let mut out = Vec::new();
        for (i, pc) in self.arrivers.iter().enumerate() {
            match pc {
                0 => {
                    // arrive(): decrement, maybe record the panic, note
                    // whether this arrival finished the batch. One lock.
                    let mut n = self.clone();
                    n.pending -= 1;
                    if s.panicking & (1 << i) != 0 && n.panic_slot.is_none() {
                        n.panic_slot = Some(i as u8);
                    }
                    n.arrivers[i] = if n.pending == 0 { 1 } else { 2 };
                    out.push(n);
                }
                1 => {
                    // notify_all after the unlock.
                    let mut n = self.clone();
                    if n.waiter == Lane::Waiting {
                        n.waiter = Lane::Running;
                    }
                    n.arrivers[i] = 2;
                    out.push(n);
                }
                _ => {}
            }
        }
        if self.waiter == Lane::Running {
            // wait(): check the predicate under the lock.
            let mut n = self.clone();
            if n.pending == 0 {
                n.observed = Some(n.panic_slot);
                n.waiter = Lane::Done;
            } else {
                n.waiter = Lane::Waiting;
            }
            out.push(n);
        }
        out
    }
}

fn explore_latch(s: &LatchScenario) -> usize {
    let mut visited: HashSet<LatchModel> = HashSet::new();
    let mut stack = vec![LatchModel::new(s)];
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        if state.done() {
            let observed = state.observed.expect("done waiter recorded its return");
            assert_eq!(
                observed.is_some(),
                s.panicking != 0,
                "waiter must see a payload iff some arriver panicked: {state:?}"
            );
            if let Some(id) = observed {
                assert!(
                    s.panicking & (1 << id) != 0,
                    "kept payload must come from a panicking arriver: {state:?}"
                );
            }
            continue;
        }
        let next = state.successors(s);
        assert!(!next.is_empty(), "deadlock: arrivers/waiter stuck before completion: {state:?}");
        stack.extend(next);
    }
    visited.len()
}

// ---------------------------------------------------------------------
// Always-on bounds: small enough for every `cargo test` run.
// ---------------------------------------------------------------------

#[test]
fn queue_producer_close_never_deadlocks() {
    let states = explore_queue(&QueueScenario { jobs: 3, lanes: 2, racing_closer: false });
    assert!(states > 50, "exhaustive search visited only {states} states — model collapsed?");
}

#[test]
fn queue_close_racing_enqueues_never_deadlocks() {
    // The close-while-panicking Drop shape: jobs (panicking or not — the
    // lane catches, so the queue cannot tell) race a concurrent close.
    let states = explore_queue(&QueueScenario { jobs: 3, lanes: 2, racing_closer: true });
    assert!(states > 50, "exhaustive search visited only {states} states — model collapsed?");
}

#[test]
fn latch_countdown_wakes_the_waiter_exactly_when_drained() {
    for panicking in 0..(1u32 << 3) {
        explore_latch(&LatchScenario { panicking, arrivers: 3 });
    }
}

// ---------------------------------------------------------------------
// Deep bounds: RUSTFLAGS="--cfg ec_loom" (CI's interleaving job).
// ---------------------------------------------------------------------

#[cfg(ec_loom)]
#[test]
fn deep_queue_producer_close() {
    explore_queue(&QueueScenario { jobs: 5, lanes: 3, racing_closer: false });
}

#[cfg(ec_loom)]
#[test]
fn deep_queue_racing_closer() {
    explore_queue(&QueueScenario { jobs: 5, lanes: 3, racing_closer: true });
}

#[cfg(ec_loom)]
#[test]
fn deep_latch_countdown() {
    for panicking in 0..(1u32 << 5) {
        explore_latch(&LatchScenario { panicking, arrivers: 5 });
    }
}
