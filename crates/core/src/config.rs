//! Training configuration for the distributed engine.

use ec_comm::ps::AdamParams;
use ec_comm::NetworkModel;
use ec_faults::FaultPlan;
use serde::{Deserialize, Serialize};

/// Which GNN model the distributed engine trains.
///
/// The paper's claim that "other GNN models … can be integrated into
/// EC-Graph straightforwardly" holds because they exchange the same two
/// message types (neighbour embeddings in FP, embedding gradients in BP);
/// [`ModelKind::Sage`] demonstrates it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Graph convolutional network (the paper's evaluation model):
    /// `H^l = σ(Â (H^{l-1} W) + b)`.
    Gcn,
    /// GraphSAGE with the GCN-normalized aggregator and a separate root
    /// transform: `H^l = σ(Â (H^{l-1} W_n) + H^{l-1} W_s + b)`.
    Sage,
}

/// Forward-pass treatment of remote embedding messages.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FpMode {
    /// Uncompressed `f32` embeddings (the paper's *Non-cp*).
    Exact,
    /// B-bit bucket quantization without compensation (*Cp-fp-B*).
    Compressed {
        /// Quantization bit width.
        bits: u8,
    },
    /// Requesting-end error compensation (*ReqEC-FP-B*), Section IV-B.
    ReqEc {
        /// Initial quantization bit width.
        bits: u8,
        /// Trend-group length `T_tr` (the paper uses 10).
        t_tr: usize,
        /// Enables the adaptive Bit-Tuner (*ReqEC-adapt*).
        adaptive: bool,
    },
    /// DistGNN-style delayed partial aggregation: each epoch only `1/r` of
    /// the cached remote embeddings are refreshed (uncompressed); the rest
    /// stay stale.
    Delayed {
        /// Refresh period `r` (the paper sets `r = 5` for DistGNN).
        r: usize,
    },
}

/// Backward-pass treatment of remote embedding-gradient messages.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BpMode {
    /// Uncompressed `f32` gradients.
    Exact,
    /// B-bit quantization without compensation (*Cp-bp-B*).
    Compressed {
        /// Quantization bit width.
        bits: u8,
    },
    /// Responding-end error compensation (*ResEC-BP-B*), Section IV-C.
    ResEc {
        /// Quantization bit width.
        bits: u8,
    },
    /// Top-k sparsification with error feedback — the related-work
    /// comparator ("Sparsified SGD with Memory", the paper's [32]).
    TopkEc {
        /// Fraction of gradient coordinates kept per message.
        ratio: f32,
    },
}

/// How the engine reacts when a forward-pass embedding fetch fails
/// (dropped or corrupted under fault injection).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResiliencePolicy {
    /// Keep retrying until the message arrives; every failed attempt is
    /// charged to the simulated clock (the conventional baseline).
    #[default]
    RetryOnly,
    /// After `max_attempts` failures, substitute the ReqEC-FP predicted
    /// candidate `Ĥ_pdt = H_base + M_cr · k` for the missing message — zero
    /// payload, zero further waiting. Falls back to retrying for traffic
    /// that has no trend state (exact modes, trend boundaries, gradients).
    EcDegrade,
}

/// Resilience knobs for training under an active [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Reaction to failed forward-pass fetches.
    pub policy: ResiliencePolicy,
    /// Transmission attempts before the policy's fallback engages.
    pub max_attempts: u32,
    /// Snapshot the full engine state every this many epochs (crash
    /// recovery restarts from the latest snapshot). `0` disables periodic
    /// checkpoints; a crash then replays from epoch 0.
    pub checkpoint_every: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self { policy: ResiliencePolicy::RetryOnly, max_attempts: 3, checkpoint_every: 0 }
    }
}

/// Intra-process parallelism of the simulated cluster.
///
/// Both level counts are *real-machine* knobs with zero effect on any
/// simulated quantity: worker compute blocks are independent between
/// superstep barriers, and the kernels in [`ec_tensor::parallel`] are
/// bit-identical to their sequential counterparts, so every run report is
/// byte-identical whatever the thread counts (enforced by
/// `tests/determinism_suite.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeConfig {
    /// Threads running worker compute blocks concurrently inside each
    /// superstep: `0` = auto (machine parallelism, capped at the worker
    /// count), `1` = sequential (the historical behavior).
    pub worker_threads: usize,
    /// Threads inside each dense/sparse kernel invocation: `0` = auto
    /// (machine parallelism divided by the resolved worker threads), `1` =
    /// sequential.
    pub kernel_threads: usize,
}

impl ComputeConfig {
    /// Fully sequential execution — today's single-threaded semantics,
    /// byte-identical to every other setting but with deterministic-ish
    /// scheduling that is easiest to profile.
    pub fn sequential() -> Self {
        Self { worker_threads: 1, kernel_threads: 1 }
    }

    /// Resolves `(worker_threads, kernel_threads)` for `num_workers`
    /// simulated workers: auto worker threads cap at the worker count, auto
    /// kernel threads divide the remaining machine parallelism, and *both*
    /// levels — explicit or auto — cap at the physical parallelism the
    /// shared [`ec_tensor::pool`] reported at construction. Requesting 8
    /// threads on a 2-core host therefore runs 2, never 8 time-sliced
    /// lanes: oversubscription only adds context-switch cost, and the
    /// self-timed compute blocks would report inflated wall clocks.
    pub fn resolve(&self, num_workers: usize) -> (usize, usize) {
        let machine = ec_tensor::parallel::effective_threads(0);
        let wt = if self.worker_threads == 0 { machine } else { self.worker_threads.min(machine) }
            .min(num_workers.max(1));
        let kt = if self.kernel_threads == 0 {
            (machine / wt.max(1)).max(1)
        } else {
            self.kernel_threads.min(machine)
        };
        (wt.max(1), kt.max(1))
    }
}

/// Full configuration of one distributed training run.
#[derive(Clone, Debug)]
pub struct TrainingConfig {
    /// Layer dimensions `[d₀, h₁, …, C]` (`len - 1` GCN layers).
    pub dims: Vec<usize>,
    /// Model variant (GCN by default).
    pub model: ModelKind,
    /// Number of workers (machines holding graph partitions).
    pub num_workers: usize,
    /// Number of parameter servers.
    pub num_servers: usize,
    /// Forward compression mode.
    pub fp_mode: FpMode,
    /// Selector granularity for ReqEC-FP (the paper picks vertex-wise).
    pub reqec_granularity: crate::fp::Granularity,
    /// Backward compression mode.
    pub bp_mode: BpMode,
    /// Optimizer hyper-parameters (server-side Adam).
    pub adam: AdamParams,
    /// Network timing model for the simulated cluster.
    pub network: NetworkModel,
    /// Fault-injection plan for the simulated cluster
    /// ([`FaultPlan::none`] = the ideal, loss-free network).
    pub faults: FaultPlan,
    /// Reaction to injected faults (ignored when `faults` is none).
    pub resilience: ResilienceConfig,
    /// Intra-process parallelism (worker-level and kernel-level threads);
    /// affects wall-clock only, never simulated results.
    pub compute: ComputeConfig,
    /// Observability level and span-ring sizing ([`ec_trace::TelemetryLevel::Off`]
    /// by default); recording never perturbs training results.
    pub telemetry: ec_trace::TelemetryConfig,
    /// Seed for weight initialization.
    pub seed: u64,
    /// Maximum training epochs.
    pub max_epochs: usize,
    /// Early-stop patience: stop when validation accuracy has not improved
    /// for this many epochs (`None` disables early stopping).
    pub patience: Option<usize>,
    /// Evaluate accuracy every this many epochs (1 = every epoch).
    pub eval_every: usize,
}

impl TrainingConfig {
    /// A reasonable default for a dataset with `d0` input features and
    /// `classes` output classes: the paper's 2-layer, 16-hidden setup.
    pub fn defaults(d0: usize, classes: usize) -> Self {
        Self {
            dims: vec![d0, 16, classes],
            model: ModelKind::Gcn,
            num_workers: 6,
            num_servers: 1,
            fp_mode: FpMode::Exact,
            reqec_granularity: crate::fp::Granularity::Vertex,
            bp_mode: BpMode::Exact,
            adam: AdamParams::default(),
            network: NetworkModel::gigabit_ethernet(),
            faults: FaultPlan::none(),
            resilience: ResilienceConfig::default(),
            compute: ComputeConfig::default(),
            telemetry: ec_trace::TelemetryConfig::default(),
            seed: 1,
            max_epochs: 200,
            patience: None,
            eval_every: 1,
        }
    }

    /// Number of GCN layers `L`.
    pub fn num_layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// The `(fan_in, fan_out)` weight shapes, layer-major.
    pub fn layer_shapes(&self) -> Vec<(usize, usize)> {
        self.dims.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.dims.len() < 2 {
            return Err("need at least one layer".into());
        }
        if self.num_workers == 0 || self.num_servers == 0 {
            return Err("need at least one worker and one server".into());
        }
        if self.eval_every == 0 {
            return Err("eval_every must be positive".into());
        }
        let check_bits = |bits: u8| -> Result<(), String> {
            if !(1..=ec_compress::MAX_BITS).contains(&bits) {
                Err(format!("bit width {bits} out of range"))
            } else {
                Ok(())
            }
        };
        match self.fp_mode {
            FpMode::Compressed { bits } => check_bits(bits)?,
            FpMode::ReqEc { bits, t_tr, .. } => {
                check_bits(bits)?;
                if t_tr < 2 {
                    return Err("T_tr must be at least 2".into());
                }
            }
            FpMode::Delayed { r } => {
                if r == 0 {
                    return Err("delay period must be positive".into());
                }
            }
            FpMode::Exact => {}
        }
        match self.bp_mode {
            BpMode::Compressed { bits } | BpMode::ResEc { bits } => check_bits(bits)?,
            BpMode::TopkEc { ratio } => {
                if !(ratio > 0.0 && ratio <= 1.0) {
                    return Err(format!("top-k ratio {ratio} out of (0, 1]"));
                }
            }
            BpMode::Exact => {}
        }
        self.faults.validate()?;
        if self.resilience.max_attempts == 0 {
            return Err("resilience.max_attempts must be positive".into());
        }
        for crash in &self.faults.crashes {
            if crash.worker >= self.num_workers {
                return Err(format!(
                    "crash event targets worker {} but only {} exist",
                    crash.worker, self.num_workers
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(TrainingConfig::defaults(16, 3).validate().is_ok());
    }

    #[test]
    fn layer_accessors() {
        let c = TrainingConfig { dims: vec![8, 16, 16, 4], ..TrainingConfig::defaults(8, 4) };
        assert_eq!(c.num_layers(), 3);
        assert_eq!(c.layer_shapes(), vec![(8, 16), (16, 16), (16, 4)]);
    }

    #[test]
    fn validation_catches_bad_bits() {
        let mut c = TrainingConfig::defaults(8, 2);
        c.fp_mode = FpMode::Compressed { bits: 0 };
        assert!(c.validate().is_err());
        c.fp_mode = FpMode::Compressed { bits: 17 };
        assert!(c.validate().is_err());
        c.fp_mode = FpMode::ReqEc { bits: 2, t_tr: 1, adaptive: false };
        assert!(c.validate().is_err());
        c.fp_mode = FpMode::Delayed { r: 0 };
        assert!(c.validate().is_err());
        let mut c = TrainingConfig::defaults(8, 2);
        c.bp_mode = BpMode::TopkEc { ratio: 0.0 };
        assert!(c.validate().is_err());
        c.bp_mode = BpMode::TopkEc { ratio: 1.5 };
        assert!(c.validate().is_err());
        c.bp_mode = BpMode::TopkEc { ratio: 0.1 };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_resilience() {
        let mut c = TrainingConfig::defaults(8, 2);
        c.resilience.max_attempts = 0;
        assert!(c.validate().is_err());
        let mut c = TrainingConfig::defaults(8, 2);
        c.faults = FaultPlan::uniform_drop(1, 2.0);
        assert!(c.validate().is_err(), "probabilities above 1 must be rejected");
        let mut c = TrainingConfig::defaults(8, 2);
        c.faults = FaultPlan::none().with_crash(c.num_workers, 3);
        assert!(c.validate().is_err(), "crash must target an existing worker");
        c.faults = FaultPlan::none().with_crash(0, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn compute_config_resolution() {
        // Explicit counts pass through up to the physical parallelism of
        // the host (and workers cap the worker level) — the assertions are
        // phrased against `machine` so they hold on any core count.
        let machine = ec_tensor::parallel::effective_threads(0);
        assert_eq!(
            ComputeConfig { worker_threads: 3, kernel_threads: 2 }.resolve(8),
            (3.min(machine), 2.min(machine))
        );
        assert_eq!(
            ComputeConfig { worker_threads: 16, kernel_threads: 1 }.resolve(4),
            (4.min(machine), 1)
        );
        assert_eq!(ComputeConfig::sequential().resolve(6), (1, 1));
        // Oversubscription never survives resolution.
        let (wt, kt) = ComputeConfig { worker_threads: 1024, kernel_threads: 1024 }.resolve(2048);
        assert!(wt <= machine && kt <= machine);
        // Auto resolves to at least one thread per level.
        let (wt, kt) = ComputeConfig::default().resolve(4);
        assert!((1..=4).contains(&wt));
        assert!(kt >= 1);
    }

    #[test]
    fn validation_catches_structural_errors() {
        let mut c = TrainingConfig::defaults(8, 2);
        c.dims = vec![8];
        assert!(c.validate().is_err());
        let mut c = TrainingConfig::defaults(8, 2);
        c.num_workers = 0;
        assert!(c.validate().is_err());
    }
}
