//! Experiment result records.
//!
//! Every training run — EC-Graph in any mode, or any baseline — produces a
//! [`RunResult`]: the per-epoch history plus summary statistics. The bench
//! harness serializes these as JSON rows, which `EXPERIMENTS.md` quotes.

use serde::{Deserialize, Serialize};

/// One epoch's record.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Global training loss.
    pub loss: f32,
    /// Validation accuracy (carried forward between evaluation epochs).
    pub val_acc: f64,
    /// Test accuracy (carried forward between evaluation epochs).
    pub test_acc: f64,
    /// Measured compute seconds.
    pub compute_s: f64,
    /// Simulated communication seconds.
    pub comm_s: f64,
    /// Bytes of forward-pass embedding traffic.
    pub fp_bytes: u64,
    /// Bytes of backward-pass gradient traffic.
    pub bp_bytes: u64,
    /// Bytes of parameter traffic.
    pub param_bytes: u64,
    /// Bytes wasted on failed/duplicated transmissions (fault injection).
    pub retry_bytes: u64,
    /// Total bytes (all channels).
    pub total_bytes: u64,
    /// FP messages replaced by the ReqEC prediction (EC-degrade policy).
    pub degraded: u64,
    /// Degraded messages whose final failed attempt was a drop.
    pub degraded_drop: u64,
    /// Degraded messages whose final failed attempt was a corruption.
    pub degraded_corrupt: u64,
}

impl EpochRecord {
    /// Simulated wall-clock time of this epoch.
    pub fn sim_time(&self) -> f64 {
        self.compute_s + self.comm_s
    }
}

/// Summary of one complete training run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunResult {
    /// System label, e.g. `"ec-graph"`, `"distgnn"`, `"dgl-like"`.
    pub system: String,
    /// Dataset label, e.g. `"cora"`.
    pub dataset: String,
    /// Number of GNN layers.
    pub num_layers: usize,
    /// Number of workers (1 for single-machine baselines).
    pub num_workers: usize,
    /// Per-epoch history.
    pub epochs: Vec<EpochRecord>,
    /// Preprocessing seconds (partitioning, caches, offline sampling).
    pub preprocessing_s: f64,
    /// Simulated seconds lost to worker crashes: the work discarded when
    /// rolling back to the latest checkpoint (the replay itself appears in
    /// `epochs` like any other training time).
    pub recovery_s: f64,
    /// Worker crashes survived during the run.
    pub crashes_recovered: usize,
    /// Epoch (0-based) at which validation accuracy peaked.
    pub best_epoch: usize,
    /// Peak validation accuracy.
    pub best_val_acc: f64,
    /// Test accuracy at the peak-validation epoch.
    pub best_test_acc: f64,
    /// Telemetry snapshot (`None` when recording was off). Deliberately
    /// excluded from [`Self::to_json`]: the canonical image must stay
    /// byte-identical whatever the telemetry level, which is exactly what
    /// the determinism suite checks.
    pub telemetry: Option<ec_trace::TelemetryReport>,
}

impl RunResult {
    /// Mean simulated epoch time (the paper's Table IV metric).
    pub fn avg_epoch_time(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(EpochRecord::sim_time).sum::<f64>() / self.epochs.len() as f64
    }

    /// Total simulated training time across all executed epochs.
    pub fn total_train_time(&self) -> f64 {
        self.epochs.iter().map(EpochRecord::sim_time).sum()
    }

    /// Simulated time to reach the best-validation epoch — the paper's
    /// "full convergence time".
    pub fn convergence_time(&self) -> f64 {
        self.epochs.iter().take(self.best_epoch + 1).map(EpochRecord::sim_time).sum()
    }

    /// First epoch whose validation accuracy is within `tol` of the run's
    /// best — a noise-robust convergence point (late 0.1 % fluctuations
    /// should not count as "still converging").
    pub fn convergence_epoch_within(&self, tol: f64) -> usize {
        let threshold = self.best_val_acc - tol;
        self.epochs.iter().position(|e| e.val_acc >= threshold).unwrap_or(self.best_epoch)
    }

    /// Simulated time to reach [`Self::convergence_epoch_within`].
    pub fn convergence_time_within(&self, tol: f64) -> f64 {
        self.epochs
            .iter()
            .take(self.convergence_epoch_within(tol) + 1)
            .map(EpochRecord::sim_time)
            .sum()
    }

    /// End-to-end time: preprocessing + crash-recovery losses +
    /// convergence time (Fig. 9).
    pub fn end_to_end_time(&self) -> f64 {
        self.preprocessing_s + self.recovery_s + self.convergence_time()
    }

    /// Total bytes communicated over the run.
    pub fn total_bytes(&self) -> u64 {
        self.epochs.iter().map(|e| e.total_bytes).sum()
    }

    /// Canonical JSON image of the full run: every summary field plus the
    /// complete epoch history, with keys in a fixed order. Two runs are
    /// byte-identical here iff they are behaviorally identical — the
    /// determinism suite diffs these strings directly.
    pub fn to_json(&self) -> serde_json::Value {
        let epochs: Vec<serde_json::Value> = self
            .epochs
            .iter()
            .map(|e| {
                serde_json::json!({
                    "epoch": e.epoch,
                    "loss": e.loss,
                    "val_acc": e.val_acc,
                    "test_acc": e.test_acc,
                    "compute_s": e.compute_s,
                    "comm_s": e.comm_s,
                    "fp_bytes": e.fp_bytes,
                    "bp_bytes": e.bp_bytes,
                    "param_bytes": e.param_bytes,
                    "retry_bytes": e.retry_bytes,
                    "total_bytes": e.total_bytes,
                    "degraded": e.degraded,
                    "degraded_drop": e.degraded_drop,
                    "degraded_corrupt": e.degraded_corrupt,
                })
            })
            .collect();
        serde_json::json!({
            "system": self.system,
            "dataset": self.dataset,
            "num_layers": self.num_layers,
            "num_workers": self.num_workers,
            "preprocessing_s": self.preprocessing_s,
            "recovery_s": self.recovery_s,
            "crashes_recovered": self.crashes_recovered,
            "best_epoch": self.best_epoch,
            "best_val_acc": self.best_val_acc,
            "best_test_acc": self.best_test_acc,
            "epochs": epochs,
        })
    }

    /// Recomputes the best-epoch summary fields from the history.
    pub fn finalize(&mut self) {
        let mut best = (0usize, f64::MIN, 0.0f64);
        for e in &self.epochs {
            if e.val_acc > best.1 {
                best = (e.epoch, e.val_acc, e.test_acc);
            }
        }
        self.best_epoch = best.0;
        self.best_val_acc = best.1.max(0.0);
        self.best_test_acc = best.2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: usize, val: f64, test: f64, compute: f64, comm: f64) -> EpochRecord {
        EpochRecord {
            epoch,
            val_acc: val,
            test_acc: test,
            compute_s: compute,
            comm_s: comm,
            total_bytes: 100,
            ..Default::default()
        }
    }

    fn sample() -> RunResult {
        let mut r = RunResult {
            system: "ec-graph".into(),
            dataset: "cora".into(),
            num_layers: 2,
            num_workers: 6,
            epochs: vec![
                rec(0, 0.5, 0.48, 1.0, 0.5),
                rec(1, 0.8, 0.79, 1.0, 0.5),
                rec(2, 0.7, 0.81, 1.0, 0.5),
            ],
            preprocessing_s: 2.0,
            ..Default::default()
        };
        r.finalize();
        r
    }

    #[test]
    fn finalize_tracks_best_validation() {
        let r = sample();
        assert_eq!(r.best_epoch, 1);
        assert_eq!(r.best_val_acc, 0.8);
        assert_eq!(r.best_test_acc, 0.79);
    }

    #[test]
    fn timing_summaries() {
        let r = sample();
        assert!((r.avg_epoch_time() - 1.5).abs() < 1e-12);
        assert!((r.total_train_time() - 4.5).abs() < 1e-12);
        assert!((r.convergence_time() - 3.0).abs() < 1e-12);
        assert!((r.end_to_end_time() - 5.0).abs() < 1e-12);
        assert_eq!(r.total_bytes(), 300);
    }

    #[test]
    fn recovery_time_counts_toward_end_to_end() {
        let mut r = sample();
        r.recovery_s = 2.5;
        r.crashes_recovered = 1;
        assert!((r.end_to_end_time() - 7.5).abs() < 1e-12);
        // ... but not toward the per-epoch averages.
        assert!((r.avg_epoch_time() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_safe() {
        let mut r = RunResult::default();
        r.finalize();
        assert_eq!(r.avg_epoch_time(), 0.0);
        assert_eq!(r.best_val_acc, 0.0);
    }

    #[test]
    fn convergence_within_tolerance_stops_at_first_good_epoch() {
        let mut r = sample();
        // val accs: 0.5, 0.8, 0.7 → best 0.8; within 0.15 first reached at
        // epoch 1; within 0.35 already at epoch 0.
        r.finalize();
        assert_eq!(r.convergence_epoch_within(0.15), 1);
        assert_eq!(r.convergence_epoch_within(0.35), 0);
        assert!((r.convergence_time_within(0.35) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn convergence_within_zero_tol_equals_best_epoch() {
        let r = sample();
        assert_eq!(r.convergence_epoch_within(0.0), r.best_epoch);
    }

    #[test]
    fn convergence_time_counts_through_best_epoch_inclusive() {
        let mut r = sample();
        r.epochs[0].val_acc = 0.99; // best at epoch 0
        r.finalize();
        assert!((r.convergence_time() - 1.5).abs() < 1e-12);
    }
}
