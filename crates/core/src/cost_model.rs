//! The analytic cost comparison of Table II.
//!
//! For a graph with average degree `ḡ`, average dimension `d̄`, `L` layers,
//! `T` iterations, average remote degree `ḡ_rmt` and compression width `B`:
//!
//! | cost | ML-centered | EC-Graph |
//! |---|---|---|
//! | memory | `O(ḡ^L · d̄)` | `O(ḡ · d̄)` |
//! | compute | `O(ḡ^{L-1} · d̄²)` | `O(L · d̄²)` |
//! | communication | `O(ḡ^L · d₀)` | `O(T·L·ḡ_rmt·d̄ / (32/B))` |

use serde::{Deserialize, Serialize};

/// Workload parameters for the analytic model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostParams {
    /// Average vertex degree `ḡ`.
    pub avg_degree: f64,
    /// Average embedding dimension `d̄`.
    pub avg_dim: f64,
    /// Input feature dimension `d₀`.
    pub input_dim: f64,
    /// Number of GNN layers `L`.
    pub layers: u32,
    /// Number of training iterations `T`.
    pub iterations: u32,
    /// Average number of remote 1-hop neighbours `ḡ_rmt`.
    pub avg_remote_degree: f64,
    /// Compression bit width `B` (32 = uncompressed).
    pub bits: u32,
}

/// Per-vertex costs of one framework, in abstract units (floats cached /
/// multiply-adds / floats transferred).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Memory footprint per target vertex.
    pub memory: f64,
    /// Computation per target vertex per iteration.
    pub compute: f64,
    /// Communication per target vertex over the whole run.
    pub communication: f64,
}

/// Table II, ML-centered column: `L`-hop caching with redundant compute.
pub fn ml_centered_costs(p: &CostParams) -> CostEstimate {
    let g_l = p.avg_degree.powi(p.layers as i32);
    CostEstimate {
        memory: g_l * p.avg_dim,
        compute: p.avg_degree.powi(p.layers as i32 - 1) * p.avg_dim * p.avg_dim,
        communication: g_l * p.input_dim,
    }
}

/// Table II, EC-Graph column: graph-centered with `B`-bit compression.
pub fn ec_graph_costs(p: &CostParams) -> CostEstimate {
    CostEstimate {
        memory: p.avg_degree * p.avg_dim,
        compute: p.layers as f64 * p.avg_dim * p.avg_dim,
        communication: p.iterations as f64 * p.layers as f64 * p.avg_remote_degree * p.avg_dim
            / (32.0 / p.bits as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams {
            avg_degree: 50.0,
            avg_dim: 128.0,
            input_dim: 128.0,
            layers: 3,
            iterations: 100,
            avg_remote_degree: 5.0,
            bits: 32,
        }
    }

    #[test]
    fn ml_centered_memory_explodes_with_layers() {
        let mut p = params();
        let m3 = ml_centered_costs(&p).memory;
        p.layers = 4;
        let m4 = ml_centered_costs(&p).memory;
        assert!((m4 / m3 - p.avg_degree).abs() < 1e-6, "memory must grow ×ḡ per layer");
    }

    #[test]
    fn ec_graph_memory_is_layer_independent() {
        let mut p = params();
        let m3 = ec_graph_costs(&p).memory;
        p.layers = 4;
        assert_eq!(ec_graph_costs(&p).memory, m3);
    }

    #[test]
    fn compression_divides_communication_by_32_over_b() {
        let mut p = params();
        let full = ec_graph_costs(&p).communication;
        p.bits = 2;
        let compressed = ec_graph_costs(&p).communication;
        assert!((full / compressed - 16.0).abs() < 1e-9);
    }

    #[test]
    fn ec_graph_wins_on_dense_deep_settings() {
        // The regime the paper targets: large ḡ, L = 3.
        let p = params();
        let ml = ml_centered_costs(&p);
        let ec = ec_graph_costs(&p);
        assert!(ec.memory < ml.memory / 100.0);
        assert!(ec.compute < ml.compute / 100.0);
    }

    #[test]
    fn ml_centered_can_win_communication_for_tiny_t() {
        // One-shot pull can beat T iterations of message passing on sparse
        // graphs — the trade-off Table II encodes.
        let mut p = params();
        p.avg_degree = 2.0;
        p.iterations = 10_000;
        let ml = ml_centered_costs(&p);
        let ec = ec_graph_costs(&p);
        assert!(ml.communication < ec.communication);
    }
}
