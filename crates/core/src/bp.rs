//! Backward-pass message preparation: plain quantization and **ResEC-BP**
//! (Algorithms 5–6, Eqs. 11–12).
//!
//! ResEC-BP is responding-end error feedback: the quantization residual of
//! iteration `t` is added to the gradient rows before they are compressed
//! at iteration `t+1`, so the error the requester accumulates stays bounded
//! (Theorem 1) instead of compounding.

use ec_comm::codec;
use ec_compress::Quantized;
use ec_tensor::{ops, Matrix};

/// Residual memory for one (responder → requester, layer) pair.
#[derive(Clone, Debug, Default)]
pub struct ResidualState {
    /// `δ^{l,t-1}` — zeros before the first exchange.
    residual: Option<Matrix>,
}

impl ResidualState {
    /// Squared L2 norm of the current residual (Theorem-1 tracking).
    pub fn residual_norm_sq(&self) -> f32 {
        self.residual.as_ref().map_or(0.0, ec_tensor::stats::l2_norm_sq)
    }

    /// The residual matrix, for checkpointing.
    pub fn residual(&self) -> Option<&Matrix> {
        self.residual.as_ref()
    }

    /// Rebuilds a state captured via [`ResidualState::residual`].
    pub fn from_residual(residual: Option<Matrix>) -> Self {
        Self { residual }
    }
}

/// Uncompressed gradient response.
pub fn respond_exact(g_rows: &Matrix) -> (Matrix, u64) {
    (g_rows.clone(), codec::matrix_wire_size(g_rows) as u64)
}

/// Plain `B`-bit quantized response (`Cp-bp-B`); min/max computed per
/// message because gradients "will not be normalized into a unit ball"
/// (Alg. 6 line 4).
pub fn respond_compressed(g_rows: &Matrix, bits: u8) -> (Matrix, u64) {
    if g_rows.rows() == 0 {
        return (g_rows.clone(), 0);
    }
    let q = Quantized::compress(g_rows, bits);
    let wire = q.wire_size() as u64;
    (q.decompress(), wire)
}

/// One ResEC-BP exchange (Eqs. 11–12):
///
/// ```text
/// G_cpt = G^{l,t} + δ^{l,t-1}
/// M     = C_bits(G_cpt)          (shipped)
/// δ^{l,t} = G_cpt − M            (kept for the next iteration)
/// ```
///
/// Returns the matrix the requester decompresses and the wire bytes.
pub fn resec_step(state: &mut ResidualState, g_rows: &Matrix, bits: u8) -> (Matrix, u64) {
    if g_rows.rows() == 0 {
        return (g_rows.clone(), 0);
    }
    let compensated = match &state.residual {
        Some(delta) => ops::add(g_rows, delta),
        None => g_rows.clone(),
    };
    let q = Quantized::compress(&compensated, bits);
    let decompressed = q.decompress();
    state.residual = Some(ops::sub(&compensated, &decompressed));
    (decompressed, q.wire_size() as u64)
}

/// One Top-k-with-error-feedback exchange ("Sparsified SGD with Memory",
/// the paper's related-work comparator [32]): identical residual feedback
/// to [`resec_step`], with sparsification instead of quantization as the
/// compressor. `ratio` is the fraction of coordinates kept.
pub fn topk_ec_step(state: &mut ResidualState, g_rows: &Matrix, ratio: f32) -> (Matrix, u64) {
    if g_rows.rows() == 0 {
        return (g_rows.clone(), 0);
    }
    let compensated = match &state.residual {
        Some(delta) => ops::add(g_rows, delta),
        None => g_rows.clone(),
    };
    let k = ((g_rows.len() as f32 * ratio).ceil() as usize).clamp(1, g_rows.len());
    let t = ec_compress::TopK::compress(&compensated, k);
    let sent = t.decompress();
    state.residual = Some(ops::sub(&compensated, &sent));
    (sent, t.wire_size() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_tensor::stats;

    #[test]
    fn exact_round_trips() {
        let g = Matrix::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.1);
        let (m, wire) = respond_exact(&g);
        assert_eq!(m, g);
        assert_eq!(wire, 8 + 24);
    }

    #[test]
    fn resec_first_step_equals_plain_compression() {
        let g = Matrix::from_fn(4, 4, |r, c| ((r * 4 + c) as f32).sin());
        let mut st = ResidualState::default();
        let (ec, _) = resec_step(&mut st, &g, 3);
        let (plain, _) = respond_compressed(&g, 3);
        assert_eq!(ec, plain);
    }

    #[test]
    fn residual_matches_eq11() {
        let g = Matrix::from_vec(1, 2, vec![0.3, -0.7]);
        let mut st = ResidualState::default();
        let (m, _) = resec_step(&mut st, &g, 2);
        let expected = ops::sub(&g, &m);
        let delta = st.residual.as_ref().unwrap();
        assert!(delta.approx_eq(&expected, 1e-6));
    }

    /// The defining property of error feedback: over many iterations of a
    /// *constant* gradient, the running average of the shipped values
    /// converges to the true gradient, while plain compression keeps the
    /// same bias forever.
    #[test]
    fn error_feedback_removes_bias_of_constant_gradient() {
        let g = Matrix::from_vec(1, 3, vec![0.37, -0.21, 0.55]);
        let mut st = ResidualState::default();
        let iters = 200;
        let mut sum_ec = Matrix::zeros(1, 3);
        let mut sum_plain = Matrix::zeros(1, 3);
        for _ in 0..iters {
            let (ec, _) = resec_step(&mut st, &g, 1);
            ops::add_assign(&mut sum_ec, &ec);
            let (plain, _) = respond_compressed(&g, 1);
            ops::add_assign(&mut sum_plain, &plain);
        }
        let avg_ec = ops::scale(&sum_ec, 1.0 / iters as f32);
        let avg_plain = ops::scale(&sum_plain, 1.0 / iters as f32);
        let ec_bias = stats::l1_norm(&ops::sub(&avg_ec, &g));
        let plain_bias = stats::l1_norm(&ops::sub(&avg_plain, &g));
        assert!(ec_bias < 0.02, "EC bias {ec_bias} should vanish");
        assert!(plain_bias > 5.0 * ec_bias, "plain bias {plain_bias} should persist");
    }

    /// Theorem 1: the residual norm stays bounded when the compression
    /// contraction factor α is small enough.
    #[test]
    fn residual_norm_stays_bounded() {
        let mut st = ResidualState::default();
        let mut max_norm: f32 = 0.0;
        for t in 0..100 {
            let g = Matrix::from_fn(4, 4, |r, c| ((t * 17 + r * 5 + c) as f32 * 0.13).sin());
            resec_step(&mut st, &g, 4); // 4 bits → α ≈ 1/2^4 per coordinate scale
            max_norm = max_norm.max(st.residual_norm_sq());
        }
        let g_norm_sq = 16.0; // ‖G‖² ≤ rows·cols·1
                              // Bound with α ~ 2^-4 · √(range): generous constant-factor check.
        assert!(max_norm < g_norm_sq, "residual norm² {max_norm} unbounded");
    }

    #[test]
    fn resec_with_high_bits_is_nearly_exact() {
        let g = Matrix::from_fn(8, 8, |r, c| ((r + 2 * c) as f32 * 0.21).cos());
        let mut st = ResidualState::default();
        let (m, _) = resec_step(&mut st, &g, 16);
        assert!(m.approx_eq(&g, 1e-3));
        assert!(st.residual_norm_sq() < 1e-6);
    }

    #[test]
    fn empty_rows_are_free() {
        let g = Matrix::zeros(0, 5);
        let mut st = ResidualState::default();
        let (m, wire) = resec_step(&mut st, &g, 2);
        assert_eq!(m.shape(), (0, 5));
        assert_eq!(wire, 0);
    }

    #[test]
    fn topk_ec_debiases_like_resec() {
        let g = Matrix::from_vec(1, 8, vec![0.9, -0.3, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let mut st = ResidualState::default();
        let mut sum = Matrix::zeros(1, 8);
        let iters = 300;
        for _ in 0..iters {
            let (sent, _) = topk_ec_step(&mut st, &g, 0.25);
            ops::add_assign(&mut sum, &sent);
        }
        let avg = ops::scale(&sum, 1.0 / iters as f32);
        assert!(stats::l1_norm(&ops::sub(&avg, &g)) < 0.05);
    }

    #[test]
    fn topk_ec_wire_scales_with_ratio() {
        let g = Matrix::from_fn(32, 8, |r, c| ((r + c) as f32).sin());
        let mut s1 = ResidualState::default();
        let mut s2 = ResidualState::default();
        let (_, w_small) = topk_ec_step(&mut s1, &g, 0.05);
        let (_, w_big) = topk_ec_step(&mut s2, &g, 0.5);
        assert!(w_big > 5 * w_small);
    }

    #[test]
    fn wire_size_scales_with_bits() {
        let g = Matrix::from_fn(64, 16, |r, c| (r + c) as f32 * 0.01);
        let mut st2 = ResidualState::default();
        let mut st8 = ResidualState::default();
        let (_, w2) = resec_step(&mut st2, &g, 2);
        let (_, w8) = resec_step(&mut st8, &g, 8);
        assert!(w8 > 3 * w2);
    }
}
