//! Neighbour sampling: offline per-layer fan-out graphs (EC-Graph-S) and
//! online mini-batch blocks (DistDGL-style).
//!
//! * **Offline** ([`sample_layer_graphs`]): EC-Graph-S samples once during
//!   preprocessing ("the preprocessing time of EC-Graph-S … consists of
//!   sampling, …") and then trains full-batch over the sampled topology.
//!   One fan-out per layer, e.g. the paper's `(20, 5)` for Products. The
//!   sampled edge set is symmetrized so the engine's symmetric-adjacency
//!   gradient flow stays exact.
//! * **Online** ([`sample_blocks`]): DistDGL "adopts an online-sampling
//!   that chooses different neighbors for a vertex in each iteration" —
//!   each mini-batch draws fresh layered blocks.

use ec_graph_data::{normalize, Graph};
use ec_tensor::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Samples one symmetric subgraph per layer: every vertex keeps at most
/// `fanouts[l]` random neighbours (plus the reverse edges), and the result
/// is GCN-normalized.
///
/// Returns `(normalized adjacency per layer, sampled edge count per layer)`.
pub fn sample_layer_graphs(
    g: &Graph,
    fanouts: &[usize],
    seed: u64,
) -> (Vec<Arc<CsrMatrix>>, Vec<usize>) {
    assert!(!fanouts.is_empty(), "need at least one fan-out");
    let mut adjs = Vec::with_capacity(fanouts.len());
    let mut edge_counts = Vec::with_capacity(fanouts.len());
    for (l, &fanout) in fanouts.iter().enumerate() {
        assert!(fanout >= 1, "fan-out must be positive");
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(l as u64 * 0x9E37));
        let mut edges = Vec::new();
        for v in 0..g.num_vertices() {
            let nb = g.neighbors(v);
            if nb.len() <= fanout {
                for &u in nb {
                    edges.push((v as u32, u));
                }
            } else {
                // Floyd-style distinct sampling over the neighbour list.
                // Emit in sorted order: HashSet iteration order varies per
                // process and would leak into the sampled edge list.
                let mut chosen = std::collections::HashSet::with_capacity(fanout);
                while chosen.len() < fanout {
                    chosen.insert(nb[rng.gen_range(0..nb.len())]);
                }
                let mut picked: Vec<u32> = chosen.into_iter().collect();
                picked.sort_unstable();
                for u in picked {
                    edges.push((v as u32, u));
                }
            }
        }
        let sampled = Graph::from_edges(g.num_vertices(), &edges);
        edge_counts.push(sampled.num_edges());
        adjs.push(Arc::new(normalize::gcn_normalized_adjacency(&sampled)));
    }
    (adjs, edge_counts)
}

/// One message-passing block of a sampled mini-batch: `dst` vertices
/// aggregate from `src` vertices through the row-normalized `adj`
/// (`dst.len() × src.len()`).
#[derive(Clone, Debug)]
pub struct Block {
    /// Global ids of the input frontier (`src` side).
    pub src: Vec<usize>,
    /// Global ids of the output frontier (`dst` side); always a prefix of
    /// `src` (self-connections included).
    pub dst: Vec<usize>,
    /// Row-normalized aggregation matrix (`dst × src`).
    pub adj: CsrMatrix,
}

/// Samples DistDGL-style layered blocks for one mini-batch.
///
/// Starting from `seeds` (the batch's training vertices), layer `L` down to
/// `1` draws `fanouts[l-1]` random neighbours per frontier vertex. Returns
/// blocks in *forward* order: `blocks[0]` consumes raw features,
/// `blocks.last()` produces the seed logits.
pub fn sample_blocks(
    g: &Graph,
    seeds: &[usize],
    fanouts: &[usize],
    rng: &mut SmallRng,
) -> Vec<Block> {
    assert!(!fanouts.is_empty(), "need at least one fan-out");
    let mut blocks: Vec<Block> = Vec::with_capacity(fanouts.len());
    let mut frontier: Vec<usize> = seeds.to_vec();
    // Walk output → input so each layer's frontier grows.
    for &fanout in fanouts.iter().rev() {
        let mut src: Vec<usize> = frontier.clone();
        let mut index: std::collections::HashMap<usize, usize> =
            src.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut triples: Vec<(usize, usize, f32)> = Vec::new();
        for (d, &v) in frontier.iter().enumerate() {
            let nb = g.neighbors(v);
            let take = fanout.min(nb.len());
            let mut picked: Vec<u32> = if nb.len() <= fanout {
                nb.to_vec()
            } else {
                let mut chosen = std::collections::HashSet::with_capacity(take);
                while chosen.len() < take {
                    chosen.insert(nb[rng.gen_range(0..nb.len())]);
                }
                chosen.into_iter().collect()
            };
            picked.sort_unstable();
            let norm = 1.0 / (picked.len() + 1) as f32;
            triples.push((d, d, norm)); // self-connection
            for u in picked {
                let u = u as usize;
                let s = *index.entry(u).or_insert_with(|| {
                    src.push(u);
                    src.len() - 1
                });
                triples.push((d, s, norm));
            }
        }
        let adj = CsrMatrix::from_triples(frontier.len(), src.len(), &triples);
        blocks.push(Block { src: src.clone(), dst: frontier, adj });
        frontier = src;
    }
    blocks.reverse();
    blocks
}

/// Splits `seeds` into shuffled mini-batches of at most `batch_size`.
pub fn make_batches(seeds: &[usize], batch_size: usize, rng: &mut SmallRng) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut order = seeds.to_vec();
    // Fisher–Yates.
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order.chunks(batch_size).map(<[usize]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph_data::generators;

    #[test]
    fn offline_sampling_caps_degree() {
        let g = generators::erdos_renyi(300, 3000, 1);
        let (adjs, edges) = sample_layer_graphs(&g, &[5, 2], 7);
        assert_eq!(adjs.len(), 2);
        // Each vertex contributes ≤ fanout edges (before symmetrization the
        // cap is exact; after, a vertex's degree can exceed it, but the
        // total is bounded by n·fanout).
        assert!(edges[0] <= 300 * 5);
        assert!(edges[1] <= 300 * 2);
        assert!(edges[1] < edges[0]);
    }

    #[test]
    fn offline_sampling_is_deterministic() {
        let g = generators::erdos_renyi(100, 500, 2);
        let (a1, _) = sample_layer_graphs(&g, &[3], 9);
        let (a2, _) = sample_layer_graphs(&g, &[3], 9);
        assert_eq!(*a1[0], *a2[0]);
    }

    #[test]
    fn low_degree_vertices_keep_all_neighbors() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let (adjs, edges) = sample_layer_graphs(&g, &[10], 3);
        assert_eq!(edges[0], 3);
        // Full graph survives: Â has the same support as the unsampled one.
        assert_eq!(adjs[0].nnz(), 3 * 2 + 4);
    }

    #[test]
    fn blocks_form_a_consistent_pyramid() {
        let g = generators::erdos_renyi(200, 1000, 3);
        let mut rng = SmallRng::seed_from_u64(5);
        let seeds = vec![1, 5, 9];
        let blocks = sample_blocks(&g, &seeds, &[4, 2], &mut rng);
        assert_eq!(blocks.len(), 2);
        // Forward order: last block's dst are the seeds.
        assert_eq!(blocks[1].dst, seeds);
        // Chaining: each block's dst equals the next block's... in forward
        // order, block[l].src must equal block[l-1]... rather: the output
        // frontier of blocks[0] is the input frontier of blocks[1].
        assert_eq!(blocks[0].dst, blocks[1].src);
        // dst is a prefix of src (self-connections).
        assert_eq!(&blocks[0].src[..blocks[0].dst.len()], &blocks[0].dst[..]);
        // Aggregation rows are normalized.
        let d = blocks[1].adj.to_dense();
        for r in 0..d.rows() {
            let sum: f32 = d.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn block_fanout_is_respected() {
        let g = generators::erdos_renyi(100, 2000, 4);
        let mut rng = SmallRng::seed_from_u64(6);
        let blocks = sample_blocks(&g, &[0, 1], &[3], &mut rng);
        for r in 0..blocks[0].adj.rows() {
            let entries = blocks[0].adj.row_entries(r).count();
            assert!(entries <= 4, "row {r} has {entries} > fanout+self");
        }
    }

    #[test]
    fn batches_cover_all_seeds_once() {
        let seeds: Vec<usize> = (0..23).collect();
        let mut rng = SmallRng::seed_from_u64(8);
        let batches = make_batches(&seeds, 5, &mut rng);
        assert_eq!(batches.len(), 5);
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, seeds);
    }
}
