//! The Graph Engine's per-worker view of the partitioned graph.
//!
//! After partitioning, each worker holds (Section III-A):
//! * its local vertices (features, labels, adjacency rows), and
//! * the identity of every *remote 1-hop neighbour* those rows reference —
//!   the set the 1-hop NAC (Neighbor Access Controller) fetches each layer.
//!
//! Locally, vertices are renumbered into `[0, n_local)` for local vertices
//! followed by `[n_local, n_local + n_remote)` for the cached remote
//! dependencies, so a layer's aggregation is a single SpMM over the
//! concatenated matrix `[H_local ; H_remote]` (Alg. 1 line 7's
//! `concatenate`).
//!
//! Topology is per layer: full-batch EC-Graph uses one topology for every
//! layer, while the sampling mode (EC-Graph-S) trains on a different
//! fan-out-sampled adjacency per layer.

use ec_partition::Partition;
use ec_tensor::CsrMatrix;
use std::collections::HashMap;
use std::sync::Arc;

/// One layer's local adjacency slice and remote dependency sets.
#[derive(Clone, Debug)]
pub struct LayerTopology {
    /// Local rows of the (normalized) adjacency, columns renumbered to
    /// `[locals | remotes]`.
    pub adj_local: CsrMatrix,
    /// Sorted global ids of the remote vertices this worker must fetch.
    pub remote_deps: Vec<usize>,
    /// `remote_deps` grouped by owning worker (entry `w` lists the global
    /// ids owned by worker `w`, sorted; the self entry is empty).
    pub deps_by_owner: Vec<Vec<usize>>,
    /// Global id → position in `remote_deps`.
    pub remote_index: HashMap<usize, usize>,
}

/// Everything one worker knows about the partitioned graph.
#[derive(Clone, Debug)]
pub struct WorkerContext {
    /// This worker's id.
    pub worker_id: usize,
    /// Sorted global ids of the local vertices.
    pub local_vertices: Vec<usize>,
    /// Global id → local row index.
    pub global_to_local: HashMap<usize, usize>,
    /// Per-GNN-layer topology: `layers[l-1]` drives the aggregation that
    /// produces layer `l`.
    pub layers: Vec<Arc<LayerTopology>>,
}

impl WorkerContext {
    /// Number of local vertices.
    pub fn num_local(&self) -> usize {
        self.local_vertices.len()
    }
}

/// Builds one [`LayerTopology`] per worker for a single global adjacency.
pub fn build_layer_topologies(adj: &CsrMatrix, partition: &Partition) -> Vec<Arc<LayerTopology>> {
    let num_parts = partition.num_parts();
    let mut locals: Vec<Vec<usize>> = vec![Vec::new(); num_parts];
    for v in 0..partition.num_vertices() {
        locals[partition.part_of(v)].push(v);
    }
    (0..num_parts)
        .map(|w| {
            let local = &locals[w];
            let local_index: HashMap<usize, usize> =
                local.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            // Collect remote columns referenced by the local rows.
            let rows = adj.select_rows(local);
            let mut remote_set: std::collections::BTreeSet<usize> =
                std::collections::BTreeSet::new();
            for r in 0..rows.rows() {
                for (c, _) in rows.row_entries(r) {
                    if !local_index.contains_key(&c) {
                        remote_set.insert(c);
                    }
                }
            }
            let remote_deps: Vec<usize> = remote_set.into_iter().collect();
            let remote_index: HashMap<usize, usize> =
                remote_deps.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            let n_local = local.len();
            let adj_local = rows.remap_columns(
                &|c| {
                    local_index
                        .get(&c)
                        .copied()
                        .or_else(|| remote_index.get(&c).map(|&i| n_local + i))
                },
                n_local + remote_deps.len(),
            );
            let mut deps_by_owner: Vec<Vec<usize>> = vec![Vec::new(); num_parts];
            for &v in &remote_deps {
                deps_by_owner[partition.part_of(v)].push(v);
            }
            Arc::new(LayerTopology { adj_local, remote_deps, deps_by_owner, remote_index })
        })
        .collect()
}

/// Builds the full worker contexts for per-layer adjacencies.
///
/// `adjs` has one (global, `n × n`) normalized adjacency per GNN layer;
/// pass the same `Arc` `L` times for the standard full-batch setup (the
/// topology is computed once per distinct matrix and shared).
pub fn build_worker_contexts(adjs: &[Arc<CsrMatrix>], partition: &Partition) -> Vec<WorkerContext> {
    assert!(!adjs.is_empty(), "need at least one layer adjacency");
    let num_parts = partition.num_parts();

    // Deduplicate identical Arcs so shared topologies are built once.
    let mut built: Vec<(usize, Vec<Arc<LayerTopology>>)> = Vec::new(); // (ptr, per-worker)
    let mut per_layer: Vec<Vec<Arc<LayerTopology>>> = Vec::new();
    for adj in adjs {
        let key = Arc::as_ptr(adj) as usize;
        if let Some((_, topos)) = built.iter().find(|(k, _)| *k == key) {
            per_layer.push(topos.clone());
        } else {
            let topos = build_layer_topologies(adj, partition);
            built.push((key, topos.clone()));
            per_layer.push(topos);
        }
    }

    let mut locals: Vec<Vec<usize>> = vec![Vec::new(); num_parts];
    for v in 0..partition.num_vertices() {
        locals[partition.part_of(v)].push(v);
    }
    (0..num_parts)
        .map(|w| {
            let local_vertices = locals[w].clone();
            let global_to_local = local_vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            let layers = per_layer.iter().map(|l| Arc::clone(&l[w])).collect();
            WorkerContext { worker_id: w, local_vertices, global_to_local, layers }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph_data::{normalize, Graph};
    use ec_partition::Partition;
    use ec_tensor::{ops, Matrix};

    /// 4-cycle split in half: each worker needs two remote vertices.
    fn setup() -> (Arc<CsrMatrix>, Partition) {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&g));
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        (adj, p)
    }

    #[test]
    fn local_and_remote_sets_are_correct() {
        let (adj, p) = setup();
        let ctxs = build_worker_contexts(&[adj], &p);
        assert_eq!(ctxs[0].local_vertices, vec![0, 1]);
        assert_eq!(ctxs[1].local_vertices, vec![2, 3]);
        // Worker 0's locals touch 2 (via 1) and 3 (via 0).
        assert_eq!(ctxs[0].layers[0].remote_deps, vec![2, 3]);
        assert_eq!(ctxs[0].layers[0].deps_by_owner[1], vec![2, 3]);
        assert!(ctxs[0].layers[0].deps_by_owner[0].is_empty());
    }

    #[test]
    fn distributed_spmm_matches_global() {
        // [H_local ; H_remote] aggregation per worker must reproduce the
        // global Â·H rows exactly.
        let (adj, p) = setup();
        let ctxs = build_worker_contexts(&[Arc::clone(&adj)], &p);
        let h = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.1);
        let global = adj.spmm(&h);
        for ctx in &ctxs {
            let topo = &ctx.layers[0];
            let h_local = h.gather_rows(&ctx.local_vertices);
            let h_remote = h.gather_rows(&topo.remote_deps);
            let h_cat = h_local.vstack(&h_remote);
            let local_out = topo.adj_local.spmm(&h_cat);
            let expected = global.gather_rows(&ctx.local_vertices);
            assert!(
                local_out.approx_eq(&expected, 1e-6),
                "worker {} mismatch: {:?} vs {:?}",
                ctx.worker_id,
                local_out,
                expected
            );
        }
    }

    #[test]
    fn distributed_xw_then_aggregate_matches_global() {
        let (adj, p) = setup();
        let ctxs = build_worker_contexts(&[Arc::clone(&adj)], &p);
        let h = Matrix::from_fn(4, 3, |r, c| ((r + 1) * (c + 1)) as f32 * 0.05);
        let w = Matrix::from_fn(3, 2, |r, c| 0.3 * r as f32 - 0.1 * c as f32);
        let global = adj.spmm(&ops::matmul(&h, &w));
        for ctx in &ctxs {
            let topo = &ctx.layers[0];
            let h_cat =
                h.gather_rows(&ctx.local_vertices).vstack(&h.gather_rows(&topo.remote_deps));
            let local_out = topo.adj_local.spmm(&ops::matmul(&h_cat, &w));
            assert!(local_out.approx_eq(&global.gather_rows(&ctx.local_vertices), 1e-5));
        }
    }

    #[test]
    fn per_layer_topologies_can_differ() {
        let g1 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g2 = Graph::from_edges(4, &[(0, 1)]); // sampled-down layer
        let a1 = Arc::new(normalize::gcn_normalized_adjacency(&g1));
        let a2 = Arc::new(normalize::gcn_normalized_adjacency(&g2));
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let ctxs = build_worker_contexts(&[a1, a2], &p);
        assert_eq!(ctxs[0].layers.len(), 2);
        assert_eq!(ctxs[0].layers[0].remote_deps, vec![2, 3]);
        assert!(ctxs[0].layers[1].remote_deps.is_empty());
    }

    #[test]
    fn shared_arc_layers_share_topology() {
        let (adj, p) = setup();
        let ctxs = build_worker_contexts(&[Arc::clone(&adj), Arc::clone(&adj)], &p);
        assert!(Arc::ptr_eq(&ctxs[0].layers[0], &ctxs[0].layers[1]));
    }

    #[test]
    fn isolated_worker_has_no_deps() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&g));
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        let ctxs = build_worker_contexts(&[adj], &p);
        assert!(ctxs[0].layers[0].remote_deps.is_empty());
        assert!(ctxs[1].layers[0].remote_deps.is_empty());
    }
}
