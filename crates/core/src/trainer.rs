//! The epoch loop: trains a [`DistributedEngine`] to convergence and emits
//! a [`RunResult`].

use crate::config::TrainingConfig;
use crate::engine::DistributedEngine;
use crate::report::{EpochRecord, RunResult};
use ec_comm::ps::CheckpointError;
use ec_comm::HostTimer;
use ec_graph_data::{normalize, AttributedGraph};
use ec_partition::{Partition, Partitioner};
use ec_tensor::CsrMatrix;
use std::sync::Arc;

/// Trains EC-Graph (or any mode expressible in [`TrainingConfig`]) on
/// `data` partitioned by `partitioner`, using the standard GCN-normalized
/// adjacency for every layer.
///
/// Partitioning time is measured and added to the preprocessing time, as in
/// the paper's Fig. 9 end-to-end accounting.
pub fn train(
    data: Arc<AttributedGraph>,
    partitioner: &dyn Partitioner,
    config: TrainingConfig,
    system: &str,
) -> RunResult {
    let part_start = HostTimer::start();
    let partition = partitioner.partition(&data.graph, config.num_workers);
    let partition_s = part_start.elapsed_s();
    let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
    let adjs = vec![Arc::clone(&adj); config.num_layers()];
    train_prepartitioned(data, adjs, partition, config, system, partition_s)
}

/// Trains with explicit per-layer adjacencies and a ready partition;
/// `extra_preprocessing_s` is added to the preprocessing time (partitioning
/// and/or offline sampling performed by the caller).
pub fn train_prepartitioned(
    data: Arc<AttributedGraph>,
    adjs: Vec<Arc<CsrMatrix>>,
    partition: Partition,
    config: TrainingConfig,
    system: &str,
    extra_preprocessing_s: f64,
) -> RunResult {
    let mut engine = DistributedEngine::new(Arc::clone(&data), adjs, partition, config.clone());
    let mut result = RunResult {
        system: system.to_string(),
        dataset: data.name.clone(),
        num_layers: config.num_layers(),
        num_workers: config.num_workers,
        preprocessing_s: extra_preprocessing_s
            + engine.preprocessing().build_s
            + engine.preprocessing().feature_cache_s,
        ..Default::default()
    };
    if let Err(e) = run_epoch_loop(&mut engine, &config, &mut result) {
        // An in-memory restore can only fail when the snapshot and engine
        // diverged structurally — a bug, not a runtime condition. The loop
        // reports it as a typed error (it sits on the fault-recovery hot
        // path); this orchestration boundary is where aborting is allowed.
        panic!("crash recovery failed: {e}");
    }
    result.telemetry = engine.take_telemetry();
    result
}

/// Shared epoch loop with early stopping; appends records to `result`.
///
/// When the configured [`ec_faults::FaultPlan`] schedules worker crashes,
/// the loop also plays the failure-recovery protocol: it keeps an
/// in-memory checkpoint (refreshed every `resilience.checkpoint_every`
/// epochs), and a crash at epoch `E` discards all work since that
/// checkpoint — the discarded epochs' simulated time is charged to
/// [`RunResult::recovery_s`] — before restoring and replaying. Because a
/// restored engine replays deterministically, the post-recovery loss curve
/// matches the uninterrupted one.
///
/// # Errors
/// [`CheckpointError::Missing`] when a scheduled crash fires with no
/// checkpoint to roll back to, and any [`CheckpointError`] from
/// [`DistributedEngine::restore`] when the snapshot does not match the
/// engine — both indicate a caller bug, never a recoverable fault.
pub fn run_epoch_loop(
    engine: &mut DistributedEngine,
    config: &TrainingConfig,
    result: &mut RunResult,
) -> Result<(), CheckpointError> {
    let mut best_val = f64::MIN;
    let mut since_best = 0usize;
    let mut last_val = 0.0f64;
    let mut last_test = 0.0f64;

    let mut crash_epochs: Vec<usize> = config.faults.crashes.iter().map(|c| c.epoch).collect();
    crash_epochs.sort_unstable();
    let mut next_crash = 0usize;
    let ckpt_every = config.resilience.checkpoint_every;
    // Only pay for snapshots when they can ever be consumed.
    let mut checkpoint = (!crash_epochs.is_empty()).then(|| engine.snapshot());
    // Records that predate this loop (normally none) survive any rollback.
    let base_records = result.epochs.len();

    while engine.epochs_run() < config.max_epochs {
        let t = engine.epochs_run();
        if next_crash < crash_epochs.len() && crash_epochs[next_crash] == t {
            // A worker dies during epoch `t`: its in-memory state is gone,
            // so the cluster rolls back to the latest checkpoint. Each
            // scheduled crash fires once (the restarted worker stays up).
            next_crash += 1;
            let Some(ckpt) = checkpoint.as_ref() else {
                return Err(CheckpointError::Missing("crash recovery checkpoint"));
            };
            let keep = (base_records + ckpt.epoch()).min(result.epochs.len());
            result.recovery_s += result.epochs.drain(keep..).map(|e| e.sim_time()).sum::<f64>();
            result.crashes_recovered += 1;
            engine.telemetry_note_crash(t);
            engine.restore(ckpt)?;
            // Rebuild the early-stopping trackers from the surviving
            // history so the replay is indistinguishable from a run that
            // never went past the checkpoint.
            best_val = f64::MIN;
            since_best = 0;
            last_val = 0.0;
            last_test = 0.0;
            for e in &result.epochs[base_records..] {
                last_val = e.val_acc;
                last_test = e.test_acc;
                if e.val_acc > best_val {
                    best_val = e.val_acc;
                    since_best = 0;
                } else {
                    since_best += 1;
                }
            }
            continue;
        }
        if checkpoint.is_some() && ckpt_every > 0 && t > 0 && t.is_multiple_of(ckpt_every) {
            checkpoint = Some(engine.snapshot());
        }

        let stats = engine.run_epoch();
        if stats.epoch.is_multiple_of(config.eval_every) {
            let eval = engine.evaluate();
            last_val = eval.val;
            last_test = eval.test;
            if eval.val > best_val {
                best_val = eval.val;
                since_best = 0;
            } else {
                since_best += 1;
            }
        }
        result.epochs.push(EpochRecord {
            epoch: stats.epoch,
            loss: stats.loss,
            val_acc: last_val,
            test_acc: last_test,
            compute_s: stats.compute_s,
            comm_s: stats.comm_s,
            fp_bytes: stats.traffic.fp_bytes,
            bp_bytes: stats.traffic.bp_bytes,
            param_bytes: stats.traffic.param_bytes,
            retry_bytes: stats.traffic.retry_bytes,
            total_bytes: stats.traffic.total_bytes(),
            degraded: stats.degraded,
            degraded_drop: stats.degraded_drop,
            degraded_corrupt: stats.degraded_corrupt,
        });
        if let Some(patience) = config.patience {
            if since_best >= patience {
                break;
            }
        }
    }
    result.finalize();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BpMode, FpMode};
    use ec_graph_data::DatasetSpec;
    use ec_partition::hash::HashPartitioner;

    fn tiny_data() -> Arc<AttributedGraph> {
        Arc::new(DatasetSpec::cora().instantiate_with(120, 16, 3))
    }

    fn tiny_config(data: &AttributedGraph, epochs: usize) -> TrainingConfig {
        TrainingConfig {
            dims: vec![data.feature_dim(), 16, data.num_classes],
            num_workers: 3,
            max_epochs: epochs,
            ..TrainingConfig::defaults(data.feature_dim(), data.num_classes)
        }
    }

    #[test]
    fn exact_training_converges_on_tiny_replica() {
        let data = tiny_data();
        let config = tiny_config(&data, 60);
        let r = train(Arc::clone(&data), &HashPartitioner::default(), config, "ec-graph");
        assert_eq!(r.epochs.len(), 60);
        assert!(r.best_val_acc > 0.6, "val acc {} too low", r.best_val_acc);
        let first = r.epochs.first().unwrap().loss;
        let last = r.epochs.last().unwrap().loss;
        assert!(last < first, "loss {first} → {last} did not decrease");
    }

    #[test]
    fn compressed_training_moves_fewer_bytes() {
        let data = tiny_data();
        let mut cfg_exact = tiny_config(&data, 3);
        cfg_exact.dims = vec![data.feature_dim(), 16, 16, data.num_classes];
        let mut cfg_cp = cfg_exact.clone();
        cfg_cp.fp_mode = FpMode::Compressed { bits: 2 };
        cfg_cp.bp_mode = BpMode::Compressed { bits: 2 };
        let r_exact = train(Arc::clone(&data), &HashPartitioner::default(), cfg_exact, "non-cp");
        let r_cp = train(Arc::clone(&data), &HashPartitioner::default(), cfg_cp, "cp-2");
        let fp_exact: u64 = r_exact.epochs.iter().map(|e| e.fp_bytes).sum();
        let fp_cp: u64 = r_cp.epochs.iter().map(|e| e.fp_bytes).sum();
        assert!(fp_cp * 8 < fp_exact, "2-bit FP traffic {fp_cp} not ≪ exact {fp_exact}");
    }

    #[test]
    fn early_stopping_cuts_the_run_short() {
        let data = tiny_data();
        let mut config = tiny_config(&data, 500);
        config.patience = Some(5);
        let r = train(Arc::clone(&data), &HashPartitioner::default(), config, "ec-graph");
        assert!(r.epochs.len() < 500, "patience did not trigger");
    }
}
