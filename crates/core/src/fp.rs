//! Forward-pass message preparation: plain quantization, **ReqEC-FP**
//! (Algorithms 3–4) and DistGNN-style delayed refresh.
//!
//! Each function prepares the embedding rows one responding worker ships to
//! one requesting worker for one layer, returning the matrix the requester
//! will reconstruct together with the exact number of bytes the message
//! occupies on the simulated wire. Because both ends of ReqEC-FP maintain
//! identical trend state by construction (the responder sends exactly what
//! the requester stores), the simulation keeps a single [`TrendState`] per
//! (responder → requester, layer) tuple.

use ec_comm::codec;
use ec_compress::Quantized;
use ec_tensor::{ops, stats, Matrix};

/// Selector codes (paper: "00, 01 and 10 for compressed, predicted, and
/// average approximations").
pub const SELECT_CPS: u8 = 0;
/// Predicted approximation (`Ĥ_pdt`): costs no payload.
pub const SELECT_PDT: u8 = 1;
/// Average of predicted and compressed (`Ĥ_avg`).
pub const SELECT_AVG: u8 = 2;

/// Trend-group state shared by responder and requester for one
/// (responder → requester, layer) pair.
#[derive(Clone, Debug, Default)]
pub struct TrendState {
    /// Exact embeddings shipped at the last trend boundary (`H_base`).
    base: Option<Matrix>,
    /// Changing-rate matrix `M_cr` (zeros until the second exact send).
    m_cr: Option<Matrix>,
    /// Iteration at which `base` was captured.
    base_t: usize,
}

impl TrendState {
    /// The predicted candidate `Ĥ_pdt = H_base + M_cr · k` at iteration
    /// `t`, or `None` before the first trend boundary. This is what a
    /// requester can substitute for a lost non-boundary message under the
    /// EC-degrade resilience policy: the prediction needs no payload, and
    /// because non-boundary exchanges never mutate the trend state, both
    /// ends stay consistent.
    pub fn predict(&self, t: usize) -> Option<Matrix> {
        let base = self.base.as_ref()?;
        let m_cr = self.m_cr.as_ref()?;
        let k = t.saturating_sub(self.base_t) as f32;
        let mut pdt = base.clone();
        ops::axpy(&mut pdt, m_cr, k);
        Some(pdt)
    }

    /// Decomposes the state for checkpointing.
    pub fn to_parts(&self) -> (Option<&Matrix>, Option<&Matrix>, usize) {
        (self.base.as_ref(), self.m_cr.as_ref(), self.base_t)
    }

    /// Rebuilds a state captured by [`TrendState::to_parts`].
    pub fn from_parts(base: Option<Matrix>, m_cr: Option<Matrix>, base_t: usize) -> Self {
        Self { base, m_cr, base_t }
    }
}

/// Granularity at which the Selector chooses among the three candidate
/// approximations. The paper: "There are three kinds of granularity for
/// the approximate representations, including element-wise, vertex-wise
/// and matrix-wise schemas. We use vertex-wise approximations, which
/// yields the best balance between the message size and the accuracy
/// empirically." All three are implemented; `selector_granularity` in the
/// bench crate reproduces that comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Granularity {
    /// One selection per embedding coordinate (2 bits each — precise but
    /// selector-heavy, and the compressed payload cannot skip whole rows).
    Element,
    /// One selection per vertex (the paper's choice).
    #[default]
    Vertex,
    /// One selection for the entire message (1 byte — coarse).
    Matrix,
}

/// Outcome of one ReqEC-FP exchange.
#[derive(Clone, Debug)]
pub struct ReqEcOutcome {
    /// The embedding matrix the requester reconstructs and uses.
    pub reconstructed: Matrix,
    /// Fraction of vertices whose predicted approximation was selected —
    /// the Bit-Tuner's signal.
    pub proportion: f32,
    /// Bytes on the wire for this message.
    pub wire: u64,
    /// True when this exchange shipped exact embeddings (trend boundary).
    pub exact_sent: bool,
    /// Selector decision counts, indexed by [`SELECT_CPS`] / [`SELECT_PDT`]
    /// / [`SELECT_AVG`] (telemetry; all zero for boundary messages, which
    /// make no selection).
    pub selected: [u32; 3],
}

/// Uncompressed response (`Non-cp`): ships raw `f32` rows.
pub fn respond_exact(h_rows: &Matrix) -> (Matrix, u64) {
    (h_rows.clone(), codec::matrix_wire_size(h_rows) as u64)
}

/// Plain `B`-bit quantized response (`Cp-fp-B`).
///
/// The paper describes FP compression over a fixed `[0, 1]` domain (its
/// features are unit-normalized); hidden ReLU activations are not bounded
/// by 1, however, so — exactly as the paper already does for gradients
/// (Alg. 6 line 4) — the bucket range is computed per message and shipped
/// as two `f32`s. This keeps the error proportional to `range / 2^B`, the
/// scaling the paper's bit-sensitivity results (Fig. 6) rely on.
pub fn respond_compressed(h_rows: &Matrix, bits: u8) -> (Matrix, u64) {
    if h_rows.rows() == 0 {
        return (h_rows.clone(), 0);
    }
    let q = Quantized::compress(h_rows, bits);
    let wire = q.wire_size() as u64;
    (q.decompress(), wire)
}

/// One ReqEC-FP exchange (Algorithms 3 and 4) at iteration `t`.
///
/// * At trend boundaries (`(t+1) % t_tr == 0`) — and at `t = 0` to
///   bootstrap — the responder ships exact embeddings plus the
///   changing-rate matrix `M_cr = (H_now − H_base)/T_tr`.
/// * Otherwise the responder builds the three candidates
///   (`Ĥ_cps`, `Ĥ_pdt`, `Ĥ_avg`), selects per vertex by L1 distance
///   (Eq. 10), and ships the 2-bit selector array plus the compressed rows
///   of the non-predicted vertices only.
pub fn reqec_step(
    state: &mut TrendState,
    h_rows: &Matrix,
    bits: u8,
    t_tr: usize,
    t: usize,
) -> ReqEcOutcome {
    reqec_step_with(state, h_rows, bits, t_tr, t, Granularity::Vertex)
}

/// [`reqec_step`] with an explicit Selector granularity.
pub fn reqec_step_with(
    state: &mut TrendState,
    h_rows: &Matrix,
    bits: u8,
    t_tr: usize,
    t: usize,
    granularity: Granularity,
) -> ReqEcOutcome {
    let rows = h_rows.rows();
    let cols = h_rows.cols();
    if rows == 0 {
        return ReqEcOutcome {
            reconstructed: h_rows.clone(),
            proportion: 0.0,
            wire: 0,
            exact_sent: false,
            selected: [0; 3],
        };
    }
    // Non-boundary steps read the live trend group; when the group has not
    // been bootstrapped yet (`base` is `None`) control falls through to the
    // boundary path below, which creates it.
    if !(t + 1).is_multiple_of(t_tr) {
        if let (Some(base), Some(m_cr)) = (&state.base, &state.m_cr) {
            return reqec_nonboundary(base, m_cr, state.base_t, h_rows, bits, t, granularity);
        }
    }

    // Trend boundary (or bootstrap): ship the exact embeddings plus the
    // changing-rate matrix and reset the group.
    let m_cr = match &state.base {
        // Per-step changing rate over the actual elapsed interval
        // (equal to T_tr between regular boundaries; shorter only for
        // the bootstrap group).
        Some(base) => {
            let elapsed = (t - state.base_t).max(1) as f32;
            ops::scale(&ops::sub(h_rows, base), 1.0 / elapsed)
        }
        None => Matrix::zeros(rows, cols),
    };
    let wire = (codec::matrix_wire_size(h_rows) + codec::matrix_wire_size(&m_cr)) as u64;
    state.base = Some(h_rows.clone());
    state.m_cr = Some(m_cr);
    state.base_t = t;
    ReqEcOutcome {
        reconstructed: h_rows.clone(),
        proportion: 0.0,
        wire,
        exact_sent: true,
        selected: [0; 3],
    }
}

/// The non-boundary arm of [`reqec_step_with`]: candidate construction and
/// Selector choice against an established trend group.
fn reqec_nonboundary(
    base: &Matrix,
    m_cr: &Matrix,
    base_t: usize,
    h_rows: &Matrix,
    bits: u8,
    t: usize,
    granularity: Granularity,
) -> ReqEcOutcome {
    let rows = h_rows.rows();
    let cols = h_rows.cols();
    let k = (t - base_t) as f32;

    // The three candidates (Eqs. 7–9).
    let mut pdt = base.clone();
    ops::axpy(&mut pdt, m_cr, k);
    let q = Quantized::compress(h_rows, bits);
    let cps = q.decompress();
    let avg = ops::scale(&ops::add(&pdt, &cps), 0.5);

    match granularity {
        Granularity::Vertex => {
            // Selector: per-vertex L1 distances, pick the argmin (Eq. 10).
            let d_cps = stats::rowwise_l1_distance(&cps, h_rows);
            let d_pdt = stats::rowwise_l1_distance(&pdt, h_rows);
            let d_avg = stats::rowwise_l1_distance(&avg, h_rows);
            let mut reconstructed = Matrix::zeros(rows, cols);
            let mut selected = [0u32; 3];
            for v in 0..rows {
                let sid = stats::argmin(&[d_cps[v], d_pdt[v], d_avg[v]]) as u8;
                selected[sid as usize] += 1;
                let row = match sid {
                    SELECT_CPS => cps.row(v),
                    SELECT_PDT => pdt.row(v),
                    _ => avg.row(v),
                };
                reconstructed.set_row(v, row);
            }
            let predicted = selected[SELECT_PDT as usize] as usize;
            // Wire cost: 2-bit selector per vertex, compressed codes only
            // for the non-predicted vertices, one f32 proportion,
            // quantization header.
            let non_pdt = rows - predicted;
            let selector_bytes = 4 + (rows * 2).div_ceil(8);
            let payload_bytes = if non_pdt > 0 {
                17 + ec_compress::bitpack::packed_len(non_pdt * cols, bits)
            } else {
                0
            };
            let wire = (selector_bytes + payload_bytes + 4) as u64;
            let proportion = predicted as f32 / rows as f32;
            ReqEcOutcome { reconstructed, proportion, wire, exact_sent: false, selected }
        }
        Granularity::Element => {
            // Per-coordinate selection: most accurate reconstruction, but
            // the selector array costs 2 bits per element and the payload
            // still packs codes for every non-predicted element.
            let (h, c, p, a) = (h_rows.as_slice(), cps.as_slice(), pdt.as_slice(), avg.as_slice());
            let mut data = Vec::with_capacity(h.len());
            let mut selected = [0u32; 3];
            for i in 0..h.len() {
                let dc = (c[i] - h[i]).abs();
                let dp = (p[i] - h[i]).abs();
                let da = (a[i] - h[i]).abs();
                data.push(if dp <= dc && dp <= da {
                    selected[SELECT_PDT as usize] += 1;
                    p[i]
                } else if dc <= da {
                    selected[SELECT_CPS as usize] += 1;
                    c[i]
                } else {
                    selected[SELECT_AVG as usize] += 1;
                    a[i]
                });
            }
            let predicted = selected[SELECT_PDT as usize] as usize;
            let non_pdt = h.len() - predicted;
            let selector_bytes = 4 + (h.len() * 2).div_ceil(8);
            let payload_bytes =
                if non_pdt > 0 { 17 + ec_compress::bitpack::packed_len(non_pdt, bits) } else { 0 };
            let wire = (selector_bytes + payload_bytes + 4) as u64;
            let proportion = predicted as f32 / h.len() as f32;
            ReqEcOutcome {
                reconstructed: Matrix::from_vec(rows, cols, data),
                proportion,
                wire,
                exact_sent: false,
                selected,
            }
        }
        Granularity::Matrix => {
            // One selection for the whole message.
            let d_cps = stats::l1_norm(&ops::sub(&cps, h_rows));
            let d_pdt = stats::l1_norm(&ops::sub(&pdt, h_rows));
            let d_avg = stats::l1_norm(&ops::sub(&avg, h_rows));
            let sid = stats::argmin(&[d_cps, d_pdt, d_avg]) as u8;
            let (reconstructed, proportion) = match sid {
                SELECT_CPS => (cps, 0.0f32),
                SELECT_PDT => (pdt, 1.0),
                _ => (avg, 0.0),
            };
            let payload_bytes = if sid == SELECT_PDT { 0 } else { q.wire_size() };
            let wire = (1 + payload_bytes + 4) as u64;
            let mut selected = [0u32; 3];
            selected[sid as usize] = 1;
            ReqEcOutcome { reconstructed, proportion, wire, exact_sent: false, selected }
        }
    }
}

/// DistGNN-style delayed partial aggregation: each epoch only the rows with
/// `(row + t) % r == 0` are refreshed (uncompressed); the requester keeps
/// using its stale cache for the rest. The first call populates the cache
/// in full.
pub fn delayed_step(
    cache: &mut Option<Matrix>,
    h_rows: &Matrix,
    r: usize,
    t: usize,
) -> (Matrix, u64) {
    let rows = h_rows.rows();
    if rows == 0 {
        return (h_rows.clone(), 0);
    }
    match cache {
        None => {
            *cache = Some(h_rows.clone());
            (h_rows.clone(), codec::matrix_wire_size(h_rows) as u64)
        }
        Some(cached) => {
            let mut refreshed = 0usize;
            for v in 0..rows {
                if (v + t).is_multiple_of(r) {
                    cached.set_row(v, h_rows.row(v));
                    refreshed += 1;
                }
            }
            // Refreshed rows ship as (index, row) pairs plus a small header.
            let wire = (8 + refreshed * (4 + h_rows.cols() * 4)) as u64;
            (cached.clone(), wire)
        }
    }
}

/// The adaptive Bit-Tuner (Alg. 3 lines 13–18): doubles `B` (≤ 16) when
/// predicted embeddings exceed 60 %, halves it (≥ 1) below 40 %.
pub fn tune_bits(bits: u8, proportion: f32) -> u8 {
    if proportion > 0.6 && bits < 16 {
        bits * 2
    } else if proportion < 0.4 && bits > 1 {
        bits / 2
    } else {
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[[f32; 2]]) -> Matrix {
        Matrix::from_rows(&vals.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn exact_response_round_trips() {
        let h = rows(&[[0.1, 0.9], [0.4, 0.2]]);
        let (m, wire) = respond_exact(&h);
        assert_eq!(m, h);
        assert_eq!(wire, 8 + 16);
    }

    #[test]
    fn compressed_response_is_smaller_and_close() {
        let h = Matrix::from_fn(32, 16, |r, c| ((r + c) as f32 * 0.37).fract());
        let (exact, exact_wire) = respond_exact(&h);
        let (dec, wire) = respond_compressed(&h, 4);
        assert!(wire < exact_wire / 4);
        assert!(stats::l1_norm(&ops::sub(&dec, &exact)) / h.len() as f32 <= 0.05);
    }

    #[test]
    fn first_reqec_step_bootstraps_with_exact() {
        let mut st = TrendState::default();
        let h = rows(&[[0.5, 0.5]]);
        let out = reqec_step(&mut st, &h, 2, 5, 0);
        assert!(out.exact_sent);
        assert_eq!(out.reconstructed, h);
    }

    #[test]
    fn boundary_updates_changing_rate() {
        let mut st = TrendState::default();
        let h0 = rows(&[[0.0, 0.0]]);
        reqec_step(&mut st, &h0, 2, 5, 0);
        // Boundary at t=4, base captured at t=0 → M_cr = (h4 - h0)/4.
        let h4 = rows(&[[1.0, 0.5]]);
        let out = reqec_step(&mut st, &h4, 2, 5, 4);
        assert!(out.exact_sent);
        let mcr = st.m_cr.as_ref().unwrap();
        assert!((mcr.get(0, 0) - 0.25).abs() < 1e-6);
        assert!((mcr.get(0, 1) - 0.125).abs() < 1e-6);
    }

    #[test]
    fn prediction_wins_for_linear_trends() {
        // Embeddings evolving linearly are predicted almost exactly, so the
        // Selector should pick PDT and ship (nearly) nothing.
        let mut st = TrendState::default();
        let t_tr = 5;
        let at = |t: usize| Matrix::from_fn(4, 3, |r, c| 0.1 * t as f32 + 0.01 * (r + c) as f32);
        reqec_step(&mut st, &at(0), 1, t_tr, 0);
        let out4 = reqec_step(&mut st, &at(4), 1, t_tr, 4); // boundary: sets m_cr
        assert!(out4.exact_sent);
        let out5 = reqec_step(&mut st, &at(5), 1, t_tr, 5);
        assert!(!out5.exact_sent);
        assert!(out5.proportion > 0.9, "proportion {}", out5.proportion);
        assert!(out5.reconstructed.approx_eq(&at(5), 1e-4));
    }

    #[test]
    fn compressed_candidate_wins_for_erratic_changes() {
        let mut st = TrendState::default();
        reqec_step(&mut st, &rows(&[[0.0, 0.0]]), 8, 10, 0);
        // A jump the linear trend cannot see; 8-bit quantization is close.
        let h = rows(&[[0.9, 0.1]]);
        let out = reqec_step(&mut st, &h, 8, 10, 1);
        assert!(out.proportion < 0.5);
        assert!(out.reconstructed.approx_eq(&h, 0.01));
    }

    #[test]
    fn reconstruction_error_bounded_by_compression_error() {
        // The Selector can only improve on plain compression.
        let mut st = TrendState::default();
        let h_seq: Vec<Matrix> = (0..6)
            .map(|t| Matrix::from_fn(8, 4, |r, c| ((t * 13 + r * 7 + c) as f32 * 0.11).fract()))
            .collect();
        for (t, h) in h_seq.iter().enumerate() {
            let out = reqec_step(&mut st, h, 2, 4, t);
            if !out.exact_sent {
                let (plain, _) = respond_compressed(h, 2);
                let ec_err = stats::l1_norm(&ops::sub(&out.reconstructed, h));
                let plain_err = stats::l1_norm(&ops::sub(&plain, h));
                assert!(ec_err <= plain_err + 1e-5, "t={t}: {ec_err} > {plain_err}");
            }
        }
    }

    #[test]
    fn predicted_rows_cost_no_payload() {
        let mut st = TrendState::default();
        let at = |t: usize| Matrix::from_fn(16, 8, |_, c| 0.05 * t as f32 + 0.02 * c as f32);
        reqec_step(&mut st, &at(0), 4, 5, 0);
        reqec_step(&mut st, &at(4), 4, 5, 4);
        let out = reqec_step(&mut st, &at(5), 4, 5, 5);
        assert!((out.proportion - 1.0).abs() < 1e-6);
        // selector (4 + 4 bytes) + proportion only — no quantized payload.
        assert_eq!(out.wire, (4 + (16 * 2usize).div_ceil(8) + 4) as u64);
    }

    #[test]
    fn predict_matches_the_pdt_candidate() {
        let mut st = TrendState::default();
        assert!(st.predict(0).is_none(), "no prediction before the bootstrap");
        let at = |t: usize| Matrix::from_fn(4, 3, |r, c| 0.1 * t as f32 + 0.01 * (r + c) as f32);
        reqec_step(&mut st, &at(0), 1, 5, 0);
        reqec_step(&mut st, &at(4), 1, 5, 4);
        // Linear trend ⇒ the prediction at t = 6 is (nearly) exact, and it
        // must agree with what the Selector would build internally.
        let pdt = st.predict(6).unwrap();
        assert!(pdt.approx_eq(&at(6), 1e-4));
        // Round-trip through the checkpoint accessors.
        let (base, m_cr, base_t) = st.to_parts();
        let rebuilt = TrendState::from_parts(base.cloned(), m_cr.cloned(), base_t);
        assert_eq!(rebuilt.predict(6).unwrap(), pdt);
    }

    #[test]
    fn selector_counts_cover_every_vertex() {
        let mut st = TrendState::default();
        let at =
            |t: usize| Matrix::from_fn(8, 4, |r, c| ((t * 13 + r * 7 + c) as f32 * 0.11).fract());
        let boundary = reqec_step(&mut st, &at(0), 2, 4, 0);
        assert_eq!(boundary.selected, [0; 3], "boundaries make no selection");
        let out = reqec_step(&mut st, &at(1), 2, 4, 1);
        assert_eq!(out.selected.iter().sum::<u32>(), 8, "one decision per vertex");
        assert_eq!(out.selected[SELECT_PDT as usize] as f32 / 8.0, out.proportion);
    }

    #[test]
    fn delayed_first_call_ships_everything() {
        let mut cache = None;
        let h = rows(&[[1.0, 2.0], [3.0, 4.0]]);
        let (m, wire) = delayed_step(&mut cache, &h, 5, 0);
        assert_eq!(m, h);
        assert_eq!(wire, codec::matrix_wire_size(&h) as u64);
    }

    #[test]
    fn delayed_refreshes_one_in_r_rows() {
        let mut cache = None;
        let h0 = Matrix::zeros(10, 2);
        delayed_step(&mut cache, &h0, 5, 0);
        let h1 = Matrix::filled(10, 2, 1.0);
        let (m, wire) = delayed_step(&mut cache, &h1, 5, 1);
        // Rows with (v + 1) % 5 == 0 → v ∈ {4, 9} refreshed.
        let refreshed: Vec<usize> = (0..10).filter(|v| m.row(*v)[0] == 1.0).collect();
        assert_eq!(refreshed, vec![4, 9]);
        assert_eq!(wire, 8 + 2 * (4 + 8));
    }

    #[test]
    fn delayed_converges_to_fresh_after_r_epochs() {
        let mut cache = None;
        let h = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f32);
        delayed_step(&mut cache, &Matrix::zeros(6, 2), 3, 0);
        for t in 1..=3 {
            delayed_step(&mut cache, &h, 3, t);
        }
        assert_eq!(cache.unwrap(), h);
    }

    #[test]
    fn bit_tuner_thresholds() {
        assert_eq!(tune_bits(2, 0.7), 4);
        assert_eq!(tune_bits(16, 0.9), 16); // capped
        assert_eq!(tune_bits(4, 0.3), 2);
        assert_eq!(tune_bits(1, 0.1), 1); // floored
        assert_eq!(tune_bits(8, 0.5), 8); // dead zone
    }

    #[test]
    fn bit_tuner_stays_in_paper_set() {
        let paper_set = [1u8, 2, 4, 8, 16];
        for &b in &paper_set {
            assert!(paper_set.contains(&tune_bits(b, 0.9)));
            assert!(paper_set.contains(&tune_bits(b, 0.1)));
        }
    }

    #[test]
    fn element_granularity_is_most_accurate() {
        // Element-wise selection can mix candidates within one row, so its
        // reconstruction error is ≤ the vertex-wise one.
        let mut st_v = TrendState::default();
        let mut st_e = TrendState::default();
        let at =
            |t: usize| Matrix::from_fn(8, 6, |r, c| ((t * 13 + r * 7 + c * 3) as f32 * 0.17).sin());
        reqec_step_with(&mut st_v, &at(0), 1, 5, 0, Granularity::Vertex);
        reqec_step_with(&mut st_e, &at(0), 1, 5, 0, Granularity::Element);
        for t in 1..4 {
            let h = at(t);
            let v = reqec_step_with(&mut st_v, &h, 1, 5, t, Granularity::Vertex);
            let e = reqec_step_with(&mut st_e, &h, 1, 5, t, Granularity::Element);
            let err = |m: &Matrix| stats::l1_norm(&ops::sub(m, &h));
            assert!(
                err(&e.reconstructed) <= err(&v.reconstructed) + 1e-5,
                "t={t}: element {} > vertex {}",
                err(&e.reconstructed),
                err(&v.reconstructed)
            );
        }
    }

    #[test]
    fn matrix_granularity_has_tiny_selector_cost() {
        let mut st = TrendState::default();
        let at = |t: usize| Matrix::from_fn(32, 8, |_, c| 0.05 * t as f32 + 0.02 * c as f32);
        reqec_step_with(&mut st, &at(0), 4, 5, 0, Granularity::Matrix);
        reqec_step_with(&mut st, &at(4), 4, 5, 4, Granularity::Matrix);
        let out = reqec_step_with(&mut st, &at(5), 4, 5, 5, Granularity::Matrix);
        // Linear trend → the whole matrix selects PDT → 5 bytes total.
        assert!((out.proportion - 1.0).abs() < 1e-6);
        assert_eq!(out.wire, 5);
    }

    #[test]
    fn vertex_granularity_beats_matrix_on_mixed_rows() {
        // Half the rows follow the trend, half jump erratically: vertex-wise
        // selection adapts per row, matrix-wise cannot.
        let mut st_v = TrendState::default();
        let mut st_m = TrendState::default();
        let base = Matrix::from_fn(8, 4, |r, c| 0.1 * (r + c) as f32);
        reqec_step_with(&mut st_v, &base, 1, 10, 0, Granularity::Vertex);
        reqec_step_with(&mut st_m, &base, 1, 10, 0, Granularity::Matrix);
        let h = Matrix::from_fn(8, 4, |r, c| {
            if r < 4 {
                0.1 * (r + c) as f32
            } else {
                ((r * 5 + c) as f32 * 0.77).sin()
            }
        });
        let v = reqec_step_with(&mut st_v, &h, 1, 10, 1, Granularity::Vertex);
        let m = reqec_step_with(&mut st_m, &h, 1, 10, 1, Granularity::Matrix);
        let err = |x: &Matrix| stats::l1_norm(&ops::sub(x, &h));
        assert!(err(&v.reconstructed) <= err(&m.reconstructed) + 1e-5);
    }

    #[test]
    fn empty_dep_set_is_free() {
        let mut st = TrendState::default();
        let h = Matrix::zeros(0, 4);
        let out = reqec_step(&mut st, &h, 2, 5, 3);
        assert_eq!(out.wire, 0);
        let (_, wire) = respond_compressed(&h, 2);
        assert_eq!(wire, 0);
    }
}
