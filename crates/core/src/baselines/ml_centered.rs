//! AliGraph-FG: the ML-centered full-graph baseline.
//!
//! ML-centered systems cache each worker's **L-hop neighbourhood** so that
//! training needs no worker-to-worker traffic — at the price of redundant
//! computation: every worker re-computes the embeddings of its whole L-hop
//! closure every epoch, and on small-diameter graphs that closure "may
//! cover a large portion of the graph" (Section I). This module measures
//! exactly that effect: the per-epoch compute is a full GCN pass over each
//! worker's closure subgraph, and preprocessing pays the one-shot transfer
//! of the closure's features and adjacency from the parameter servers
//! (`O(ḡ^L · d₀)` in Table II).

use crate::report::{EpochRecord, RunResult};
use ec_comm::ps::AdamParams;
use ec_comm::stats::Channel;
use ec_comm::HostTimer;
use ec_comm::{NetworkModel, ParameterServerGroup, SimNetwork};
use ec_graph_data::{normalize, AttributedGraph};
use ec_tensor::{activations, ops, parallel, CsrMatrix, Matrix};
use std::sync::Arc;

/// Configuration for the AliGraph-FG-style run.
#[derive(Clone, Debug)]
pub struct MlCenteredConfig {
    /// Layer dimensions `[d₀, …, C]`.
    pub dims: Vec<usize>,
    /// Number of workers.
    pub num_workers: usize,
    /// Number of parameter servers.
    pub num_servers: usize,
    /// Server-side Adam hyper-parameters.
    pub adam: AdamParams,
    /// Network model.
    pub network: NetworkModel,
    /// Seed.
    pub seed: u64,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Early-stop patience.
    pub patience: Option<usize>,
    /// Dense-kernel thread budget (`0` = auto, `1` = sequential);
    /// bit-identical across any value.
    pub kernel_threads: usize,
}

/// One worker's cached L-hop world.
struct Closure {
    /// Global ids in the closure (locals first).
    vertices: Vec<usize>,
    /// Rows of the normalized adjacency for the closure, columns remapped
    /// into closure coordinates (out-of-closure entries only exist for the
    /// outermost ring, whose embeddings are never consumed).
    adj: CsrMatrix,
    /// Features of the closure vertices.
    features: Matrix,
    /// Labels of the closure vertices.
    labels: Vec<u32>,
    /// Closure-local indices of this worker's training vertices.
    train_local: Vec<usize>,
}

/// Computes each worker's L-hop closure and reports its redundancy.
fn build_closures(
    data: &AttributedGraph,
    adj: &CsrMatrix,
    num_workers: usize,
    num_layers: usize,
) -> Vec<Closure> {
    let owner = |v: usize| -> usize {
        ((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31) % num_workers as u64)
            as usize
    };
    let train_set: std::collections::HashSet<usize> = data.split.train.iter().copied().collect();
    (0..num_workers)
        .map(|w| {
            let locals: Vec<usize> = (0..data.num_vertices()).filter(|&v| owner(v) == w).collect();
            // BFS out to L hops.
            let mut in_closure: Vec<bool> = vec![false; data.num_vertices()];
            let mut vertices = locals.clone();
            for &v in &locals {
                in_closure[v] = true;
            }
            let mut frontier = locals.clone();
            for _ in 0..num_layers {
                let mut next = Vec::new();
                for &v in &frontier {
                    for &u in data.graph.neighbors(v) {
                        let u = u as usize;
                        if !in_closure[u] {
                            in_closure[u] = true;
                            vertices.push(u);
                            next.push(u);
                        }
                    }
                }
                frontier = next;
            }
            let index: std::collections::HashMap<usize, usize> =
                vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            let rows = adj.select_rows(&vertices);
            let sub = rows.remap_columns(&|c| index.get(&c).copied(), vertices.len());
            let features = data.features.gather_rows(&vertices);
            let labels = vertices.iter().map(|&v| data.labels[v]).collect();
            let train_local =
                locals.iter().filter(|v| train_set.contains(v)).map(|v| index[v]).collect();
            Closure { vertices, adj: sub, features, labels, train_local }
        })
        .collect()
}

/// Trains the AliGraph-FG-style ML-centered system.
pub fn train_ml_centered(
    data: Arc<AttributedGraph>,
    config: &MlCenteredConfig,
    system: &str,
) -> RunResult {
    let num_workers = config.num_workers;
    let num_layers = config.dims.len() - 1;
    let mut network = SimNetwork::new(num_workers + config.num_servers, config.network);
    let mut ps = ParameterServerGroup::new(
        &config.dims.windows(2).map(|w| (w[0], w[1])).collect::<Vec<_>>(),
        config.num_servers,
        config.adam,
        config.seed,
    );
    let server_node = |s: usize| num_workers + s;

    // Preprocessing: build + ship each closure (features and adjacency
    // pulled once from the parameter servers / graph store).
    let pre_start = HostTimer::start();
    let adj = normalize::gcn_normalized_adjacency(&data.graph);
    let closures = build_closures(&data, &adj, num_workers, num_layers);
    for (w, c) in closures.iter().enumerate() {
        let bytes = (c.vertices.len() * (4 + data.feature_dim() * 4) + c.adj.nnz() * 8) as u64;
        network.send(server_node(0), w, Channel::Forward, bytes);
    }
    let (_, transfer_s) = network.end_epoch();
    let preprocessing_s = pre_start.elapsed_s() + transfer_s;

    let total_train = data.split.train.len().max(1);
    let kt = config.kernel_threads;
    let full_adj = Arc::new(adj);
    let mut result = RunResult {
        system: system.to_string(),
        dataset: data.name.clone(),
        num_layers,
        num_workers,
        preprocessing_s,
        ..Default::default()
    };
    let mut best_val = f64::MIN;
    let mut since_best = 0usize;
    for epoch in 0..config.max_epochs {
        let mut step_max = 0.0f64;
        let mut loss_sum = 0.0f32;
        for (w, c) in closures.iter().enumerate() {
            for l in 0..num_layers {
                for (s, &bytes) in ps.pull_wire_sizes(l).iter().enumerate() {
                    network.send(server_node(s), w, Channel::Parameter, bytes);
                }
            }
            let start = HostTimer::start();
            if c.train_local.is_empty() {
                continue;
            }
            // Full manual GCN pass over the closure (the redundant work).
            let mut hs: Vec<Matrix> = vec![c.features.clone()];
            let mut zs: Vec<Matrix> = Vec::with_capacity(num_layers);
            for l in 0..num_layers {
                let (wl, bl) = ps.pull(l);
                let xw = parallel::matmul(&hs[l], wl, kt);
                let mut z = parallel::spmm(&c.adj, &xw, kt);
                z = ops::add_bias(&z, bl);
                hs.push(if l + 1 < num_layers { activations::relu(&z) } else { z.clone() });
                zs.push(z);
            }
            // Loss over this worker's own training vertices, globally
            // scaled.
            let probs = activations::softmax_rows(&hs[num_layers]);
            let mut g = Matrix::zeros(probs.rows(), probs.cols());
            let inv = 1.0 / total_train as f32;
            for &v in &c.train_local {
                let y = c.labels[v] as usize;
                loss_sum -= probs.get(v, y).max(1e-12).ln() * inv;
                let row = g.row_mut(v);
                for (cc, gv) in row.iter_mut().enumerate() {
                    let ind = if cc == y { 1.0 } else { 0.0 };
                    *gv = (probs.get(v, cc) - ind) * inv;
                }
            }
            // Manual backward over the closure.
            let mut grads: Vec<(Matrix, Vec<f32>)> = Vec::with_capacity(num_layers);
            for l in (0..num_layers).rev() {
                let ag = parallel::spmm(&c.adj, &g, kt);
                let y = parallel::matmul_at_b(&hs[l], &ag, kt);
                let b = ops::column_sums(&g);
                grads.push((y, b));
                if l > 0 {
                    let mask = activations::relu_grad(&zs[l - 1]);
                    g = ops::hadamard(&parallel::matmul_a_bt(&ag, ps.pull(l).0, kt), &mask);
                }
            }
            grads.reverse();
            ps.push(&grads);
            for (s, &bytes) in ps.push_wire_sizes().iter().enumerate() {
                network.send(w, server_node(s), Channel::Parameter, bytes);
            }
            step_max = step_max.max(start.elapsed_s());
        }
        ps.apply_update();
        let comm_s = network.flush_superstep();

        let logits = {
            let mut h = data.features.clone();
            for l in 0..num_layers {
                let (wl, bl) = ps.pull(l);
                let xw = parallel::matmul(&h, wl, kt);
                let mut z = parallel::spmm(&full_adj, &xw, kt);
                z = ops::add_bias(&z, bl);
                h = if l + 1 < num_layers { activations::relu(&z) } else { z };
            }
            h
        };
        let val_acc = ec_nn::metrics::accuracy(&logits, &data.labels, &data.split.val);
        let test_acc = ec_nn::metrics::accuracy(&logits, &data.labels, &data.split.test);
        let (traffic, _) = network.end_epoch();
        result.epochs.push(EpochRecord {
            epoch,
            loss: loss_sum,
            val_acc,
            test_acc,
            compute_s: step_max,
            comm_s,
            fp_bytes: traffic.fp_bytes,
            bp_bytes: traffic.bp_bytes,
            param_bytes: traffic.param_bytes,
            total_bytes: traffic.total_bytes(),
            ..Default::default()
        });
        if val_acc > best_val {
            best_val = val_acc;
            since_best = 0;
        } else {
            since_best += 1;
        }
        if let Some(p) = config.patience {
            if since_best >= p {
                break;
            }
        }
    }
    result.finalize();
    result
}

/// Redundancy factor: total closure vertices across workers divided by the
/// graph size — the ML-centered memory blow-up the paper's Table II
/// analyses (`ḡ^L` per vertex in the worst case).
pub fn redundancy_factor(data: &AttributedGraph, num_workers: usize, num_layers: usize) -> f64 {
    let adj = normalize::gcn_normalized_adjacency(&data.graph);
    let closures = build_closures(data, &adj, num_workers, num_layers);
    let total: usize = closures.iter().map(|c| c.vertices.len()).sum();
    total as f64 / data.num_vertices().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph_data::DatasetSpec;

    fn data() -> Arc<AttributedGraph> {
        Arc::new(DatasetSpec::cora().instantiate_with(150, 16, 6))
    }

    fn config(data: &AttributedGraph) -> MlCenteredConfig {
        MlCenteredConfig {
            dims: vec![data.feature_dim(), 16, data.num_classes],
            num_workers: 3,
            num_servers: 1,
            adam: AdamParams { lr: 0.02, ..Default::default() },
            network: NetworkModel::gigabit_ethernet(),
            seed: 3,
            max_epochs: 40,
            patience: None,
            kernel_threads: 1,
        }
    }

    #[test]
    fn ml_centered_learns() {
        let d = data();
        let r = train_ml_centered(Arc::clone(&d), &config(&d), "aligraph-fg-like");
        assert!(r.best_val_acc > 0.6, "val {}", r.best_val_acc);
    }

    #[test]
    fn no_per_epoch_vertex_traffic() {
        let d = data();
        let r = train_ml_centered(Arc::clone(&d), &config(&d), "aligraph-fg-like");
        // Only parameter traffic per epoch — that's the ML-centered deal.
        assert_eq!(r.epochs[0].fp_bytes, 0);
        assert!(r.epochs[0].param_bytes > 0);
    }

    #[test]
    fn redundancy_grows_with_layers() {
        let d = data();
        let r1 = redundancy_factor(&d, 3, 1);
        let r2 = redundancy_factor(&d, 3, 2);
        assert!(r2 >= r1, "redundancy {r2} < {r1}");
        assert!(r2 > 1.0, "2-hop closures should overlap ({r2})");
    }
}
