//! Single-machine full-batch baselines — the paper's DGL and PyG columns.
//!
//! Both train the exact same GCN to the exact same optimum; they differ in
//! how the sparse aggregation is executed, which is the real performance
//! difference between the two toolkits that Table IV surfaces:
//!
//! * **DGL-like** ([`LocalKind::DglLike`]) multiplies `H·W` first and runs
//!   a fused SpMM — DGL's kernel strategy (and EC-Graph's own
//!   "message-aggregating optimization");
//! * **PyG-like** ([`LocalKind::PygLike`]) materializes one message per
//!   edge (gather), then reduces (scatter) — PyG's classic
//!   `message`/`aggregate` path. It is slower and its peak memory grows
//!   with `nnz × d`, which is why PyG shows `-` (out of memory) on Reddit
//!   in the paper's Table IV. The same cutoff is modelled here.

use crate::report::{EpochRecord, RunResult};
use ec_comm::HostTimer;
use ec_graph_data::{normalize, AttributedGraph};
use ec_nn::loss::masked_softmax_cross_entropy;
use ec_nn::optim::Adam;
use ec_tensor::{activations, init, ops, parallel, CsrMatrix, Matrix};
use std::sync::Arc;

/// Which single-machine toolkit to emulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalKind {
    /// DGL-style fused SpMM aggregation.
    DglLike,
    /// PyG-style per-edge gather/scatter with materialized messages.
    PygLike,
}

impl LocalKind {
    /// Label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            LocalKind::DglLike => "dgl-like",
            LocalKind::PygLike => "pyg-like",
        }
    }
}

/// Configuration of a local run.
#[derive(Clone, Debug)]
pub struct LocalConfig {
    /// Layer dimensions `[d₀, …, C]`.
    pub dims: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight-init seed.
    pub seed: u64,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Early-stop patience on validation accuracy.
    pub patience: Option<usize>,
    /// Memory budget in bytes (the paper's small-cluster machines have
    /// 32 GB); runs whose estimated peak exceeds it fail like the paper's
    /// `-` entries.
    pub memory_limit: u64,
    /// Dense-kernel thread budget (`0` = auto, `1` = sequential). Results
    /// are bit-identical across any value. The PyG-like per-edge
    /// gather/scatter path intentionally stays sequential — the scatter
    /// order *is* the toolkit behavior being modelled.
    pub kernel_threads: usize,
}

/// Estimated peak transient memory of one training epoch, in bytes.
pub fn estimated_peak_bytes(kind: LocalKind, adj: &CsrMatrix, dims: &[usize]) -> u64 {
    let n = adj.rows() as u64;
    let d_max = dims.iter().copied().max().unwrap_or(0) as u64;
    let activations = 2 * n * d_max * 4 * (dims.len() as u64 - 1);
    match kind {
        LocalKind::DglLike => activations,
        // PyG materializes one message per edge at the widest layer.
        LocalKind::PygLike => activations + adj.nnz() as u64 * d_max * 4,
    }
}

/// PyG-style aggregation: materialize every edge message, then reduce.
fn edgewise_spmm(adj: &CsrMatrix, x: &Matrix) -> Matrix {
    let d = x.cols();
    // Gather: one message row per stored entry.
    let mut messages = Matrix::zeros(adj.nnz(), d);
    let mut owners = Vec::with_capacity(adj.nnz());
    let mut k = 0usize;
    for r in 0..adj.rows() {
        for (c, w) in adj.row_entries(r) {
            let msg = messages.row_mut(k);
            for (m, &v) in msg.iter_mut().zip(x.row(c)) {
                *m = w * v;
            }
            owners.push(r);
            k += 1;
        }
    }
    // Scatter-reduce.
    let mut out = Matrix::zeros(adj.rows(), d);
    for (k, &r) in owners.iter().enumerate() {
        let row = out.row_mut(r);
        for (o, &m) in row.iter_mut().zip(messages.row(k)) {
            *o += m;
        }
    }
    out
}

/// Trains a full-batch GCN on one machine. Returns `Err` when the
/// estimated peak memory exceeds the configured budget (the paper's `-`
/// cells).
pub fn train_local(
    data: Arc<AttributedGraph>,
    kind: LocalKind,
    config: &LocalConfig,
) -> Result<RunResult, String> {
    let pre_start = HostTimer::start();
    let adj = normalize::gcn_normalized_adjacency(&data.graph);
    let peak = estimated_peak_bytes(kind, &adj, &config.dims);
    if peak > config.memory_limit {
        return Err(format!(
            "{}: estimated peak {peak} bytes exceeds the {} byte budget",
            kind.label(),
            config.memory_limit
        ));
    }
    let num_layers = config.dims.len() - 1;
    let mut weights: Vec<Matrix> = config
        .dims
        .windows(2)
        .enumerate()
        .map(|(l, w)| init::xavier_uniform(w[0], w[1], config.seed.wrapping_add(l as u64)))
        .collect();
    let mut biases: Vec<Matrix> = config.dims[1..].iter().map(|&d| Matrix::zeros(1, d)).collect();
    let mut shapes: Vec<(usize, usize)> = weights.iter().map(Matrix::shape).collect();
    shapes.extend(biases.iter().map(Matrix::shape));
    let mut adam = Adam::new(&shapes, config.lr);
    let preprocessing_s = pre_start.elapsed_s();

    let kt = config.kernel_threads;
    let aggregate = |m: &Matrix| -> Matrix {
        match kind {
            LocalKind::DglLike => parallel::spmm(&adj, m, kt),
            LocalKind::PygLike => edgewise_spmm(&adj, m),
        }
    };

    let mut result = RunResult {
        system: kind.label().to_string(),
        dataset: data.name.clone(),
        num_layers,
        num_workers: 1,
        preprocessing_s,
        ..Default::default()
    };
    let mut best_val = f64::MIN;
    let mut since_best = 0usize;
    for epoch in 0..config.max_epochs {
        let start = HostTimer::start();
        // Forward.
        let mut hs: Vec<Matrix> = vec![data.features.clone()];
        let mut zs: Vec<Matrix> = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let xw = parallel::matmul(&hs[l], &weights[l], kt);
            let mut z = aggregate(&xw);
            z = ops::add_bias(&z, biases[l].row(0));
            hs.push(if l + 1 < num_layers { activations::relu(&z) } else { z.clone() });
            zs.push(z);
        }
        // Loss and manual backward (Eqs. 4–6 on a single machine).
        let (loss, mut g) =
            masked_softmax_cross_entropy(&hs[num_layers], &data.labels, &data.split.train);
        let mut w_grads: Vec<Matrix> = vec![Matrix::zeros(0, 0); num_layers];
        let mut b_grads: Vec<Matrix> = vec![Matrix::zeros(0, 0); num_layers];
        for l in (0..num_layers).rev() {
            let ag = aggregate(&g);
            w_grads[l] = parallel::matmul_at_b(&hs[l], &ag, kt);
            let cols = ops::column_sums(&g);
            b_grads[l] = Matrix::from_vec(1, cols.len(), cols);
            if l > 0 {
                let mask = activations::relu_grad(&zs[l - 1]);
                g = ops::hadamard(&parallel::matmul_a_bt(&ag, &weights[l], kt), &mask);
            }
        }
        let mut params: Vec<Matrix> =
            weights.iter().cloned().chain(biases.iter().cloned()).collect();
        let grads: Vec<Matrix> = w_grads.into_iter().chain(b_grads).collect();
        adam.step(&mut params, &grads);
        weights = params[..num_layers].to_vec();
        biases = params[num_layers..].to_vec();
        let compute_s = start.elapsed_s();

        // Evaluate (out-of-band, like the engine).
        let logits = &hs[num_layers];
        let val_acc = ec_nn::metrics::accuracy(logits, &data.labels, &data.split.val);
        let test_acc = ec_nn::metrics::accuracy(logits, &data.labels, &data.split.test);
        result.epochs.push(EpochRecord {
            epoch,
            loss,
            val_acc,
            test_acc,
            compute_s,
            ..Default::default()
        });
        if val_acc > best_val {
            best_val = val_acc;
            since_best = 0;
        } else {
            since_best += 1;
        }
        if let Some(p) = config.patience {
            if since_best >= p {
                break;
            }
        }
    }
    result.finalize();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph_data::DatasetSpec;

    fn data() -> Arc<AttributedGraph> {
        Arc::new(DatasetSpec::cora().instantiate_with(150, 16, 4))
    }

    fn config(data: &AttributedGraph) -> LocalConfig {
        LocalConfig {
            dims: vec![data.feature_dim(), 16, data.num_classes],
            lr: 0.02,
            seed: 1,
            max_epochs: 60,
            patience: None,
            memory_limit: 32 << 30,
            kernel_threads: 1,
        }
    }

    #[test]
    fn dgl_like_learns() {
        let d = data();
        let r = train_local(Arc::clone(&d), LocalKind::DglLike, &config(&d)).unwrap();
        assert!(r.best_val_acc > 0.6, "val {}", r.best_val_acc);
    }

    #[test]
    fn pyg_like_reaches_the_same_optimum_as_dgl_like() {
        // Same math, same seed → identical trajectories.
        let d = data();
        let cfg = LocalConfig { max_epochs: 10, ..config(&d) };
        let a = train_local(Arc::clone(&d), LocalKind::DglLike, &cfg).unwrap();
        let b = train_local(Arc::clone(&d), LocalKind::PygLike, &cfg).unwrap();
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert!((ea.loss - eb.loss).abs() < 1e-4, "losses diverge: {} vs {}", ea.loss, eb.loss);
        }
    }

    #[test]
    fn edgewise_matches_spmm() {
        let d = data();
        let adj = normalize::gcn_normalized_adjacency(&d.graph);
        let x = Matrix::from_fn(d.num_vertices(), 3, |r, c| ((r + c) as f32 * 0.17).sin());
        let a = adj.spmm(&x);
        let b = edgewise_spmm(&adj, &x);
        assert!(a.approx_eq(&b, 1e-4));
    }

    #[test]
    fn pyg_like_needs_more_memory() {
        let d = data();
        let adj = normalize::gcn_normalized_adjacency(&d.graph);
        let dims = vec![d.feature_dim(), 16, d.num_classes];
        assert!(
            estimated_peak_bytes(LocalKind::PygLike, &adj, &dims)
                > estimated_peak_bytes(LocalKind::DglLike, &adj, &dims)
        );
    }

    #[test]
    fn memory_budget_enforced() {
        let d = data();
        let cfg = LocalConfig { memory_limit: 1024, ..config(&d) };
        let err = train_local(Arc::clone(&d), LocalKind::PygLike, &cfg).unwrap_err();
        assert!(err.contains("exceeds"), "unexpected error: {err}");
    }
}
