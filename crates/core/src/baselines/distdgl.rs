//! Distributed mini-batch sampling trainers.
//!
//! One engine covers two of the paper's sampling-based systems:
//!
//! * **DistDGL-like** (`online_sampling = true`): graph-centered storage
//!   with *online* sampling — every iteration draws fresh layered blocks
//!   (paying the sampling RPCs and compute each time) and fetches the
//!   features of the sampled frontier from their owners;
//! * **AGL-like** (`online_sampling = false, prefetch_features = true`):
//!   ML-centered — blocks are sampled once in preprocessing (GraphFlat),
//!   features of every block are shipped to the worker up front, and each
//!   epoch re-vectorizes (re-gathers) the flattened sample before
//!   computing, the overhead the paper found AGL could not hide.
//!
//! Both train through the autodiff tape on the sampled blocks, push
//! gradients to the parameter servers once per iteration, and evaluate
//! against the full graph.

#![allow(clippy::needless_range_loop)] // vertex/worker ids are semantic, not positions

use crate::report::{EpochRecord, RunResult};
use crate::sampling::{make_batches, sample_blocks, Block};
use ec_comm::ps::AdamParams;
use ec_comm::stats::Channel;
use ec_comm::HostTimer;
use ec_comm::{NetworkModel, ParameterServerGroup, SimNetwork};
use ec_graph_data::{normalize, AttributedGraph};
use ec_nn::loss::masked_softmax_cross_entropy;
use ec_nn::Tape;
use ec_tensor::Matrix;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Configuration of a distributed mini-batch run.
#[derive(Clone, Debug)]
pub struct MiniBatchConfig {
    /// Layer dimensions `[d₀, …, C]`.
    pub dims: Vec<usize>,
    /// Fan-out per layer (forward order), e.g. the paper's `(20, 5)`.
    pub fanouts: Vec<usize>,
    /// Mini-batch size per worker.
    pub batch_size: usize,
    /// Number of workers.
    pub num_workers: usize,
    /// Number of parameter servers.
    pub num_servers: usize,
    /// Server-side Adam hyper-parameters.
    pub adam: AdamParams,
    /// Network model.
    pub network: NetworkModel,
    /// Seed.
    pub seed: u64,
    /// Maximum epochs.
    pub max_epochs: usize,
    /// Early-stop patience.
    pub patience: Option<usize>,
    /// Fresh blocks every iteration (DistDGL) or once at preprocessing
    /// (AGL / offline).
    pub online_sampling: bool,
    /// Ship features during preprocessing (ML-centered) instead of per
    /// iteration (graph-centered).
    pub prefetch_features: bool,
    /// Dense-kernel thread budget for the autodiff tape and full-graph
    /// evaluation (`0` = auto, `1` = sequential); bit-identical across
    /// any value.
    pub kernel_threads: usize,
}

/// Trains with distributed mini-batch sampling; see the module docs for
/// the system each flag combination reproduces.
pub fn train_minibatch(
    data: Arc<AttributedGraph>,
    config: &MiniBatchConfig,
    system: &str,
) -> RunResult {
    assert_eq!(config.fanouts.len() + 1, config.dims.len(), "need one fan-out per layer");
    let num_workers = config.num_workers;
    let num_layers = config.fanouts.len();
    let mut network = SimNetwork::new(num_workers + config.num_servers, config.network);
    let mut ps = ParameterServerGroup::new(
        &config.dims.windows(2).map(|w| (w[0], w[1])).collect::<Vec<_>>(),
        config.num_servers,
        config.adam,
        config.seed,
    );
    let server_node = |s: usize| num_workers + s;

    // Vertex ownership (hash partition, like the engine's default).
    let owner = |v: usize| -> usize {
        ((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31) % num_workers as u64)
            as usize
    };
    let mut train_by_worker: Vec<Vec<usize>> = vec![Vec::new(); num_workers];
    for &v in &data.split.train {
        train_by_worker[owner(v)].push(v);
    }
    let d0 = data.feature_dim();

    // Preprocessing: offline sampling (and feature prefetch for the
    // ML-centered variant).
    let pre_start = HostTimer::start();
    let mut offline_blocks: Vec<Vec<(Vec<usize>, Vec<Block>)>> = Vec::new();
    if !config.online_sampling {
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xB10C);
        for w in 0..num_workers {
            let batches = make_batches(&train_by_worker[w], config.batch_size, &mut rng);
            let per_batch: Vec<(Vec<usize>, Vec<Block>)> = batches
                .into_iter()
                .map(|seeds| {
                    let blocks = sample_blocks(&data.graph, &seeds, &config.fanouts, &mut rng);
                    (seeds, blocks)
                })
                .collect();
            if config.prefetch_features {
                for (_, blocks) in &per_batch {
                    let remote = blocks[0].src.iter().filter(|&&v| owner(v) != w).count();
                    for j in 0..num_workers {
                        if j == w {
                            continue;
                        }
                        let share = remote / (num_workers - 1).max(1);
                        network.send(j, w, Channel::Forward, (8 + share * (4 + d0 * 4)) as u64);
                    }
                }
            }
            offline_blocks.push(per_batch);
        }
    }
    let (_, prefetch_s) = network.end_epoch();
    let preprocessing_s = pre_start.elapsed_s() + prefetch_s;

    let mut result = RunResult {
        system: system.to_string(),
        dataset: data.name.clone(),
        num_layers,
        num_workers,
        preprocessing_s,
        ..Default::default()
    };

    let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
    let max_batches = train_by_worker
        .iter()
        .map(|t| t.len().div_ceil(config.batch_size))
        .max()
        .unwrap_or(0)
        .max(1);
    let total_train = data.split.train.len().max(1);

    let mut best_val = f64::MIN;
    let mut since_best = 0usize;
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x0815);
    for epoch in 0..config.max_epochs {
        let mut compute_s = 0.0f64;
        let mut comm_s = 0.0f64;
        let mut loss_sum = 0.0f32;
        let mut loss_count = 0usize;

        // Per-worker fresh batches when sampling online.
        let online_batches: Vec<Vec<Vec<usize>>> = if config.online_sampling {
            (0..num_workers)
                .map(|w| make_batches(&train_by_worker[w], config.batch_size, &mut rng))
                .collect()
        } else {
            Vec::new()
        };

        for it in 0..max_batches {
            let mut step_max = 0.0f64;
            for w in 0..num_workers {
                // Parameter pull.
                for l in 0..num_layers {
                    for (s, &bytes) in ps.pull_wire_sizes(l).iter().enumerate() {
                        network.send(server_node(s), w, Channel::Parameter, bytes);
                    }
                }
                let start = HostTimer::start();
                let batch: Option<(Vec<usize>, Vec<Block>)> = if config.online_sampling {
                    online_batches[w].get(it).map(|seeds| {
                        let blocks = sample_blocks(&data.graph, seeds, &config.fanouts, &mut rng);
                        // Sampling RPCs for remote frontier vertices.
                        for block in &blocks {
                            let remote = block.dst.iter().filter(|&&v| owner(v) != w).count();
                            if remote > 0 {
                                network.send(
                                    w,
                                    (w + 1) % num_workers,
                                    Channel::Control,
                                    (remote * 16) as u64,
                                );
                            }
                        }
                        (seeds.clone(), blocks)
                    })
                } else {
                    offline_blocks[w].get(it).cloned()
                };
                let Some((seeds, blocks)) = batch else {
                    continue;
                };
                // Feature fetch for the input frontier (graph-centered).
                if !config.prefetch_features {
                    let remote = blocks[0].src.iter().filter(|&&v| owner(v) != w).count();
                    if remote > 0 {
                        let bytes = (8 + remote * (4 + d0 * 4)) as u64;
                        network.send((w + 1) % num_workers, w, Channel::Forward, bytes);
                    }
                }
                // Forward/backward on the blocks via the tape.
                let mut tape = Tape::with_threads(config.kernel_threads);
                let feats = data.features.gather_rows(&blocks[0].src);
                let mut h = tape.constant(feats);
                let w_ids: Vec<_> =
                    (0..num_layers).map(|l| tape.parameter(ps.pull(l).0.clone())).collect();
                let b_ids: Vec<_> = (0..num_layers)
                    .map(|l| {
                        let b = ps.pull(l).1.to_vec();
                        let len = b.len();
                        tape.parameter(Matrix::from_vec(1, len, b))
                    })
                    .collect();
                for (l, block) in blocks.iter().enumerate() {
                    let xw = tape.matmul(h, w_ids[l]);
                    let agg = tape.spmm(Arc::new(block.adj.clone()), xw);
                    let z = tape.add_bias(agg, b_ids[l]);
                    h = if l + 1 < num_layers { tape.relu(z) } else { z };
                }
                let labels: Vec<u32> = seeds.iter().map(|&v| data.labels[v]).collect();
                let mask: Vec<usize> = (0..seeds.len()).collect();
                let (loss, mut grad) = masked_softmax_cross_entropy(tape.value(h), &labels, &mask);
                // Rescale from batch-mean to global-batch-mean so worker
                // contributions sum correctly at the servers.
                let scale = seeds.len() as f32 / total_train as f32 * max_batches as f32;
                grad.map_inplace(|x| x * scale);
                tape.backward(h, grad);
                let grads: Vec<(Matrix, Vec<f32>)> = (0..num_layers)
                    .map(|l| {
                        (
                            tape.grad(w_ids[l]).unwrap().clone(),
                            tape.grad(b_ids[l]).unwrap().clone().into_vec(),
                        )
                    })
                    .collect();
                ps.push(&grads);
                for (s, &bytes) in ps.push_wire_sizes().iter().enumerate() {
                    network.send(w, server_node(s), Channel::Parameter, bytes);
                }
                loss_sum += loss;
                loss_count += 1;
                step_max = step_max.max(start.elapsed_s());
            }
            ps.apply_update();
            compute_s += step_max;
            comm_s += network.flush_superstep();
        }

        // Full-graph evaluation with the current parameters.
        let logits = full_forward(&ps, &adj, &data.features, num_layers, config.kernel_threads);
        let val_acc = ec_nn::metrics::accuracy(&logits, &data.labels, &data.split.val);
        let test_acc = ec_nn::metrics::accuracy(&logits, &data.labels, &data.split.test);
        let (traffic, _) = network.end_epoch();
        result.epochs.push(EpochRecord {
            epoch,
            loss: loss_sum / loss_count.max(1) as f32,
            val_acc,
            test_acc,
            compute_s,
            comm_s,
            fp_bytes: traffic.fp_bytes,
            bp_bytes: traffic.bp_bytes,
            param_bytes: traffic.param_bytes,
            total_bytes: traffic.total_bytes(),
            ..Default::default()
        });
        if val_acc > best_val {
            best_val = val_acc;
            since_best = 0;
        } else {
            since_best += 1;
        }
        if let Some(p) = config.patience {
            if since_best >= p {
                break;
            }
        }
    }
    result.finalize();
    result
}

fn full_forward(
    ps: &ParameterServerGroup,
    adj: &ec_tensor::CsrMatrix,
    features: &Matrix,
    num_layers: usize,
    kernel_threads: usize,
) -> Matrix {
    let mut h = features.clone();
    for l in 0..num_layers {
        let (w, b) = ps.pull(l);
        let xw = ec_tensor::parallel::matmul(&h, w, kernel_threads);
        let mut z = ec_tensor::parallel::spmm(adj, &xw, kernel_threads);
        z = ec_tensor::ops::add_bias(&z, b);
        h = if l + 1 < num_layers { ec_tensor::activations::relu(&z) } else { z };
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_graph_data::DatasetSpec;

    fn data() -> Arc<AttributedGraph> {
        Arc::new(DatasetSpec::cora().instantiate_with(150, 16, 5))
    }

    fn config(data: &AttributedGraph) -> MiniBatchConfig {
        MiniBatchConfig {
            dims: vec![data.feature_dim(), 16, data.num_classes],
            fanouts: vec![5, 5],
            batch_size: 16,
            num_workers: 3,
            num_servers: 1,
            adam: AdamParams { lr: 0.02, ..Default::default() },
            network: NetworkModel::gigabit_ethernet(),
            seed: 2,
            max_epochs: 30,
            patience: None,
            online_sampling: true,
            prefetch_features: false,
            kernel_threads: 1,
        }
    }

    #[test]
    fn distdgl_like_learns() {
        let d = data();
        let r = train_minibatch(Arc::clone(&d), &config(&d), "distdgl-like");
        assert!(r.best_val_acc > 0.5, "val {}", r.best_val_acc);
        let first = r.epochs.first().unwrap().loss;
        let last = r.epochs.last().unwrap().loss;
        assert!(last < first, "loss {first} → {last}");
    }

    #[test]
    fn agl_like_prefetches_and_learns() {
        let d = data();
        let cfg = MiniBatchConfig { online_sampling: false, prefetch_features: true, ..config(&d) };
        let r = train_minibatch(Arc::clone(&d), &cfg, "agl-like");
        assert!(r.best_val_acc > 0.5, "val {}", r.best_val_acc);
        // ML-centered: no per-epoch forward feature traffic.
        assert_eq!(r.epochs[0].fp_bytes, 0);
        assert!(r.preprocessing_s > 0.0);
    }

    #[test]
    fn online_sampling_fetches_features_each_epoch() {
        let d = data();
        let r = train_minibatch(Arc::clone(&d), &config(&d), "distdgl-like");
        assert!(r.epochs[0].fp_bytes > 0, "expected per-epoch feature traffic");
    }
}
