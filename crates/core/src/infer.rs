//! Read-only inference over trained weights — the code path shared by
//! [`crate::engine::DistributedEngine::evaluate`] and the `ec-serve`
//! serving layer.
//!
//! Training needs the full engine (partition contexts, compensation state,
//! parameter servers); a pure forward query needs none of that. This module
//! isolates the forward kernels behind [`ModelWeights`], a plain value type
//! that can be built from a live engine *or* loaded straight from an
//! on-disk checkpoint written by
//! [`crate::engine::DistributedEngine::save_checkpoint`] — so a serving
//! process never has to construct a training engine at all.
//!
//! Bit-identity contract: [`ModelWeights::forward`] reproduces the
//! historical `forward_global` loop exactly (same kernels, same layer
//! order), and [`ModelWeights::output_row`] replays the final layer's
//! SpMM/bias accumulation in the same element order — so a per-vertex
//! serving answer computed from exact layer-`L−1` rows is byte-identical
//! to the corresponding row of the full-graph forward pass. The serving
//! cache-consistency tests rely on this.

use crate::config::ModelKind;
use ec_comm::ps::CheckpointError;
use ec_tensor::{activations, ops, parallel, CsrMatrix, Matrix};
use std::sync::Arc;

/// A trained model's weights, detached from any engine: one `(W, b)` pair
/// per parameter slot, laid out exactly like the parameter servers store
/// them (layers `0..L`, then — for GraphSAGE — the self/root transforms at
/// slots `L..2L`).
#[derive(Clone, Debug)]
pub struct ModelWeights {
    model: ModelKind,
    slots: Vec<(Matrix, Vec<f32>)>,
}

impl ModelWeights {
    /// Wraps a parameter snapshot (the layout `DistributedEngine::weights`
    /// returns) as an inference model.
    ///
    /// # Panics
    /// Panics when the slot count is inconsistent with the model kind
    /// (GraphSAGE carries two slots per layer).
    pub fn from_parts(model: ModelKind, slots: Vec<(Matrix, Vec<f32>)>) -> Self {
        assert!(!slots.is_empty(), "a model needs at least one layer");
        if model == ModelKind::Sage {
            assert!(slots.len().is_multiple_of(2), "GraphSAGE checkpoints carry 2 slots per layer");
        }
        Self { model, slots }
    }

    /// Loads the weights saved by `DistributedEngine::save_checkpoint` /
    /// `ParameterServerGroup::save_weights`. The file records shapes, so no
    /// engine or configuration is needed — only the model kind, which fixes
    /// how the slots split into aggregate and self transforms.
    ///
    /// # Errors
    /// Returns a [`CheckpointError`] on I/O failure, truncation, or a slot
    /// count that contradicts `model`.
    pub fn load(path: &std::path::Path, model: ModelKind) -> Result<Self, CheckpointError> {
        let buf = std::fs::read(path)?;
        let head: [u8; 4] = buf
            .get(0..4)
            .and_then(|s| s.try_into().ok())
            .ok_or(CheckpointError::Truncated("slot count"))?;
        let count = u32::from_le_bytes(head) as usize;
        if count == 0 || (model == ModelKind::Sage && !count.is_multiple_of(2)) {
            return Err(CheckpointError::LayerCount { found: count, expected: count.max(2) });
        }
        let mut slice = &buf[4..];
        let mut slots = Vec::with_capacity(count);
        for _ in 0..count {
            let w = ec_comm::codec::get_matrix(&mut slice)?;
            let b = ec_comm::codec::get_matrix(&mut slice)?;
            slots.push((w, b.into_vec()));
        }
        Ok(Self { model, slots })
    }

    /// The model kind these weights drive.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// Number of GNN layers `L`.
    pub fn num_layers(&self) -> usize {
        match self.model {
            ModelKind::Gcn => self.slots.len(),
            ModelKind::Sage => self.slots.len() / 2,
        }
    }

    /// Layer dimensions `[d₀, h₁, …, C]`, recovered from the weight shapes.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.slots[0].0.rows()];
        dims.extend(self.slots[..self.num_layers()].iter().map(|(w, _)| w.cols()));
        dims
    }

    /// The output (class) dimensionality.
    pub fn output_dim(&self) -> usize {
        self.slots[self.num_layers() - 1].0.cols()
    }

    /// The aggregate weight and bias of layer `l`.
    pub fn layer(&self, l: usize) -> (&Matrix, &[f32]) {
        let (w, b) = &self.slots[l];
        (w, b)
    }

    /// The GraphSAGE self/root transform of layer `l` (`None` for GCN).
    pub fn self_weight(&self, l: usize) -> Option<&Matrix> {
        (self.model == ModelKind::Sage).then(|| &self.slots[self.num_layers() + l].0)
    }

    /// Total serialized size of every slot on the parameter wire — the byte
    /// charge for shipping this model to one serving worker.
    pub fn wire_size(&self) -> u64 {
        self.slots
            .iter()
            // The bias travels as a 1×n matrix, exactly like the
            // checkpoint writes it.
            .map(|(w, b)| (ec_comm::codec::matrix_wire_size(w) + 8 + 4 * b.len()) as u64)
            .sum()
    }

    /// Full-graph forward pass: exactly the historical
    /// `DistributedEngine::forward_global` loop (evaluation is out-of-band,
    /// no compression). `adjs` holds one normalized adjacency per layer.
    pub fn forward(
        &self,
        adjs: &[Arc<CsrMatrix>],
        features: &Matrix,
        kernel_threads: usize,
    ) -> Matrix {
        self.forward_through(adjs, features, self.num_layers(), kernel_threads)
    }

    /// Forward pass stopping after `upto` layers (so `upto = L - 1` yields
    /// the layer the serving store materializes: the last *hidden*
    /// activations `H^{L-1}`, ReLU applied). `upto = L` is [`Self::forward`].
    pub fn forward_through(
        &self,
        adjs: &[Arc<CsrMatrix>],
        features: &Matrix,
        upto: usize,
        kernel_threads: usize,
    ) -> Matrix {
        let num_layers = self.num_layers();
        assert!(upto <= num_layers, "layer {upto} out of range (L = {num_layers})");
        assert_eq!(adjs.len(), num_layers, "need one adjacency per layer");
        let kt = kernel_threads;
        let mut h = features.clone();
        for (l, adj) in adjs.iter().enumerate().take(upto) {
            let (w, b) = self.layer(l);
            let xw = parallel::matmul(&h, w, kt);
            let mut z = parallel::spmm(adj, &xw, kt);
            if let Some(ws) = self.self_weight(l) {
                ops::add_assign(&mut z, &parallel::matmul(&h, ws, kt));
            }
            z = ops::add_bias(&z, b);
            h = if l + 1 < num_layers { activations::relu(&z) } else { z };
        }
        h
    }

    /// Projects one layer-`L−1` embedding row through the final aggregate
    /// weight: the row `h · W^{L-1}` of the full matmul, reproduced with the
    /// same accumulation order as [`ec_tensor::ops::matmul`] so the result
    /// is bit-identical to the batched kernel's row.
    pub fn project_row(&self, h_row: &[f32]) -> Vec<f32> {
        row_times(h_row, self.layer(self.num_layers() - 1).0)
    }

    /// Same projection through the final GraphSAGE self transform (`None`
    /// for GCN).
    pub fn project_self_row(&self, h_row: &[f32]) -> Option<Vec<f32>> {
        self.self_weight(self.num_layers() - 1).map(|ws| row_times(h_row, ws))
    }

    /// Computes the final-layer output (logits) row of global vertex `v`
    /// from projected neighbour rows: `xw_of(c)` must return
    /// [`Self::project_row`] of vertex `c`'s layer-`L−1` embedding, and
    /// `self_term` the projected self row for GraphSAGE (ignored for GCN).
    ///
    /// Replays the SpMM accumulation in CSR entry order, then the self
    /// term, then the bias — the exact element order of the full-graph
    /// forward pass, so exact inputs give bit-identical logits.
    pub fn output_row<'a>(
        &self,
        adj_last: &CsrMatrix,
        v: usize,
        mut xw_of: impl FnMut(usize) -> &'a [f32],
        self_term: Option<&[f32]>,
    ) -> Vec<f32> {
        let (_, bias) = self.layer(self.num_layers() - 1);
        let mut z = vec![0.0f32; self.output_dim()];
        for (c, a) in adj_last.row_entries(v) {
            let xw = xw_of(c);
            for (o, &x) in z.iter_mut().zip(xw) {
                *o += a * x;
            }
        }
        if self.model == ModelKind::Sage {
            if let Some(xs) = self_term {
                for (o, &x) in z.iter_mut().zip(xs) {
                    *o += x;
                }
            }
        }
        for (o, &b) in z.iter_mut().zip(bias) {
            *o += b;
        }
        z
    }
}

/// One row of `h · W`, accumulated exactly like [`ec_tensor::ops::matmul`]
/// computes it (k-major with the zero-skip, streaming over `W`'s rows).
fn row_times(h_row: &[f32], w: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; w.cols()];
    for (p, &av) in h_row.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let brow = w.row(p);
        for (o, &bv) in out.iter_mut().zip(brow) {
            *o += av * bv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BpMode, FpMode, TrainingConfig};
    use crate::engine::DistributedEngine;
    use ec_graph_data::{normalize, DatasetSpec};
    use ec_partition::hash::HashPartitioner;
    use ec_partition::Partitioner;

    fn trained_engine(model: ModelKind, epochs: usize) -> (DistributedEngine, Vec<Arc<CsrMatrix>>) {
        let data = Arc::new(DatasetSpec::cora().instantiate_with(120, 10, 3));
        let config = TrainingConfig {
            dims: vec![10, 8, data.num_classes],
            model,
            num_workers: 3,
            fp_mode: FpMode::Exact,
            bp_mode: BpMode::Exact,
            seed: 5,
            ..TrainingConfig::defaults(10, data.num_classes)
        };
        let adj = Arc::new(normalize::gcn_normalized_adjacency(&data.graph));
        let adjs = vec![adj; 2];
        let partition = HashPartitioner::default().partition(&data.graph, 3);
        let mut e = DistributedEngine::new(data, adjs.clone(), partition, config);
        for _ in 0..epochs {
            e.run_epoch();
        }
        (e, adjs)
    }

    #[test]
    fn forward_matches_engine_forward_global() {
        for model in [ModelKind::Gcn, ModelKind::Sage] {
            let (e, adjs) = trained_engine(model, 2);
            let via_engine = e.forward_global();
            let via_model = e.inference_model().forward(&adjs, &e.data().features, 1);
            assert_eq!(via_engine.as_slice(), via_model.as_slice(), "{model:?} diverged");
        }
    }

    #[test]
    fn output_row_is_bit_identical_to_full_forward() {
        for model in [ModelKind::Gcn, ModelKind::Sage] {
            let (e, adjs) = trained_engine(model, 2);
            let m = e.inference_model();
            let logits = m.forward(&adjs, &e.data().features, 1);
            let hidden = m.forward_through(&adjs, &e.data().features, m.num_layers() - 1, 1);
            // Project every row once, then replay the final layer per vertex.
            let xw: Vec<Vec<f32>> =
                (0..hidden.rows()).map(|r| m.project_row(hidden.row(r))).collect();
            for v in 0..logits.rows() {
                let self_term = m.project_self_row(hidden.row(v));
                let row = m.output_row(&adjs[1], v, |c| &xw[c], self_term.as_deref());
                let want: Vec<u32> = logits.row(v).iter().map(|x| x.to_bits()).collect();
                let got: Vec<u32> = row.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got, want, "{model:?} vertex {v} logits diverged");
            }
        }
    }

    #[test]
    fn checkpoint_loads_without_an_engine() {
        let (e, adjs) = trained_engine(ModelKind::Gcn, 2);
        let mut path = std::env::temp_dir();
        path.push(format!("ecgraph-infer-ckpt-{}.bin", std::process::id()));
        e.save_checkpoint(&path).unwrap();
        let loaded = ModelWeights::load(&path, ModelKind::Gcn).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.num_layers(), 2);
        assert_eq!(loaded.dims(), vec![10, 8, e.data().num_classes]);
        let a = e.inference_model().forward(&adjs, &e.data().features, 1);
        let b = loaded.forward(&adjs, &e.data().features, 1);
        assert_eq!(a.as_slice(), b.as_slice(), "loaded weights must reproduce the forward pass");
    }

    #[test]
    fn load_rejects_garbage() {
        let mut path = std::env::temp_dir();
        path.push(format!("ecgraph-infer-junk-{}.bin", std::process::id()));
        std::fs::write(&path, [1, 0]).unwrap();
        assert!(ModelWeights::load(&path, ModelKind::Gcn).is_err());
        std::fs::write(&path, 3u32.to_le_bytes()).unwrap();
        assert!(ModelWeights::load(&path, ModelKind::Sage).is_err(), "odd Sage slot count");
        std::fs::remove_file(&path).ok();
    }
}
