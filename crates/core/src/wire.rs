//! Concrete wire formats for every vertex message the engine exchanges —
//! the gRPC/protobuf layer of the original system.
//!
//! The engine charges each message's byte count analytically (computing a
//! size is cheaper than serializing gigabytes inside a simulation). This
//! module makes those charges *honest*: every message kind can actually be
//! serialized, deserialized, and measured, and the tests assert that the
//! analytic formulas in [`crate::fp`] / [`crate::bp`] equal the real
//! serialized sizes byte-for-byte.

use ec_comm::codec;
use ec_compress::{bitpack, Quantized};
use ec_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A forward-pass response from a responding worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FpMessage {
    /// Trend-boundary message: exact embeddings plus the changing-rate
    /// matrix (`rm.buildMessage(H_res, M_cr)` in Alg. 4).
    Exact {
        /// The requested embedding rows, uncompressed.
        h: Matrix,
        /// The changing-rate matrix `M_cr`.
        m_cr: Matrix,
    },
    /// Plain quantized embeddings (`Cp-fp`).
    Compressed(Quantized),
    /// ReqEC-FP selected message: 2-bit selector per vertex plus the
    /// compressed rows of the non-predicted vertices and the Bit-Tuner
    /// proportion (`rm.buildMessage(SltArr, Ĥ_cps, proportion)` in Alg. 4).
    Selected {
        /// Per-vertex candidate ids (values in `{0, 1, 2}`).
        selector: Vec<u8>,
        /// Compressed rows for the vertices whose selector is not
        /// *predicted*; `None` when every vertex chose prediction.
        compressed: Option<Quantized>,
        /// Fraction of vertices that selected the predicted candidate.
        proportion: f32,
    },
}

const TAG_EXACT: u8 = 0;
const TAG_COMPRESSED: u8 = 1;
const TAG_SELECTED: u8 = 2;

impl FpMessage {
    /// Serialized size in bytes (must equal `to_bytes().len()`).
    pub fn wire_size(&self) -> usize {
        1 + match self {
            FpMessage::Exact { h, m_cr } => {
                codec::matrix_wire_size(h) + codec::matrix_wire_size(m_cr)
            }
            FpMessage::Compressed(q) => q.wire_size(),
            FpMessage::Selected { selector, compressed, .. } => {
                let selector_bytes = 4 + (selector.len() * 2).div_ceil(8);
                selector_bytes + compressed.as_ref().map_or(0, Quantized::wire_size) + 4
            }
        }
    }

    /// Serializes the message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_size());
        match self {
            FpMessage::Exact { h, m_cr } => {
                buf.push(TAG_EXACT);
                codec::put_matrix(&mut buf, h);
                codec::put_matrix(&mut buf, m_cr);
            }
            FpMessage::Compressed(q) => {
                buf.push(TAG_COMPRESSED);
                buf.extend_from_slice(&q.to_bytes());
            }
            FpMessage::Selected { selector, compressed, proportion } => {
                buf.push(TAG_SELECTED);
                let codes: Vec<u32> = selector.iter().map(|&s| s as u32).collect();
                buf.extend_from_slice(&(selector.len() as u32).to_le_bytes());
                buf.extend_from_slice(&bitpack::pack(&codes, 2));
                if let Some(q) = compressed {
                    buf.extend_from_slice(&q.to_bytes());
                }
                buf.extend_from_slice(&proportion.to_le_bytes());
            }
        }
        buf
    }

    /// Deserializes a buffer produced by [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, String> {
        let (&tag, mut rest) = buf.split_first().ok_or("empty message")?;
        match tag {
            TAG_EXACT => {
                let h = codec::get_matrix(&mut rest)?;
                let m_cr = codec::get_matrix(&mut rest)?;
                if h.shape() != m_cr.shape() {
                    return Err("H/M_cr shape mismatch".into());
                }
                Ok(FpMessage::Exact { h, m_cr })
            }
            TAG_COMPRESSED => Ok(FpMessage::Compressed(Quantized::from_bytes(rest)?)),
            TAG_SELECTED => {
                if rest.len() < 4 {
                    return Err("selector header truncated".into());
                }
                let n = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
                let packed_len = (n * 2).div_ceil(8);
                if rest.len() < 4 + packed_len + 4 {
                    return Err("selector body truncated".into());
                }
                let selector: Vec<u8> = bitpack::unpack(&rest[4..4 + packed_len], 2, n)
                    .into_iter()
                    .map(|c| c as u8)
                    .collect();
                if selector.iter().any(|&s| s > 2) {
                    return Err("invalid selector code".into());
                }
                let middle = &rest[4 + packed_len..rest.len() - 4];
                let compressed =
                    if middle.is_empty() { None } else { Some(Quantized::from_bytes(middle)?) };
                let tail: [u8; 4] = rest[rest.len() - 4..].try_into().unwrap();
                Ok(FpMessage::Selected {
                    selector,
                    compressed,
                    proportion: f32::from_le_bytes(tail),
                })
            }
            other => Err(format!("unknown FP message tag {other}")),
        }
    }
}

/// A backward-pass response from a responding worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum BpMessage {
    /// Uncompressed gradient rows.
    Exact(Matrix),
    /// Quantized (possibly error-compensated) gradient rows — the `M^{l,t}`
    /// of Alg. 6.
    Compressed(Quantized),
}

impl BpMessage {
    /// Serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            BpMessage::Exact(g) => codec::matrix_wire_size(g),
            BpMessage::Compressed(q) => q.wire_size(),
        }
    }

    /// Serializes the message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_size());
        match self {
            BpMessage::Exact(g) => {
                buf.push(TAG_EXACT);
                codec::put_matrix(&mut buf, g);
            }
            BpMessage::Compressed(q) => {
                buf.push(TAG_COMPRESSED);
                buf.extend_from_slice(&q.to_bytes());
            }
        }
        buf
    }

    /// Deserializes a buffer produced by [`Self::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, String> {
        let (&tag, mut rest) = buf.split_first().ok_or("empty message")?;
        match tag {
            TAG_EXACT => Ok(BpMessage::Exact(codec::get_matrix(&mut rest)?)),
            TAG_COMPRESSED => Ok(BpMessage::Compressed(Quantized::from_bytes(rest)?)),
            other => Err(format!("unknown BP message tag {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_tensor::init;

    fn sample_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        init::uniform(rows, cols, -1.0, 1.0, seed)
    }

    #[test]
    fn exact_fp_round_trips_and_sizes_match() {
        let msg = FpMessage::Exact { h: sample_matrix(6, 4, 1), m_cr: sample_matrix(6, 4, 2) };
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.wire_size());
        assert_eq!(FpMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn compressed_fp_round_trips() {
        let q = Quantized::compress(&sample_matrix(8, 3, 3), 4);
        let msg = FpMessage::Compressed(q);
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.wire_size());
        assert_eq!(FpMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn selected_fp_round_trips_with_payload() {
        let q = Quantized::compress(&sample_matrix(3, 5, 4), 2);
        let msg = FpMessage::Selected {
            selector: vec![0, 1, 2, 1, 0],
            compressed: Some(q),
            proportion: 0.4,
        };
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.wire_size());
        assert_eq!(FpMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn selected_fp_round_trips_all_predicted() {
        let msg = FpMessage::Selected { selector: vec![1; 9], compressed: None, proportion: 1.0 };
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.wire_size());
        assert_eq!(FpMessage::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn bp_messages_round_trip() {
        for msg in [
            BpMessage::Exact(sample_matrix(4, 4, 5)),
            BpMessage::Compressed(Quantized::compress(&sample_matrix(4, 4, 6), 8)),
        ] {
            let bytes = msg.to_bytes();
            assert_eq!(bytes.len(), msg.wire_size());
            assert_eq!(BpMessage::from_bytes(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn fuzzed_inputs_error_cleanly() {
        for len in [0usize, 1, 3, 17, 64] {
            let junk: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let _ = FpMessage::from_bytes(&junk);
            let _ = BpMessage::from_bytes(&junk);
        }
        assert!(FpMessage::from_bytes(&[9, 0, 0]).is_err());
    }

    /// The analytic byte charges in `fp.rs` must equal the real serialized
    /// sizes (minus the 1-byte tag the analytic model folds into its fixed
    /// request overhead).
    #[test]
    fn analytic_fp_sizes_match_serialization() {
        use crate::fp::{self, TrendState};
        let h0 = sample_matrix(16, 8, 7).map(|x| x.abs());
        let mut st = TrendState::default();

        // Boundary message: analytic charge = H + M_cr as raw matrices.
        let out0 = fp::reqec_step(&mut st, &h0, 2, 5, 0);
        let exact_msg = FpMessage::Exact { h: h0.clone(), m_cr: Matrix::zeros(16, 8) };
        assert_eq!(out0.wire as usize, exact_msg.wire_size() - 1);

        // Mid-group message: selector + filtered payload + proportion.
        let h1 = h0.map(|x| x + 0.05);
        let out1 = fp::reqec_step(&mut st, &h1, 2, 5, 1);
        let n_pdt = (out1.proportion * 16.0).round() as usize;
        let filtered_rows = 16 - n_pdt;
        let msg = FpMessage::Selected {
            selector: vec![0; 16],
            compressed: if filtered_rows > 0 {
                Some(Quantized::compress(&sample_matrix(filtered_rows, 8, 9), 2))
            } else {
                None
            },
            proportion: out1.proportion,
        };
        assert_eq!(out1.wire as usize, msg.wire_size() - 1);

        // Plain compression: analytic charge = Quantized wire size.
        let (_, wire) = fp::respond_compressed(&h1, 4);
        let q = Quantized::compress(&h1, 4);
        assert_eq!(wire as usize, FpMessage::Compressed(q).wire_size() - 1);
    }

    /// Same for the backward pass.
    #[test]
    fn analytic_bp_sizes_match_serialization() {
        use crate::bp::{self, ResidualState};
        let g = sample_matrix(12, 6, 11);
        let (_, exact_wire) = bp::respond_exact(&g);
        assert_eq!(exact_wire as usize, BpMessage::Exact(g.clone()).wire_size() - 1);

        let mut st = ResidualState::default();
        let (_, ec_wire) = bp::resec_step(&mut st, &g, 4);
        let q = Quantized::compress(&g, 4);
        assert_eq!(ec_wire as usize, BpMessage::Compressed(q).wire_size() - 1);
    }
}
