//! The baseline systems of the paper's evaluation (Section V-A).
//!
//! | paper system | module | strategy reproduced |
//! |---|---|---|
//! | DGL | [`local`] | single-machine full-batch, `XW`-then-aggregate |
//! | PyG | [`local`] | single-machine full-batch, per-edge gather/scatter |
//! | DistGNN | [`crate::config::FpMode::Delayed`] | delayed partial aggregation on the distributed engine |
//! | DistDGL | [`distdgl`] | graph-centered online-sampling mini-batch |
//! | AliGraph-FG / AGL | [`ml_centered`] | ML-centered L-hop caching with redundant computation |
//! | EC-Graph-S | [`crate::sampling::sample_layer_graphs`] + the engine | offline per-layer sampling + compression |

pub mod distdgl;
pub mod local;
pub mod ml_centered;
